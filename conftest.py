"""Root conftest: make the source tree importable without installation.

Offline environments may lack the ``wheel`` package that ``pip install
-e .`` needs; ``pytest`` then still works straight from the checkout
(``python setup.py develop`` is the offline install alternative).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
