"""Fig 11: reaction of containers vs unikernels to rising demand."""

import pytest
from conftest import once, record

from repro.experiments import fig11_faas_reaction as fig11
from repro.apps.faas import AB_WORKERS, AB_WORKER_RPS


def test_fig11_faas_reaction(benchmark):
    result = once(benchmark, fig11.run)
    print()
    print(fig11.format_result(result))

    demand = AB_WORKERS * AB_WORKER_RPS
    record(benchmark,
           container_ready=result.containers.ready_times_s,
           unikernel_ready=result.unikernels.ready_times_s,
           t_containers_meet=result.time_to_reach(result.containers,
                                                  0.95 * demand),
           t_unikernels_meet=result.time_to_reach(result.unikernels,
                                                  0.95 * demand))

    # Readiness dashed lines: containers ~33/42/56 s, clones ~3/14/25 s.
    c_ready = result.containers.ready_times_s
    u_ready = result.unikernels.ready_times_s
    assert c_ready[0] == pytest.approx(33, abs=5)
    assert c_ready[1] == pytest.approx(42, abs=6)
    assert c_ready[2] == pytest.approx(56, abs=8)
    assert u_ready[0] == pytest.approx(3, abs=2)
    assert u_ready[1] == pytest.approx(14, abs=3)
    assert u_ready[2] == pytest.approx(25, abs=4)

    # Containers start higher (600 vs 300 rps per instance)...
    assert result.throughput_at(result.containers, 5) == \
        pytest.approx(600, rel=0.1)
    assert result.throughput_at(result.unikernels, 1) == \
        pytest.approx(300, rel=0.1)
    # ...but unikernels track the load closely and meet demand sooner.
    t_containers = result.time_to_reach(result.containers, 0.95 * demand)
    t_unikernels = result.time_to_reach(result.unikernels, 0.95 * demand)
    assert t_unikernels < t_containers
    # Both eventually serve the full ab demand (~1440 rps).
    assert result.throughput_at(result.containers, 120) == \
        pytest.approx(demand, rel=0.1)
    assert result.throughput_at(result.unikernels, 120) == \
        pytest.approx(demand, rel=0.1)
