"""The perf gate: re-run the benchmark and enforce the checked-in floors.

CI runs this at reduced scale (``--quick``). It loads the committed
``BENCH_wallclock.json`` (which embeds the per-scenario floors the tree
was shipped with), re-runs the harness fresh, prints a per-scenario
delta table against both the floors and the committed numbers, and
exits non-zero when:

- any scenario's ``work_reduction`` (bit-stable profiled call count)
  drops below its floor,
- any scenario's ``speedup`` (noisy wall clock; floors carry a wide
  margin) drops below its floor,
- the serial and process-parallel fleet storms disagree on their
  sha256 fingerprint (always enforced — determinism does not depend
  on the host), or the parallel ``scaling`` falls below its floor on
  a host that actually has the CPUs to parallelize (``cpus >=
  workers``; a 1-CPU container is exempt from the scaling floor but
  never from fingerprint equality),
- any golden figure series (or the KVM clone burst) drifts at the
  pinned seed.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.gate --quick --repeat 3
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from benchmarks.perf.harness import (
    OUTPUT_PATH,
    SCHEMA_VERSION,
    SCENARIOS,
    run_harness,
)

#: Hot frames reported per scenario by ``--profile``.
PROFILE_TOP = 25


def write_profile(path: Path, quick: bool) -> str:
    """cProfile one run of every timed scenario; write the top
    :data:`PROFILE_TOP` frames (by internal time) per scenario to
    ``path`` as a plain-text CI artifact, and return the text.

    Wall seconds on a shared box swing too much to read a regression's
    *shape* from the gate table alone; the profile artifact is the
    thing to diff when a speedup floor trips.
    """
    import cProfile
    import io
    import pstats

    sections: list[str] = []
    for name, factory in SCENARIOS.items():
        runner = factory(quick)
        profile = cProfile.Profile()
        profile.enable()
        try:
            runner()
        finally:
            profile.disable()
        stream = io.StringIO()
        pstats.Stats(profile, stream=stream).sort_stats(
            "tottime").print_stats(PROFILE_TOP)
        sections.append(f"=== {name} ===\n{stream.getvalue().strip()}\n")
    text = "\n".join(sections)
    path.write_text(text)
    return text


def load_reference(path: Path) -> dict:
    """The committed payload; refuses schema mismatches."""
    payload = json.loads(path.read_text())
    version = payload.get("schema_version")
    if version != SCHEMA_VERSION:
        raise SystemExit(
            f"{path} has schema_version {version!r}, this gate speaks "
            f"{SCHEMA_VERSION} — regenerate it with "
            f"`python -m benchmarks.perf.harness`")
    return payload


def check(payload: dict, floors: dict) -> tuple[list[str], list[list[str]]]:
    """Evaluate ``payload`` against ``floors``.

    Returns (violations, table rows); rows are
    ``[scenario, metric, measured, floor, status]``.
    """
    scale = payload["scale"]
    violations: list[str] = []
    rows: list[list[str]] = []

    def row(name: str, metric: str, measured, floor, ok: bool,
            note: str = "") -> None:
        status = "ok" if ok else "FAIL"
        if note:
            status += f" ({note})"
        rows.append([name, metric, str(measured), str(floor), status])
        if not ok:
            violations.append(
                f"{name}: {metric} {measured} below floor {floor}")

    for name, entry in payload["scenarios"].items():
        scenario_floors = floors.get(name, {}).get(scale, {})
        if name == "fleet_parallel":
            match = entry["fingerprint_match"]
            rows.append([name, "fingerprint_match", str(match),
                         "True", "ok" if match else "FAIL"])
            if not match:
                violations.append(
                    f"{name}: serial and parallel fingerprints differ")
            floor = scenario_floors.get("scaling")
            if floor is not None:
                exempt = entry["cpus"] < entry["workers"]
                ok = exempt or entry["scaling"] >= floor
                row(name, "scaling", entry["scaling"], floor, ok,
                    note=f"{entry['cpus']} cpus < {entry['workers']} "
                         f"workers, floor waived" if exempt else "")
            continue
        for metric in ("work_reduction", "speedup"):
            floor = scenario_floors.get(metric)
            if floor is None:
                continue
            measured = entry.get(metric)
            ok = measured is not None and measured >= floor
            row(name, metric, measured, floor, ok)

    for name, verdict in sorted(payload.get("determinism", {}).items()):
        ok = verdict == "ok"
        rows.append([name, "determinism", verdict, "ok",
                     "ok" if ok else "FAIL"])
        if not ok:
            violations.append(f"{name}: determinism {verdict}")
    return violations, rows


def format_table(rows: list[list[str]],
                 reference: dict | None = None) -> str:
    """The per-scenario delta table (vs floors, and vs the committed
    numbers when a same-scale reference payload is available)."""
    header = ["scenario", "metric", "measured", "floor", "status"]
    if reference is not None:
        header.insert(3, "committed")
        scenarios = reference.get("scenarios", {})
        for entry in rows:
            committed = scenarios.get(entry[0], {}).get(entry[1])
            entry.insert(3, "-" if committed is None else str(committed))
    widths = [max(len(r[i]) for r in [header] + rows)
              for i in range(len(header))]
    lines = ["  ".join(h.ljust(w) for h, w in zip(header, widths))]
    for entry in rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(entry, widths)))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Re-run the perf harness and gate on the committed "
                    "per-scenario floors.")
    parser.add_argument("--quick", action="store_true",
                        help="reduced-scale run (CI smoke)")
    parser.add_argument("--repeat", type=int, default=3,
                        help="best-of-N wall-clock runs (default 3)")
    parser.add_argument("--reference", default=str(OUTPUT_PATH),
                        help="committed BENCH_wallclock.json to gate "
                             "against")
    parser.add_argument("--output", default=None,
                        help="also write the fresh payload here "
                             "(CI artifact)")
    parser.add_argument("--profile", default=None, metavar="PATH",
                        help="also cProfile one run per scenario and "
                             f"write the top-{PROFILE_TOP} hot frames "
                             "to PATH (CI artifact)")
    args = parser.parse_args(argv)

    reference = load_reference(Path(args.reference))
    floors = reference.get("floors", {})
    if not floors:
        raise SystemExit(f"{args.reference} carries no floors to enforce")

    payload = run_harness(quick=args.quick, repeat=args.repeat,
                          check_determinism=True)
    if args.output:
        Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    violations, rows = check(payload, floors)
    same_scale = reference if reference.get("scale") == payload["scale"] \
        else None
    print(f"perf gate ({payload['scale']} scale, best of {args.repeat}, "
          f"{payload['cpus']} cpus)")
    print(format_table(rows, reference=same_scale))
    if args.profile:
        write_profile(Path(args.profile), args.quick)
        print(f"profile artifact written to {args.profile}")
    if violations:
        print(f"\nFAIL: {len(violations)} floor violations:",
              file=sys.stderr)
        for violation in violations:
            print(f"  - {violation}", file=sys.stderr)
        return 1
    print("\nall floors held")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
