"""Golden determinism fingerprints for the figure experiments.

Wall-clock optimizations must never move virtual time: every figure
series produced at the default seed (``0xC10E``) has to stay
bit-identical across host-side performance work. This module runs each
figure driver at a reduced (but shape-preserving) scale, converts the
result dataclasses to canonical JSON and hashes them.

``golden_series.json`` (checked in next to this module) holds the
fingerprints captured *before* the optimization work; the determinism
test asserts the current tree reproduces them exactly.

Regenerate (only when a change intentionally moves virtual time)::

    PYTHONPATH=src python -m benchmarks.perf.golden --write
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path

GOLDEN_PATH = Path(__file__).resolve().parent / "golden_series.json"

#: The simulation seed the fingerprints are pinned to (platform default).
SEED = 0xC10E

#: Reduced-scale figure invocations. Keys are stable fingerprint names;
#: values are zero-argument callables returning the figure result object.
def _figures() -> dict:
    from repro.experiments import (
        fig4_instantiation,
        fig5_density,
        fig6_memory_cloning,
        fig7_nginx,
        fig8_redis,
        fig9_fuzzing,
        fig10_faas_memory,
        fig11_faas_reaction,
    )
    from repro.sim.units import GIB

    return {
        "fig4": lambda: fig4_instantiation.run(instances=60),
        "fig5": lambda: fig5_density.run(sample_every=50, limit=400,
                                         total_memory_bytes=16 * GIB),
        "fig6": lambda: fig6_memory_cloning.run(sizes_mb=(4, 16),
                                                repetitions=1),
        "fig7": lambda: fig7_nginx.run(worker_counts=(1, 2), repetitions=3),
        "fig8": lambda: fig8_redis.run(),
        "fig9": lambda: fig9_fuzzing.run(duration_s=20.0),
        "fig10": lambda: fig10_faas_memory.run(duration_s=40.0,
                                               max_replicas=3),
        "fig11": lambda: fig11_faas_reaction.run(duration_s=40.0),
    }


def jsonify(value):
    """Canonical JSON-able form of a figure result (floats kept exact:
    ``json`` emits shortest-round-trip reprs, so equal hashes mean
    bit-identical series)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: jsonify(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def fingerprint(result) -> str:
    """sha256 over the canonical JSON of one figure result."""
    payload = json.dumps(jsonify(result), sort_keys=True, allow_nan=False)
    return hashlib.sha256(payload.encode()).hexdigest()


def compute_fingerprints(only: set[str] | None = None) -> dict[str, str]:
    """Run every (selected) reduced-scale figure and fingerprint it."""
    prints: dict[str, str] = {}
    for name, runner in _figures().items():
        if only is not None and name not in only:
            continue
        prints[name] = fingerprint(runner())
    return prints


def load_golden() -> dict[str, str]:
    data = json.loads(GOLDEN_PATH.read_text())
    return data["fingerprints"]


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--write", action="store_true",
                        help="regenerate golden_series.json from this tree")
    args = parser.parse_args(argv)
    prints = compute_fingerprints()
    if args.write:
        GOLDEN_PATH.write_text(json.dumps(
            {"seed": SEED, "fingerprints": prints}, indent=2) + "\n")
        print(f"wrote {GOLDEN_PATH}")
        return 0
    golden = load_golden()
    drift = {k for k in golden if golden[k] != prints.get(k)}
    for name in sorted(prints):
        status = "drift!" if name in drift else "ok"
        print(f"{name:8s} {prints[name][:16]}  {status}")
    return 1 if drift else 0


if __name__ == "__main__":
    raise SystemExit(main())
