"""Wall-clock benchmark harness for the clone-fleet hot paths.

Times the full-scale Fig 4/5 drivers (the two experiments whose cost is
dominated by the datapath and clone-notify paths) plus a clone-fleet
session, and writes ``BENCH_wallclock.json`` at the repo root. Virtual
results are untouched by definition — the golden determinism guard
(:mod:`benchmarks.perf.golden`) pins every figure series — so this
harness only measures how long the host takes to get there.

Methodology: one process, fixed scenario order, GC disabled around each
timed section (a full collect runs between scenarios instead), and the
minimum over ``--repeat`` runs is reported. Wall seconds are
host-dependent and noisy; the harness therefore also records
``function_calls`` — the cProfile call total of one profiled run, which
is bit-stable for a fixed seed — as the noise-free measure of host-side
work. The ``baseline_*`` values embedded per scenario were produced by
running this same harness on the pre-optimization tree.

Usage::

    PYTHONPATH=src python -m benchmarks.perf.harness            # full scale
    PYTHONPATH=src python -m benchmarks.perf.harness --quick    # CI smoke
    PYTHONPATH=src python -m benchmarks.perf.harness --check-determinism
"""

from __future__ import annotations

import argparse
import cProfile
import gc
import json
import os
import platform as host_platform
import pstats
import time
from pathlib import Path

OUTPUT_PATH = Path(__file__).resolve().parents[2] / "BENCH_wallclock.json"

#: Payload layout version. Bump when the shape of BENCH_wallclock.json
#: changes; the perf gate (:mod:`benchmarks.perf.gate`) refuses to
#: compare against a payload of a different major shape.
SCHEMA_VERSION = 2

#: Same-harness measurements of the tree at the parent commit (see
#: module docstring): scenario -> {scale -> (seconds, function calls)}.
BASELINES: dict[str, dict[str, tuple[float, int]]] = {
    "fig5_density": {"full": (8.949, 48_720_177),
                     "quick": (0.390, 1_839_358)},
    "fig4_instantiation_1000": {"full": (3.380, 16_058_933),
                                "quick": (0.207, 889_137)},
    "clone_fleet": {"full": (0.838, 4_252_727),
                    "quick": (0.104, 531_597)},
    "xenstore_deep_clone": {"full": (0.460, 1_588_219),
                            "quick": (0.035, 116_289)},
    # The pre-virtual-time front door (per-job-decrement PS servers,
    # engine-event departures), measured on the same 1,071,875-request
    # megascale sweep / CI-sized quick sweep as the scenario below.
    "frontdoor_p99": {"full": (146.404, 877_760_639),
                      "quick": (0.269, 1_415_983)},
}

#: DispatchResult sweep fingerprints the frontdoor scenario must
#: reproduce byte-for-byte: a faster dispatcher that perturbs a single
#: latency by an ulp is a correctness regression, not a win. The full
#: pin was captured from the pre-rewrite dispatcher; the quick pin
#: guards run-to-run determinism at CI scale.
FRONTDOOR_FINGERPRINTS = {
    "full": "6d55565467eb66bea7d4c3b7edfa7e17596dcd4589e4e2c54630525895cef474",
    "quick": "35c31ef94ab2eed3d717955da4aaf3752f4c1e948a5d8c1ee05b20d60ba19553",
}

#: Per-scenario regression floors, enforced by the perf gate.
#:
#: ``work_reduction`` floors are tight: the profiled call count is
#: bit-stable for a fixed seed, so any drop is a real regression.
#: ``speedup`` floors are set below the robustly-achieved wall-clock
#: ratio (best-of-N over several processes) because wall seconds on a
#: shared CI box swing by 20-30%. The fig5 floor meets the issue's
#: 1.8x target; clone_fleet robustly achieves ~1.6x against its 2.0x
#: target — the remaining profile is flat (no frame above 4%), so the
#: floor pins what is actually held rather than the aspiration.
#:
#: ``fleet_parallel`` is gated on fingerprint equality (serial vs
#: process-parallel, always) and on barrier overhead (the serial-storm
#: wall-clock per epoch staying sane); its wall-clock ``scaling`` is
#: recorded but only enforced when the host actually has at least as
#: many CPUs as workers — a 1-CPU container cannot speed anything up
#: by adding processes. ``kvm_clone_burst`` is gated on same-seed
#: determinism next to the Xen golden guard.
#: Floors are per scale: the wins scale with event count, so quick
#: runs (CI smoke) sit much closer to the seed than full runs.
FLOORS: dict[str, dict[str, dict[str, float]]] = {
    "fig5_density": {
        "full": {"speedup": 1.8, "work_reduction": 3.5},
        "quick": {"speedup": 1.1, "work_reduction": 1.6}},
    "fig4_instantiation_1000": {
        "full": {"speedup": 1.1, "work_reduction": 1.9},
        "quick": {"speedup": 0.9, "work_reduction": 1.05}},
    "clone_fleet": {
        "full": {"speedup": 1.25, "work_reduction": 2.1},
        "quick": {"speedup": 1.2, "work_reduction": 2.0}},
    "xenstore_deep_clone": {
        "full": {"speedup": 8.0, "work_reduction": 12.0},
        "quick": {"speedup": 4.0, "work_reduction": 3.5}},
    # The issue's megascale target is >= 3x wall clock; the full run
    # robustly measures 3.4-3.6x so the floor pins the target itself.
    # Full-scale profiled calls measure 154.6M vs the 877.8M baseline
    # (5.68x, bit-stable) — the floor sits just under the measurement.
    # The quick sweep is too small for a meaningful wall-clock floor
    # (sub-second, noise-dominated): its speedup floor only catches a
    # return to the seed, while the call-count floor is tight.
    "frontdoor_p99": {
        "full": {"speedup": 3.0, "work_reduction": 5.5},
        "quick": {"speedup": 0.9, "work_reduction": 1.25}},
    "fleet_parallel": {
        "full": {"scaling": 0.9},
        "quick": {"scaling": 0.9}},
}


def _fig5(quick: bool):
    from repro.experiments import fig5_density
    from repro.sim.units import GIB

    if quick:
        return lambda: fig5_density.run(sample_every=50, limit=400,
                                        total_memory_bytes=16 * GIB)
    return lambda: fig5_density.run()


def _fig4(quick: bool):
    from repro.experiments import fig4_instantiation

    instances = 100 if quick else 1000
    return lambda: fig4_instantiation.run(instances=instances)


def _clone_fleet(quick: bool):
    """The examples/clone_fleet.py workload: session, fleet, IDC jobs.

    One pass is small (a 32-CPU fleet builds in ~25 ms), so the
    scenario repeats whole sessions to get a stable measurement.
    """
    sessions = 5 if quick else 40

    def scenario():
        from repro import GuestApp, NepheleSession
        from repro.core.smp import build_fleet
        from repro.idc.mqueue import MessageQueue

        for _ in range(sessions):
            with NepheleSession(cpus=32) as session:
                parent = session.boot("bench-fleet", memory_mb=8,
                                      kernel="minios-udp", ip="10.0.9.1",
                                      max_clones=64, app=GuestApp())
                queue = MessageQueue(session.hypervisor, parent)
                fleet = build_fleet(session.platform, parent.domid)
                members = fleet.domains()
                for round_ in range(8):
                    for job in range(32):
                        queue.send(parent, f"job-{round_}-{job}".encode(),
                                   priority=job % 3)
                    index = 0
                    while len(queue):
                        queue.receive(members[index % len(members)])
                        index += 1

    return scenario


def _xenstore_deep_clone(quick: bool):
    """xs_clone over a deep (6-level, 534-node) device subtree.

    The fleet scenarios clone shallow per-device directories; this one
    exercises the structural graft on the kind of subtree where O(1)
    vs O(M) actually matters. Pure Xenstore: no session, no datapath.
    """
    clones = 16 if quick else 128
    rounds = 2 if quick else 4

    def scenario():
        from repro.sim import CostModel, VirtualClock
        from repro.xenstore.client import XsHandle
        from repro.xenstore.clone import XsCloneOp
        from repro.xenstore.store import XenstoreDaemon

        for _ in range(rounds):
            daemon = XenstoreDaemon(VirtualClock(), CostModel(),
                                    log_enabled=False)
            handle = XsHandle(daemon)
            base = "/local/domain/0/backend/9pfs/5"
            daemon.write_node(f"{base}/frontend-id", "5")
            for dev in range(4):
                droot = f"{base}/{dev}"
                daemon.write_node(
                    f"{droot}/frontend",
                    f"/local/domain/5/device/9pfs/{dev}")
                for shard in range(10):
                    for entry in range(4):
                        eroot = f"{droot}/tags/{shard}/{entry}"
                        daemon.write_node(f"{eroot}/path",
                                          f"/srv/{shard}/{entry}")
                        daemon.write_node(f"{eroot}/mode", "rw")
            for child in range(clones):
                domid = 100 + child
                handle.clone(5, domid, XsCloneOp.DEV_9PFS, base,
                             f"/local/domain/0/backend/9pfs/{domid}")

    return scenario


def _frontdoor(quick: bool):
    """The front-door P99-vs-d sweep (megascale dispatch hot loop).

    Full scale is the headline 1,071,875-request sweep across clone
    factors 1-8 plus the composed autoscale + host-kill run; quick is
    the CI-sized variant. The sweep fingerprint is asserted against
    :data:`FRONTDOOR_FINGERPRINTS` inside the timed region — the
    virtual-time fast path is only admissible while it reproduces the
    per-job-decrement latency series byte for byte — and the audit
    ledgers must come back clean.
    """
    from repro.experiments import frontdoor_p99

    expected = FRONTDOOR_FINGERPRINTS["quick" if quick else "full"]

    def scenario():
        result = (frontdoor_p99.run_quick() if quick
                  else frontdoor_p99.run())
        if result.fingerprint != expected:
            raise AssertionError(
                "frontdoor sweep fingerprint drift: "
                f"{result.fingerprint} != {expected}")
        if result.violations:
            raise AssertionError(
                f"frontdoor conservation violations: {result.violations}")

    return scenario


#: FleetMigrationResult fingerprints the migration scenario must
#: reproduce byte-for-byte: the drain/kill/baseline ablation, the
#: migration fault storm and the serial-vs-parallel comparison all
#: feed the hash, so any behavior drift in the migration tier fails
#: the run before its timing is even recorded.
MIGRATION_FINGERPRINTS = {
    "full": "98a934ed0a6abd25196b7021df9765ba70c84645166404844a8965806e080b55",
    "quick": "5ef74037f1e59da4d07ede5e0d76dab03d3b3f87f057b4074ef442ae5bbbb476",
}


def _fleet_migration(quick: bool):
    """The drain-vs-kill migration ablation under front-door traffic.

    Times the full ``fleet_migration`` experiment: three dispatch arms
    (baseline / drain-evacuate / kill-reboot) plus the migration fault
    storm, with the serial and process-pool runs compared inside the
    experiment. Fingerprint and conservation audits are asserted in
    the timed region — a faster migration path that changes a single
    latency or leaks a page is a regression, not a win.
    """
    from repro.experiments import fleet_migration

    expected = MIGRATION_FINGERPRINTS["quick" if quick else "full"]

    def scenario():
        result = (fleet_migration.run_quick() if quick
                  else fleet_migration.run())
        if result.fingerprint != expected:
            raise AssertionError(
                "fleet_migration fingerprint drift: "
                f"{result.fingerprint} != {expected}")
        if result.violations:
            raise AssertionError(
                f"fleet_migration violations: {result.violations}")

    return scenario


#: FrontdoorOverloadResult fingerprints the overload scenario must
#: reproduce byte-for-byte: the baseline/unprotected/protected
#: ablation past the knee, the overload chaos storm and the
#: serial-vs-parallel comparison all feed the hash, so any drift in
#: admission control, retry budgets or breaker behavior fails the run
#: before its timing is even recorded.
OVERLOAD_FINGERPRINTS = {
    "full": "b83a8d41029448f188e4544a3fe760e7e243ff92bbf08549e98d74ed9a622390",
    "quick": "f0a47d0cef0e99c345ddc1c8198b1ff847447407132284cdf36697ad818bf62c",
}


def _frontdoor_overload(quick: bool):
    """The past-the-knee overload ablation with and without protection.

    Times the full ``frontdoor_overload`` experiment: three dispatch
    arms (below-knee baseline / unprotected retry storm / protected
    admission+budget+breaker stack) plus the overload chaos storm,
    with the serial and process-pool runs compared inside the
    experiment. Fingerprint and conservation audits are asserted in
    the timed region.
    """
    from repro.experiments import frontdoor_overload

    expected = OVERLOAD_FINGERPRINTS["quick" if quick else "full"]

    def scenario():
        result = (frontdoor_overload.run_quick() if quick
                  else frontdoor_overload.run())
        if result.fingerprint != expected:
            raise AssertionError(
                "frontdoor_overload fingerprint drift: "
                f"{result.fingerprint} != {expected}")
        if result.violations:
            raise AssertionError(
                f"frontdoor_overload violations: {result.violations}")

    return scenario


def _kvm_clone_burst(quick: bool):
    """KVM_CLONE_VM burst: boot a VM, clone it in batches, tear down.

    The KVM twin of ``clone_fleet``: exercises the fork-based clone
    path (including the shared clone.* tracing spans) so the parity
    slice has a pinned timing + determinism scenario alongside Xen.
    """
    sessions = 2 if quick else 10
    batches = 4 if quick else 8

    def scenario():
        from repro.kvm import KvmPlatform

        for _ in range(sessions):
            platform = KvmPlatform(trace=True)
            parent = platform.create_vm("bench-kvm", memory_bytes=8 << 20,
                                        ip="10.0.8.1", max_clones=256)
            for _ in range(batches):
                platform.clone(parent.pid, count=8)
            for pid in sorted(platform.host.vms):
                platform.destroy(pid)

    return scenario


def kvm_fingerprint() -> str:
    """sha256 over the deterministic observables of one KVM burst.

    Covers the virtual clock, the per-kind span aggregates (count and
    total virtual ms) and the surviving-VM census — everything the
    clone path touches. Two same-seed runs must agree byte-for-byte.
    """
    import hashlib

    from repro.kvm import KvmPlatform

    platform = KvmPlatform(trace=True)
    parent = platform.create_vm("det-kvm", memory_bytes=8 << 20,
                                ip="10.0.8.1", max_clones=64)
    clones = [platform.clone(parent.pid, count=4) for _ in range(3)]
    observables = {
        "clock_ms": round(platform.clock.now, 9),
        "clones": clones,
        "vms": sorted(platform.host.vms),
        "spans": {kind: [entry["count"], round(entry["total_ms"], 9)]
                  for kind, entry in platform.tracer.summary().items()},
    }
    payload = json.dumps(observables, sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()


def fleet_parallel_entry(quick: bool, repeat: int = 1) -> dict:
    """Time the epoch-barrier storm serial vs process-parallel.

    Byte-identical fingerprints between the two executors are this
    scenario's hard invariant (the determinism guard for the parallel
    fleet runner). Wall-clock ``scaling`` (serial / parallel seconds)
    is recorded together with the host CPU count; on a single-CPU
    host the parallel run necessarily loses to the serial one (same
    work plus pipe traffic), so the gate only enforces the scaling
    floor when ``cpus >= workers``.
    """
    from repro.fleet.parallel import run_parallel_storm

    workers = 2 if quick else 4
    params = dict(hosts=4, parents=2, batch=2, epochs=3, kills=1) \
        if quick else dict(hosts=4, parents=3, batch=3, epochs=8, kills=1)

    def run(n_workers: int):
        return run_parallel_storm(workers=n_workers, **params)

    serial_best = float("inf")
    parallel_best = float("inf")
    serial_print = parallel_print = ""
    for _ in range(max(1, repeat)):
        gc.collect()
        start = time.perf_counter()
        report = run(0)
        serial_best = min(serial_best, time.perf_counter() - start)
        serial_print = report.fingerprint
        start = time.perf_counter()
        report = run(workers)
        parallel_best = min(parallel_best, time.perf_counter() - start)
        parallel_print = report.fingerprint
    return {
        "seconds": round(serial_best, 3),
        "parallel_seconds": round(parallel_best, 3),
        "scaling": round(serial_best / parallel_best, 2),
        "workers": workers,
        "hosts": params["hosts"],
        "epochs": params["epochs"],
        "cpus": os.cpu_count(),
        "fingerprint_match": serial_print == parallel_print,
        "fingerprint": serial_print,
    }


SCENARIOS = {
    "fig5_density": _fig5,
    "fig4_instantiation_1000": _fig4,
    "clone_fleet": _clone_fleet,
    "xenstore_deep_clone": _xenstore_deep_clone,
    "kvm_clone_burst": _kvm_clone_burst,
    "frontdoor_p99": _frontdoor,
    "fleet_migration": _fleet_migration,
    "frontdoor_overload": _frontdoor_overload,
}


def time_scenario(runner, repeat: int = 1) -> float:
    """Best-of-``repeat`` wall-clock seconds for one scenario.

    GC stays disabled inside the timed region; whatever garbage the run
    produced is collected after, outside the measurement.
    """
    best = float("inf")
    for _ in range(repeat):
        gc.collect()
        was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            runner()
            elapsed = time.perf_counter() - start
        finally:
            if was_enabled:
                gc.enable()
        best = min(best, elapsed)
    return best


def count_calls(runner) -> int:
    """Total function calls of one profiled run (deterministic for a
    fixed seed, unlike wall seconds)."""
    gc.collect()
    profile = cProfile.Profile()
    profile.enable()
    try:
        runner()
    finally:
        profile.disable()
    return pstats.Stats(profile).total_calls


def run_harness(quick: bool = False, repeat: int = 1,
                check_determinism: bool = False,
                count: bool = True) -> dict:
    """Run every scenario; return the BENCH_wallclock.json payload."""
    scale = "quick" if quick else "full"
    results: dict[str, dict] = {}
    for name, factory in SCENARIOS.items():
        seconds = time_scenario(factory(quick), repeat=repeat)
        calls = count_calls(factory(quick)) if count else None
        base_seconds, base_calls = BASELINES.get(name, {}).get(
            scale, (0.0, 0))
        entry = {
            "seconds": round(seconds, 3),
            "function_calls": calls,
            "baseline_seconds": base_seconds or None,
            "baseline_function_calls": base_calls or None,
            "speedup": (round(base_seconds / seconds, 2)
                        if base_seconds else None),
            "work_reduction": (round(base_calls / calls, 2)
                               if base_calls and calls else None),
        }
        results[name] = entry
    results["fleet_parallel"] = fleet_parallel_entry(quick, repeat=repeat)
    payload = {
        "schema_version": SCHEMA_VERSION,
        "scale": scale,
        "repeat": repeat,
        "python": host_platform.python_version(),
        "cpus": os.cpu_count(),
        "floors": FLOORS,
        "scenarios": results,
    }
    if check_determinism:
        from benchmarks.perf import golden

        prints = golden.compute_fingerprints()
        reference = golden.load_golden()
        payload["determinism"] = {
            name: ("ok" if reference.get(name) == value else "drift")
            for name, value in sorted(prints.items())
        }
        # KVM parity: same-seed determinism next to the Xen golden
        # guard — two fresh platforms, one clone burst each, must
        # produce byte-identical observable fingerprints.
        payload["determinism"]["kvm_clone_burst"] = (
            "ok" if kvm_fingerprint() == kvm_fingerprint() else "drift")
    return payload


def format_wallclock(payload: dict) -> str:
    """Human-readable summary of a harness payload."""
    lines = [f"wall-clock benchmark ({payload['scale']} scale, "
             f"best of {payload['repeat']})"]
    width = max(len(name) for name in payload["scenarios"])
    for name, entry in payload["scenarios"].items():
        line = f"  {name:<{width}}  {entry['seconds']:>8.3f}s"
        if name == "fleet_parallel":
            line += (f"  (parallel {entry['parallel_seconds']:.3f}s, "
                     f"{entry['scaling']:.2f}x over {entry['workers']} "
                     f"workers on {entry['cpus']} cpus, fingerprints "
                     + ("match)" if entry["fingerprint_match"]
                        else "DIFFER)"))
            lines.append(line)
            continue
        if entry.get("baseline_seconds"):
            line += (f"  (baseline {entry['baseline_seconds']:.3f}s, "
                     f"{entry['speedup']:.2f}x)")
        if entry.get("function_calls"):
            line += f"  {entry['function_calls'] / 1e6:.2f}M calls"
            if entry.get("work_reduction"):
                line += f" ({entry['work_reduction']:.2f}x fewer)"
        lines.append(line)
    determinism = payload.get("determinism")
    if determinism:
        drifted = sorted(k for k, v in determinism.items() if v != "ok")
        lines.append("  determinism: " + (
            f"DRIFT in {', '.join(drifted)}" if drifted
            else f"all {len(determinism)} figure series ok"))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Time the clone-fleet hot paths and write "
                    "BENCH_wallclock.json at the repo root.")
    parser.add_argument("--quick", action="store_true",
                        help="reduced-scale run (CI smoke)")
    parser.add_argument("--repeat", type=int, default=1,
                        help="report the best of N runs per scenario")
    parser.add_argument("--check-determinism", action="store_true",
                        help="also verify the golden figure fingerprints")
    parser.add_argument("--output", default=str(OUTPUT_PATH),
                        help="where to write the JSON payload")
    args = parser.parse_args(argv)

    payload = run_harness(quick=args.quick, repeat=args.repeat,
                          check_determinism=args.check_determinism)
    Path(args.output).write_text(json.dumps(payload, indent=2) + "\n")
    print(format_wallclock(payload))
    print(f"wrote {args.output}")
    drifted = [k for k, v in payload.get("determinism", {}).items()
               if v != "ok"]
    return 1 if drifted else 0


if __name__ == "__main__":
    raise SystemExit(main())
