"""Ablations of the design choices DESIGN.md calls out.

Each benchmark toggles one Nephele design decision and shows the cost
the paper's choice avoids.
"""

import statistics

from conftest import once, record

from repro import Platform
from repro.apps.udp_server import UdpServerApp
from repro.apps.redis import RedisApp, bgsave_unikernel, redis_unikernel_config
from repro.core.xencloned import CloneSwitchMode
from repro.devices.p9 import P9BackendPolicy
from repro.sim.units import GIB, MIB
from repro.toolstack.config import DomainConfig, VifConfig


def _udp_config(name: str, ip: str = "10.0.1.1", **kwargs) -> DomainConfig:
    return DomainConfig(name=name, memory_mb=4, kernel="minios-udp",
                        vifs=[VifConfig(ip=ip)], **kwargs)


# ----------------------------------------------------------------------
# 1. xs_clone vs deep copy (paper §5.2.1 / §6.1)
# ----------------------------------------------------------------------
def test_ablation_xs_clone_vs_deep_copy(benchmark):
    def run():
        means = {}
        requests = {}
        for label, use_xs in (("xs_clone", True), ("deep_copy", False)):
            platform = Platform.create(use_xs_clone=use_xs)
            parent = platform.xl.create(
                _udp_config("p", max_clones=200), app=UdpServerApp())
            times = []
            r0 = platform.xenstore.stats["requests"]
            for _ in range(150):
                t0 = platform.now
                platform.cloneop.clone(parent.domid)
                times.append(platform.now - t0)
            means[label] = statistics.mean(times)
            requests[label] = (platform.xenstore.stats["requests"] - r0) / 150
        return means, requests

    means, requests = once(benchmark, run)
    print(f"\nxs_clone: {means['xs_clone']:.1f} ms/clone "
          f"({requests['xs_clone']:.0f} Xenstore requests)")
    print(f"deep copy: {means['deep_copy']:.1f} ms/clone "
          f"({requests['deep_copy']:.0f} Xenstore requests)")
    record(benchmark, **means)
    assert means["deep_copy"] > 1.7 * means["xs_clone"]
    assert requests["deep_copy"] > 3 * requests["xs_clone"]


# ----------------------------------------------------------------------
# 2. xl name-uniqueness check (the LightVM superlinear effect)
# ----------------------------------------------------------------------
def test_ablation_name_check_superlinear(benchmark):
    def run():
        slopes = {}
        for label, check in (("no_check", False), ("check", True)):
            platform = Platform.create(xl_check_names=check,
                                       xenstore_log=False)
            times = []
            for i in range(250):
                config = _udp_config(f"g{i}", ip=f"10.0.{i // 250}.{i % 250 + 1}")
                t0 = platform.now
                platform.xl.create(config, app=UdpServerApp())
                times.append(platform.now - t0)
            slopes[label] = times[-1] - times[0]
        return slopes

    slopes = once(benchmark, run)
    print(f"\nboot-time growth over 250 instances: "
          f"without check {slopes['no_check']:.1f} ms, "
          f"with check {slopes['check']:.1f} ms")
    record(benchmark, **slopes)
    # The check adds per-domain scan cost on top of Xenstore growth.
    assert slopes["check"] > slopes["no_check"] + 50


# ----------------------------------------------------------------------
# 3. bond vs OVS group for clone switching (paper §5.2.1)
# ----------------------------------------------------------------------
def test_ablation_bond_vs_ovs(benchmark):
    def run():
        out = {}
        for mode in (CloneSwitchMode.BOND, CloneSwitchMode.OVS):
            platform = Platform.create(switch_mode=mode)
            parent = platform.xl.create(
                _udp_config("p", max_clones=64), app=UdpServerApp())
            platform.cloneop.clone(parent.domid, count=8)
            if mode is CloneSwitchMode.BOND:
                switch = platform.dom0.family_bond("10.0.1.1")
                members = len(switch.slaves)
            else:
                switch = platform.dom0.family_ovs_group("10.0.1.1")
                members = len(switch.buckets)
            # Drive traffic to every clone port through the real switch.
            hits = set()
            for port in range(20000, 20400):
                platform.dom0.send_to_guest("10.0.1.1", 9, payload=None,
                                            src_port=port)
                if len(hits) == members:
                    break
            out[mode.value] = members
        return out

    members = once(benchmark, run)
    print(f"\nfamily switch members: {members}")
    record(benchmark, **members)
    # Both modes aggregate parent + 8 clones.
    assert members["bond"] == members["ovs"] == 9


# ----------------------------------------------------------------------
# 4. 9pfs backend policy: shared process vs process per clone
# ----------------------------------------------------------------------
def test_ablation_p9_backend_policy(benchmark):
    def run():
        out = {}
        for policy in (P9BackendPolicy.SHARED_PROCESS,
                       P9BackendPolicy.PROCESS_PER_CLONE):
            platform = Platform.create(
                total_memory_bytes=24 * GIB, dom0_memory_bytes=4 * GIB,
                p9_policy=policy)
            domain = platform.xl.create(redis_unikernel_config("r"),
                                        app=RedisApp())
            dom0_before = platform.free_dom0_bytes()
            t0 = platform.now
            for _ in range(32):
                bgsave_unikernel(platform, domain)
            out[policy.value] = {
                "ms_per_save": (platform.now - t0) / 32,
                "dom0_cost_mb": 0.0,
            }
            # Peak Dom0 cost while 32 live clones exist:
            app = domain.guest.app
            app.pending_save = False
            kids = platform.cloneop.clone(domain.domid, count=32)
            out[policy.value]["dom0_cost_mb"] = \
                (dom0_before - platform.free_dom0_bytes()) / MIB
            for kid in kids:
                platform.xl.destroy(kid)
        return out

    out = once(benchmark, run)
    shared = out["shared-process"]
    per_clone = out["process-per-clone"]
    print(f"\nshared process: {shared['ms_per_save']:.1f} ms/save, "
          f"Dom0 cost for 32 live clones {shared['dom0_cost_mb']:.0f} MB")
    print(f"per-clone process: {per_clone['ms_per_save']:.1f} ms/save, "
          f"Dom0 cost for 32 live clones {per_clone['dom0_cost_mb']:.0f} MB")
    record(benchmark, shared_ms=shared["ms_per_save"],
           per_clone_ms=per_clone["ms_per_save"])
    # The paper adopts the shared process: per-clone processes are slower
    # to clone and "stress the limits of the host" (Dom0 memory).
    assert per_clone["ms_per_save"] > shared["ms_per_save"] + 20
    assert per_clone["dom0_cost_mb"] > shared["dom0_cost_mb"] + 100


# ----------------------------------------------------------------------
# 5. xencloned parent-info caching (paper §6.2)
# ----------------------------------------------------------------------
def test_ablation_parent_cache(benchmark):
    def run():
        platform = Platform.create()
        # No I/O cloning (as in Fig 6), so the guest must stay quiet
        # after the fork: use a bare app.
        from repro import GuestApp

        config = _udp_config("p", max_clones=16)
        config.clone_io_devices = False
        parent = platform.xl.create(config, app=GuestApp())
        t0 = platform.now
        platform.cloneop.clone(parent.domid)
        first = platform.now - t0
        t0 = platform.now
        platform.cloneop.clone(parent.domid)
        second = platform.now - t0
        return first, second

    first, second = once(benchmark, run)
    print(f"\nfirst clone {first:.2f} ms, second clone {second:.2f} ms "
          "(paper userspace ops: 3 ms then 1.9 ms)")
    record(benchmark, first_ms=first, second_ms=second)
    assert first > second
    assert 0.3 <= first - second <= 2.0


# ----------------------------------------------------------------------
# 6. Xenstore access logging (the source of the Fig 4 spikes)
# ----------------------------------------------------------------------
def test_ablation_xenstore_logging(benchmark):
    def run():
        out = {}
        for label, enabled in (("logging", True), ("no_logging", False)):
            platform = Platform.create(xenstore_log=enabled)
            times = []
            for i in range(300):
                config = _udp_config(f"g{i}", ip=f"10.0.{i // 250}.{i % 250 + 1}")
                t0 = platform.now
                platform.xl.create(config, app=UdpServerApp())
                times.append(platform.now - t0)
            out[label] = {
                "max": max(times),
                "median": statistics.median(times),
                "rotations": platform.xenstore.access_log.rotations,
            }
        return out

    out = once(benchmark, run)
    print(f"\nwith logging: median {out['logging']['median']:.0f} ms, "
          f"max {out['logging']['max']:.0f} ms "
          f"({out['logging']['rotations']} rotations)")
    print(f"without: median {out['no_logging']['median']:.0f} ms, "
          f"max {out['no_logging']['max']:.0f} ms")
    record(benchmark, **{k: v["max"] for k, v in out.items()})
    # Paper: disabling logging doesn't move the value ranges (medians),
    # but the rotation spikes disappear.
    assert abs(out["logging"]["median"] - out["no_logging"]["median"]) < 10
    assert out["logging"]["max"] > 2 * out["no_logging"]["max"]
    assert out["no_logging"]["rotations"] == 0


# ----------------------------------------------------------------------
# 7. Cost-model sensitivity: shapes must survive a slower/faster testbed
# ----------------------------------------------------------------------
def test_ablation_cost_model_sensitivity(benchmark):
    from repro.sim import CostModel

    def run():
        out = {}
        for label, factor in (("half", 0.5), ("paper", 1.0), ("double", 2.0)):
            costs = CostModel().scaled(factor)
            platform = Platform.create(costs=costs, xenstore_log=False)
            parent = platform.xl.create(
                _udp_config("p", max_clones=40), app=UdpServerApp())
            t0 = platform.now
            for _ in range(30):
                platform.cloneop.clone(parent.domid)
            clone_ms = (platform.now - t0) / 30

            p2 = Platform.create(costs=costs, xenstore_log=False)
            t0 = p2.now
            p2.xl.create(_udp_config("b"), app=UdpServerApp())
            boot_ms = p2.now - t0
            out[label] = boot_ms / clone_ms
        return out

    speedups = once(benchmark, run)
    print(f"\nboot/clone speedup under scaled cost models: "
          + ", ".join(f"{k}={v:.1f}x" for k, v in speedups.items()))
    record(benchmark, **speedups)
    # The headline ratio is calibration-invariant: every factor gives
    # roughly the same speedup.
    values = list(speedups.values())
    assert max(values) / min(values) < 1.2
    assert all(5 <= v <= 11 for v in values)


# ----------------------------------------------------------------------
# 8. clone_cow instrumentation vs resetting without a baseline snapshot
# ----------------------------------------------------------------------
def test_ablation_fuzzing_reset_vs_recreate(benchmark):
    """The Fig 9 story in one number: rolling a clone back with
    clone_reset vs recreating the clone per iteration."""
    from repro.apps.udp_server import UdpServerApp as App

    def run():
        platform = Platform.create()
        config = _udp_config("t", max_clones=1000)
        config.start_clones_paused = True
        config.clone_io_devices = False
        parent = platform.xl.create(config, app=App())

        # Reset-based iterations.
        clone_id = platform.xl.clone(parent.domid)[0]
        target = platform.hypervisor.get_domain(clone_id)
        platform.cloneop.snapshot(clone_id)
        t0 = platform.now
        for _ in range(200):
            target.memory.write_range(0, 3)
            platform.cloneop.clone_reset(0, clone_id)
        reset_ms = (platform.now - t0) / 200

        # Recreate-based iterations.
        t0 = platform.now
        for _ in range(50):
            fresh = platform.xl.clone(parent.domid)[0]
            platform.hypervisor.get_domain(fresh).memory.write_range(0, 3)
            platform.xl.destroy(fresh)
        recreate_ms = (platform.now - t0) / 50
        return reset_ms, recreate_ms

    reset_ms, recreate_ms = once(benchmark, run)
    print(f"\nper-iteration: clone_reset {reset_ms * 1000:.0f} us vs "
          f"re-clone {recreate_ms:.1f} ms "
          f"({recreate_ms / reset_ms:.0f}x more expensive)")
    record(benchmark, reset_us=reset_ms * 1000, recreate_ms=recreate_ms)
    assert recreate_ms > 20 * reset_ms
