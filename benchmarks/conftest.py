"""Benchmark-harness helpers.

Each benchmark regenerates one figure of the paper at a reduced (but
shape-preserving) scale, prints the same series the paper reports, and
asserts the qualitative result. Run the full-scale versions with
``python examples/reproduce_figures.py``.
"""

from __future__ import annotations


def record(benchmark, **extra) -> None:
    """Attach experiment outputs to the pytest-benchmark record."""
    for key, value in extra.items():
        benchmark.extra_info[key] = value


def once(benchmark, fn):
    """Run an experiment exactly once under the benchmark fixture.

    The experiments measure *virtual* time internally; wall-clock
    repetition would only re-run identical deterministic simulations.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
