"""The §1 motivating claim: idle pools waste memory; cloning doesn't."""

from conftest import once, record

from repro.experiments import motivation_idle_pool
from repro.sim.units import MIB


def test_motivation_idle_pool(benchmark):
    result = once(benchmark, lambda: motivation_idle_pool.run(burst=64))
    print()
    print(motivation_idle_pool.format_result(result))

    idle = result.strategy("idle pool")
    boot = result.strategy("boot on demand")
    clone = result.strategy("clone on demand")
    record(benchmark,
           idle_standing_mib=idle.standing_memory_bytes / MIB,
           clone_standing_mib=clone.standing_memory_bytes / MIB,
           boot_mean_ms=boot.mean_start_latency_ms,
           clone_mean_ms=clone.mean_start_latency_ms)

    # The idle pool pays the full fleet memory up front; Nephele keeps
    # one warm parent (~1/burst of the standing cost).
    assert idle.standing_memory_bytes > 30 * clone.standing_memory_bytes
    # Booting on demand is "too long" (paper: that's why pools exist);
    # cloning is close to warm-start latency.
    assert boot.mean_start_latency_ms > 100
    assert clone.mean_start_latency_ms < 35
    # And the burst itself costs ~3x less memory with clones.
    assert idle.burst_memory_bytes > 2.5 * clone.burst_memory_bytes
