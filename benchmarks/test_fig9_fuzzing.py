"""Fig 9: fuzzing throughput across the four setups."""

import pytest
from conftest import once, record

from repro.experiments import fig9_fuzzing as fig9

#: 60 simulated seconds per series keeps the benchmark quick; plateaus
#: are stable well before that (full 300 s via examples/).
DURATION_S = 60.0


def test_fig9_fuzzing(benchmark):
    result = once(benchmark, lambda: fig9.run(duration_s=DURATION_S))
    print()
    print(fig9.format_result(result))

    noclone = result.mean("Unikraft baseline (KFX+AFL)")
    clone = result.mean("Unikraft+cloning baseline (KFX+AFL)")
    process = result.mean("Linux process baseline (AFL)")
    module = result.mean("Linux kernel module baseline (KFX+AFL)")
    record(benchmark, noclone=noclone, clone=clone, process=process,
           module=module,
           clone_vs_process_pct=result.clone_vs_process_percent,
           module_vs_clone_pct=result.module_vs_clone_percent)

    # Paper plateaus: 2 / 470 / 590 / 320 exec/s.
    assert noclone == pytest.approx(2.0, abs=1.0)
    assert clone == pytest.approx(470.0, rel=0.08)
    assert process == pytest.approx(590.0, rel=0.08)
    assert module == pytest.approx(320.0, rel=0.08)
    # Ordering + the quoted gaps (18.6% and 31.9%).
    assert 12 <= result.clone_vs_process_percent <= 25
    assert 25 <= result.module_vs_clone_percent <= 40
    # Reset statistics: ~125 us / 3 pages vs ~250 us / 8 pages.
    clone_report = result.reports["Unikraft+cloning baseline (KFX+AFL)"]
    module_report = result.reports["Linux kernel module baseline (KFX+AFL)"]
    assert clone_report.avg_dirty_pages == pytest.approx(3, abs=0.5)
    assert module_report.avg_dirty_pages == pytest.approx(8, abs=0.5)
    assert module_report.avg_reset_us > 1.7 * clone_report.avg_reset_us
    # The non-baseline series are noisier and slightly slower.
    actual = result.reports["Unikraft+cloning (KFX+AFL)"]
    assert actual.mean_throughput < clone
