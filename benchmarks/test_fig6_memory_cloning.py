"""Fig 6: fork vs clone duration as allocation size grows."""

import pytest
from conftest import once, record

from repro.experiments import fig6_memory_cloning as fig6

SIZES_MB = (1, 2, 4, 16, 64, 256, 1024, 4096)


def test_fig6_memory_cloning(benchmark):
    result = once(benchmark,
                  lambda: fig6.run(sizes_mb=SIZES_MB, repetitions=2))
    print()
    print(fig6.format_result(result))

    smallest = result.rows[0]
    largest = result.rows[-1]
    record(benchmark,
           fork2_small_ms=smallest.process_fork2_ms,
           clone2_small_ms=smallest.clone2_ms,
           fork2_4gb_ms=largest.process_fork2_ms,
           clone2_4gb_ms=largest.clone2_ms,
           gap_small_pct=result.gap_percent(SIZES_MB[0]),
           gap_4gb_pct=result.gap_percent(SIZES_MB[-1]))

    # Paper anchors.
    assert smallest.process_fork2_ms == pytest.approx(0.07, abs=0.04)
    assert smallest.clone2_ms == pytest.approx(4.1, rel=0.25)
    assert largest.process_fork2_ms == pytest.approx(65.2, rel=0.1)
    assert largest.clone2_ms == pytest.approx(79.2, rel=0.1)
    # The gap narrows from thousands of percent to tens.
    assert result.gap_percent(SIZES_MB[0]) > 2000
    assert result.gap_percent(SIZES_MB[-1]) < 40
    # First call slower than second, for both fork and clone.
    for row in result.rows:
        assert row.process_fork1_ms > row.process_fork2_ms
        assert row.clone1_ms > row.clone2_ms
    # Clone duration flat below Xen's 4 MB minimum.
    assert result.row(1).clone2_ms == pytest.approx(result.row(4).clone2_ms,
                                                    rel=0.1)
    # Userspace operations are constant in allocation size (paper: 1.9 ms
    # for the second clone).
    user = [row.userspace2_ms for row in result.rows]
    assert max(user) - min(user) < 0.5
    assert user[0] == pytest.approx(1.9, rel=0.2)
