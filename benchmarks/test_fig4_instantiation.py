"""Fig 4: instantiation times (boot vs restore vs clone vs deep copy)."""

from conftest import once, record

from repro.experiments import fig4_instantiation as fig4

INSTANCES = 300


def test_fig4_instantiation(benchmark):
    result = once(benchmark, lambda: fig4.run(instances=INSTANCES))
    print()
    print(fig4.format_result(result))

    summary = result.summary()
    record(benchmark,
           boot_first_ms=summary["boot"]["first"],
           boot_last_ms=summary["boot"]["last"],
           clone_first_ms=summary["clone"]["first"],
           clone_last_ms=summary["clone"]["last"],
           clone_speedup=result.clone_speedup,
           rotations=result.rotations)

    # Paper shapes: boot 160->300 ms; restore slightly above boot;
    # deep copy 40->130 ms; clone 20->30 ms; clone ~8x faster than boot.
    assert 130 <= summary["boot"]["first"] <= 210
    assert summary["restore"]["first"] > summary["boot"]["first"]
    assert 30 <= summary["clone + XS deep copy"]["first"] <= 60
    assert 15 <= summary["clone"]["first"] <= 30
    assert summary["clone"]["last"] <= 45
    assert summary["boot"]["last"] > summary["boot"]["first"]
    assert 6.0 <= result.clone_speedup <= 11.0
    # xs_clone keeps the Xenstore log almost quiet (paper: 2 spikes per
    # 1000 clones => none expected in a 300-clone run).
    assert result.rotations["clone"] <= 1
    assert result.rotations["boot"] >= 1
