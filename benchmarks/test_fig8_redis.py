"""Fig 8: Redis database saving times vs number of keys."""

from conftest import once, record

from repro.experiments import fig8_redis as fig8


def test_fig8_redis(benchmark):
    result = once(benchmark, fig8.run)
    print()
    print(fig8.format_result(result))

    empty = result.row(0)
    full = result.row(1_000_000)
    record(benchmark,
           clone_empty_ms=empty.clone_ms,
           clone_1m_ms=full.clone_ms,
           fork_1m_ms=full.vm_fork_ms,
           save_1m_ms=full.unikraft_save_ms,
           userspace_ms=empty.userspace_ms)

    # Clone cost starts higher than fork cost (the 9pfs/I/O constant)...
    assert empty.clone_ms > empty.vm_fork_ms
    # ...but is amortized at large key counts: save dominates both.
    assert full.unikraft_save_ms > 5 * full.clone_ms
    assert full.vm_save_ms > 5 * full.vm_fork_ms
    # Save times comparable between fork and clone (same share).
    ratio = full.unikraft_save_ms / full.vm_save_ms
    assert 0.8 <= ratio <= 1.25
    # Fork and clone durations both grow with the updated keys.
    assert full.vm_fork_ms > empty.vm_fork_ms
    assert full.clone_ms > empty.clone_ms
    # Userspace ops stay constant across key counts.
    user = [row.userspace_ms for row in result.rows]
    assert max(user) - min(user) < 1.0
