"""Fig 7: NGINX throughput with worker processes vs worker clones."""

from conftest import once, record

from repro.experiments import fig7_nginx as fig7


def test_fig7_nginx(benchmark):
    result = once(benchmark, lambda: fig7.run(repetitions=30))
    print()
    print(fig7.format_result(result))

    record(benchmark, **{
        f"clones_{p.workers}w_rps": p.mean_rps for p in result.clones
    }, **{
        f"procs_{p.workers}w_rps": p.mean_rps for p in result.processes
    })

    clones = {p.workers: p for p in result.clones}
    procs = {p.workers: p for p in result.processes}
    # Linear growth with workers for both setups.
    for series in (clones, procs):
        ratio = series[4].mean_rps / series[1].mean_rps
        assert 3.4 <= ratio <= 4.6
    # Clones achieve higher throughput at every worker count...
    for workers in (1, 2, 3, 4):
        assert clones[workers].mean_rps > procs[workers].mean_rps
    # ...and are less variable (paper: "higher and less variable").
    assert clones[4].stdev_rps < procs[4].stdev_rps
    # Absolute scale: ~100-130k req/s at 4 workers.
    assert 95_000 <= clones[4].mean_rps <= 135_000
