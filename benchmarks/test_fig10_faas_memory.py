"""Fig 10: OpenFaaS memory consumption, containers vs unikernels."""

import pytest
from conftest import once, record

from repro.experiments import fig10_faas_memory as fig10


def test_fig10_faas_memory(benchmark):
    result = once(benchmark, fig10.run)
    print()
    print(fig10.format_result(result))

    container_first = result.containers.memory[1][1]
    unikernel_first = result.unikernels.memory[1][1]
    container_step = result.per_instance_mb(result.containers)
    unikernel_step = result.per_instance_mb(result.unikernels)
    record(benchmark,
           container_first_mb=container_first,
           unikernel_first_mb=unikernel_first,
           container_step_mb=container_step,
           unikernel_step_mb=unikernel_step)

    # Paper: first instances are similar (90 MB vs 85 MB)...
    assert container_first == pytest.approx(90, abs=8)
    assert unikernel_first == pytest.approx(85, rel=0.2)
    # ...but each further container costs ~220 MB vs ~35 MB per clone.
    assert container_step == pytest.approx(220, rel=0.1)
    assert unikernel_step == pytest.approx(35, rel=0.3)
    # Unikernel instances become ready sooner, event for event.
    for c_ready, u_ready in zip(result.containers.ready_times_s,
                                result.unikernels.ready_times_s):
        assert u_ready + 5 <= c_ready
    # Memory never decreases during the scale-up phase.
    mems = [m for _, m in result.unikernels.memory]
    assert all(b >= a - 1e-6 for a, b in zip(mems, mems[1:]))
