"""Extension benchmark (not a paper figure): the KVM port preserves the
headline results (paper §5.3 porting guidance / §9 future work)."""

from conftest import once, record

from repro.experiments import kvm_compare
from repro.sim.units import MIB


def test_extension_kvm_port_parity(benchmark):
    result = once(benchmark, kvm_compare.run)
    print()
    print(kvm_compare.format_result(result))

    record(benchmark,
           xen_speedup_4mb=result.speedup("xen", 4),
           kvm_speedup_4mb=result.speedup("kvm", 4),
           xen_clone_mib=result.xen_clone_bytes / MIB,
           kvm_clone_mib=result.kvm_clone_bytes / MIB)

    # Cloning beats booting by a large factor on both platforms.
    assert result.speedup("xen", 4) > 5
    assert result.speedup("kvm", 4) > 5
    # Clone cost grows with guest size on both (page-table work).
    for platform in ("xen", "kvm"):
        small = result.rows[0]
        large = result.rows[-1]
        clone_small = (small.xen_clone_ms if platform == "xen"
                       else small.kvm_clone_ms)
        clone_large = (large.xen_clone_ms if platform == "xen"
                       else large.kvm_clone_ms)
        assert clone_large > clone_small
    # Clones are far cheaper than full guests on both platforms.
    assert result.xen_clone_bytes < 4 * MIB
    assert result.kvm_clone_bytes < 24 * MIB  # VMM resident dominates
