"""Fig 5: memory density, booting vs cloning to exhaustion."""

from conftest import once, record

from repro.experiments import fig5_density as fig5
from repro.sim.units import GIB, MIB

#: Quarter-scale host (1 GB guest pool + 4 GB Dom0) keeps the benchmark
#: fast; the per-instance footprints (and hence the ratio) are scale-free.
HOST_BYTES = 5 * GIB


def test_fig5_memory_density(benchmark):
    result = once(benchmark,
                  lambda: fig5.run(sample_every=50,
                                   total_memory_bytes=HOST_BYTES))
    print()
    print(fig5.format_result(result))

    record(benchmark,
           boot_instances=result.boot.instances,
           clone_instances=result.clone.instances,
           boot_mib_per_instance=result.boot.per_instance_bytes / MIB,
           clone_mib_per_instance=result.clone.per_instance_bytes / MIB,
           density_ratio=result.density_ratio)

    # Paper shapes: ~4.4 MiB per booted 4 MiB guest, ~1.4-1.6 MiB per
    # clone (1 MiB of it the RX buffers), ~3x density.
    assert 4.0 * MIB <= result.boot.per_instance_bytes <= 5.0 * MIB
    assert 1.0 * MIB <= result.clone.per_instance_bytes <= 2.0 * MIB
    assert 2.5 <= result.density_ratio <= 4.0
    # Dom0 free declines with instances in both modes.
    assert result.boot.samples[0][2] > result.boot.samples[-1][2]
    assert result.clone.samples[0][2] > result.clone.samples[-1][2]


def test_fig5_full_scale_16gb(benchmark):
    """The paper's actual 16 GB host: 2800 boots vs 8900 clones."""
    result = once(benchmark, lambda: fig5.run(sample_every=500))
    print()
    print(fig5.format_result(result))
    record(benchmark,
           boot_instances=result.boot.instances,
           clone_instances=result.clone.instances,
           saved_gb=result.memory_saved_bytes / GIB)
    assert 2500 <= result.boot.instances <= 3100     # paper: 2800
    assert 8000 <= result.clone.instances <= 9800    # paper: 8900
    assert 18 <= result.memory_saved_bytes / GIB <= 27  # paper: 21 GB
