"""Demand profiles for the FaaS experiments.

The paper drives OpenFaaS with a constant closed-loop ab workload;
these profiles generalize the load generator so the autoscaler can be
studied under ramps, bursts and diurnal patterns as well.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


class DemandProfile:
    """Request demand as a function of time (seconds -> req/s)."""

    def rps_at(self, t_s: float) -> float:  # pragma: no cover - interface
        """Demand in requests/sec at time ``t_s``."""
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantDemand(DemandProfile):
    """The paper's setup: ab workers saturating from t=0."""

    rps: float

    def rps_at(self, t_s: float) -> float:
        """Constant demand."""
        return self.rps


@dataclass(frozen=True)
class StepDemand(DemandProfile):
    """Piecewise-constant demand: [(start_s, rps), ...] sorted by time."""

    steps: tuple[tuple[float, float], ...]

    def rps_at(self, t_s: float) -> float:
        """The rate of the last step at or before ``t_s``."""
        current = 0.0
        for start, rps in self.steps:
            if t_s >= start:
                current = rps
            else:
                break
        return current


@dataclass(frozen=True)
class RampDemand(DemandProfile):
    """Linear ramp from ``start_rps`` to ``end_rps`` over ``duration_s``."""

    start_rps: float
    end_rps: float
    duration_s: float

    def rps_at(self, t_s: float) -> float:
        """Linear interpolation, clamped at the end rate."""
        if t_s >= self.duration_s:
            return self.end_rps
        fraction = max(0.0, t_s / self.duration_s)
        return self.start_rps + (self.end_rps - self.start_rps) * fraction


@dataclass(frozen=True)
class BurstDemand(DemandProfile):
    """Square-wave bursts: ``peak_rps`` for the first ``duty`` fraction
    of each period, ``base_rps`` otherwise."""

    base_rps: float
    peak_rps: float
    period_s: float
    duty: float = 0.2

    def rps_at(self, t_s: float) -> float:
        """Peak during the duty window of each period, base otherwise."""
        phase = (t_s % self.period_s) / self.period_s
        return self.peak_rps if phase < self.duty else self.base_rps


@dataclass(frozen=True)
class DiurnalDemand(DemandProfile):
    """Sinusoidal day/night pattern between ``low_rps`` and ``high_rps``."""

    low_rps: float
    high_rps: float
    period_s: float

    def rps_at(self, t_s: float) -> float:
        """Sine between the low and high rates."""
        mid = (self.low_rps + self.high_rps) / 2.0
        amplitude = (self.high_rps - self.low_rps) / 2.0
        return mid + amplitude * math.sin(2 * math.pi * t_s / self.period_s)


def as_profile(demand) -> DemandProfile:
    """Accept a bare number or a profile."""
    if isinstance(demand, DemandProfile):
        return demand
    return ConstantDemand(float(demand))
