"""Function-as-a-Service: OpenFaaS with containers vs unikernel clones
(Figs 10 and 11, paper §7.3).

The gateway scales in requests-per-second mode: it periodically checks
the load per instance and launches one new instance whenever the value
exceeds the threshold, up to a replica cap. The container backend is a
pure accounting model (docker/K8s are outside the virtualization
platform); the unikernel backend actually clones a Python-interpreter
unikernel on the simulated platform — the function runtime dirties part
of the interpreter heap after the clone, which is what makes a clone
cost tens of MB rather than the raw ~1.4 MB of ring/page-table private
memory.

Scaling cadence: the paper reports instances becoming ready at
33/42/56 s (containers) and 3/14/25 s (unikernel clones). Those times
imply scale-up *decisions* roughly every 11 s starting at t=0, with a
~30 s container cold start vs a ~3 s clone readiness; the gateway below
is configured accordingly (see EXPERIMENTS.md for the discussion of the
30 s default query interval the paper quotes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.apps.demand import DemandProfile, as_profile
from repro.guest.api import GuestAPI, Region
from repro.guest.app import GuestApp
from repro.sim.units import MIB, SEC
from repro.toolstack.config import DomainConfig, P9Config, VifConfig

# ---------------------------------------------------------------------
# Workload calibration (Fig 10 / Fig 11 numbers quoted in §7.3)
# ---------------------------------------------------------------------
#: First container: image + services ("90 MB for the first container").
CONTAINER_FIRST_MB = 90
#: Each further container instance ("220 MB on average").
CONTAINER_PER_INSTANCE_MB = 220
#: Container instance capacity ("600 requests/sec" native Linux stack).
CONTAINER_CAPACITY_RPS = 600.0
#: Container cold start (decision -> K8s reports ready): the Fig 11
#: dashed lines (33/42/56 s) minus the decision times (0/11/22 s).
CONTAINER_START_MEAN_S = 32.5
CONTAINER_START_SD_S = 1.3

#: First unikernel: "85 MB ... out of which 64 MB are consumed by the VM
#: and 21 MB by the services in Dom0".
UNIKERNEL_VM_MB = 64
UNIKERNEL_SERVICES_MB = 21
#: Unikernel instance capacity ("300 requests/sec" with lwip).
UNIKERNEL_CAPACITY_RPS = 300.0
#: Clone readiness (decision -> ready): clone + Python runtime init +
#: KubeKraft reporting; Fig 11 dashed lines at 3/14/25 s.
UNIKERNEL_READY_MEAN_S = 2.9
UNIKERNEL_READY_SD_S = 0.2
#: Interpreter-heap fraction a function instance dirties after cloning;
#: chosen so a clone costs ~35 MB (Fig 10: "tens of megabytes (35 MB on
#: average) as opposed to hundreds ... for containers").
CLONE_DIRTY_MB = 33

#: Apache Benchmark: 8 worker threads, closed loop.
AB_WORKERS = 8
#: Per-worker request rate when not capacity-limited.
AB_WORKER_RPS = 180.0


class PythonFunctionApp(GuestApp):
    """Unikraft + Python 3.7 running a hello-world function.

    The Python runtime is shared between instances via a 9pfs root
    filesystem (paper §7.3); the interpreter heap is what gets dirtied.
    """

    image_name = "unikraft-python"

    def __init__(self) -> None:
        self.heap: Region | None = None
        self.requests_served = 0

    def main(self, api: GuestAPI) -> None:
        """Interpreter boot: touch most of the heap."""
        # Interpreter init: touches most of the heap.
        self.heap = api.alloc(48 * MIB, touch=True)

    def clone_for_child(self) -> "PythonFunctionApp":
        """Child state: same heap layout."""
        child = PythonFunctionApp()
        child.heap = self.heap
        return child

    def on_cloned(self, api: GuestAPI, child_index: int) -> None:
        """Function-runtime re-init: dirty part of the heap (COW)."""
        # Function runtime re-initialization dirties part of the
        # interpreter heap (COW copies) - the clone's real memory cost.
        if self.heap is not None:
            npages = min(self.heap.npages, (CLONE_DIRTY_MB * MIB) >> 12)
            api.touch(self.heap, npages=npages)


class FaasBackendType(enum.Enum):
    """Which backend serves the function instances."""

    CONTAINER = "containers"
    UNIKERNEL = "unikernels"


@dataclass
class FaasConfig:
    """Autoscaler configuration (paper: RPS mode, threshold 10, one new
    instance per trigger)."""

    threshold_rps: float = 10.0
    check_interval_s: float = 11.0
    first_check_s: float = 0.2
    max_replicas: int = 5
    scale_step: int = 1
    #: Optional scale-down: remove an instance when the per-instance
    #: load falls below this (None = never scale down, the paper's
    #: experiments only scale up).
    scale_down_rps: float | None = None
    min_replicas: int = 1


@dataclass
class Instance:
    index: int
    decided_at_s: float
    ready_at_s: float
    capacity_rps: float
    domid: int | None = None


@dataclass
class FaasTimeline:
    backend: FaasBackendType
    #: (t_s, served_rps) samples.
    throughput: list[tuple[float, float]] = field(default_factory=list)
    #: (t_s, memory_mb) samples.
    memory: list[tuple[float, float]] = field(default_factory=list)
    #: Times instances were reported ready (the dashed lines).
    ready_times_s: list[float] = field(default_factory=list)
    #: Times instances were removed by scale-down.
    scale_downs_s: list[float] = field(default_factory=list)


class OpenFaasGateway:
    """The gateway + autoscaler, driving either backend."""

    def __init__(self, platform, backend: FaasBackendType,
                 config: FaasConfig | None = None,
                 demand_rps: "float | DemandProfile" = AB_WORKERS * AB_WORKER_RPS) -> None:
        self.platform = platform
        self.backend = backend
        self.config = config if config is not None else FaasConfig()
        self.demand = as_profile(demand_rps)
        self.rng = platform.rng.fork(f"faas-{backend.value}")
        self.instances: list[Instance] = []
        self.timeline = FaasTimeline(backend=backend)
        self._parent_domid: int | None = None
        self._next_index = 0

    # ------------------------------------------------------------------
    # deployment
    # ------------------------------------------------------------------
    def deploy_initial(self) -> None:
        """Deploy the function with one warm instance at t=0."""
        if self.backend is FaasBackendType.UNIKERNEL:
            config = DomainConfig(
                name="faas-fn-0", memory_mb=UNIKERNEL_VM_MB,
                kernel="unikraft-python",
                vifs=[VifConfig(ip="10.0.3.1")],
                p9fs=[P9Config(tag="rootfs", export_root="/srv/python",
                               mount_point="/")],
                max_clones=64)
            domain = self.platform.xl.create(config, app=PythonFunctionApp())
            self._parent_domid = domain.domid
            instance = Instance(0, 0.0, 0.0, UNIKERNEL_CAPACITY_RPS,
                                domid=domain.domid)
        else:
            instance = Instance(0, 0.0, 0.0, CONTAINER_CAPACITY_RPS)
        self.instances.append(instance)
        self._next_index = 1

    def _scale_up(self, now_s: float) -> None:
        if len(self.instances) >= self.config.max_replicas:
            return
        index = self._next_index
        self._next_index += 1
        if self.backend is FaasBackendType.UNIKERNEL:
            assert self._parent_domid is not None
            children = self.platform.cloneop.clone(self._parent_domid, count=1)
            ready = now_s + self.rng.gauss_pos(UNIKERNEL_READY_MEAN_S,
                                               UNIKERNEL_READY_SD_S)
            instance = Instance(index, now_s, ready, UNIKERNEL_CAPACITY_RPS,
                                domid=children[0])
        else:
            ready = now_s + self.rng.gauss_pos(CONTAINER_START_MEAN_S,
                                               CONTAINER_START_SD_S)
            instance = Instance(index, now_s, ready, CONTAINER_CAPACITY_RPS)
        self.instances.append(instance)
        self.timeline.ready_times_s.append(instance.ready_at_s)

    def _scale_down(self, now_s: float) -> None:
        """Remove the newest ready instance (never the first)."""
        ready = [i for i in self.ready_instances(now_s) if i.index != 0]
        if not ready:
            return
        if len(self.ready_instances(now_s)) <= self.config.min_replicas:
            return
        victim = max(ready, key=lambda i: i.index)
        self.instances.remove(victim)
        if (self.backend is FaasBackendType.UNIKERNEL
                and victim.domid is not None
                and victim.domid in self.platform.hypervisor.domains):
            self.platform.xl.destroy(victim.domid)
        self.timeline.scale_downs_s.append(now_s)

    # ------------------------------------------------------------------
    # load + metrics
    # ------------------------------------------------------------------
    def ready_instances(self, now_s: float) -> list[Instance]:
        """Instances Kubernetes has reported ready by ``now_s``."""
        return [i for i in self.instances if i.ready_at_s <= now_s]

    def served_rps(self, now_s: float) -> float:
        """Requests served: min(demand, ready capacity), with jitter."""
        capacity = sum(i.capacity_rps for i in self.ready_instances(now_s))
        if capacity <= 0:
            return 0.0
        served = min(self.demand.rps_at(now_s), capacity)
        return served * (1.0 + self.rng.gauss(0.0, 0.015))

    def memory_mb(self, now_s: float) -> float:
        """Occupied memory, as the paper measures it (free / xl info)."""
        ready = self.ready_instances(now_s)
        if self.backend is FaasBackendType.CONTAINER:
            if not ready:
                return 0.0
            return (CONTAINER_FIRST_MB
                    + CONTAINER_PER_INSTANCE_MB * (len(ready) - 1))
        # Unikernels: Dom0 services + actual machine pages of the family.
        if not ready:
            return 0.0
        total_pages = 0
        for instance in ready:
            if instance.domid is None:
                continue
            domain = self.platform.hypervisor.domains.get(instance.domid)
            if domain is None:
                continue
            total_pages += domain.machine_pages()
        shared = self._family_shared_pages()
        vm_mb = (total_pages + shared) * 4096 / MIB
        return UNIKERNEL_SERVICES_MB + vm_mb

    def _family_shared_pages(self) -> int:
        if self._parent_domid is None:
            return 0
        domain = self.platform.hypervisor.domains.get(self._parent_domid)
        if domain is None:
            return 0
        return domain.memory.shared_pages()

    # ------------------------------------------------------------------
    # the experiment loop
    # ------------------------------------------------------------------
    def run(self, duration_s: float = 150.0,
            sample_every_s: float = 1.0) -> FaasTimeline:
        """Drive the autoscaler + load for ``duration_s`` simulated
        seconds, sampling throughput and memory."""
        self.deploy_initial()
        engine = self.platform.engine
        start_ms = self.platform.clock.now

        def now_s() -> float:
            return (self.platform.clock.now - start_ms) / SEC

        def check() -> None:
            t = now_s()
            ready = self.ready_instances(t)
            if not ready:
                return
            rps_per_instance = self.served_rps(t) / len(ready)
            # "We configured to launch a single new instance whenever the
            # threshold is exceeded" - even while others are starting.
            if rps_per_instance > self.config.threshold_rps:
                self._scale_up(t)
            elif (self.config.scale_down_rps is not None
                  and rps_per_instance < self.config.scale_down_rps
                  and len(self.instances) == len(ready)):
                self._scale_down(t)

        def sample() -> None:
            t = now_s()
            self.timeline.throughput.append((t, self.served_rps(t)))
            self.timeline.memory.append((t, self.memory_mb(t)))

        engine.schedule_after(self.config.first_check_s * SEC, check)
        checker = engine.every(self.config.check_interval_s * SEC, check,
                               first_at=self.platform.clock.now
                               + self.config.check_interval_s * SEC)
        sampler = engine.every(sample_every_s * SEC, sample,
                               first_at=self.platform.clock.now)
        engine.run_until(start_ms + duration_s * SEC)
        checker.cancel()
        sampler.cancel()
        return self.timeline
