"""VM fuzzing with KFX + AFL over clones (Fig 9, paper §7.2).

KFX clones the target VM, instruments the clone (breakpoints on
control-flow instructions, inserted after an explicit ``clone_cow`` so
the shared originals stay pristine), then loops: AFL generates an
input, the clone executes it, and ``clone_reset`` rolls the clone's
memory back to the post-instrumentation baseline.

Four setups are compared, as in the paper:

- Unikraft without cloning: a fresh VM is booted per input (~2 exec/s).
- Unikraft with cloning: ~470 exec/s.
- Native Linux process under plain AFL (no KFX): ~590 exec/s.
- A Linux kernel module under KFX: ~320 exec/s (more state to reset:
  8 dirty pages and ~250 us per reset vs 3 pages / ~125 us for
  Unikraft).

Each setup also has a *baseline* run fuzzing a trivially supported
syscall (getppid); the non-baseline runs hit partially unsupported
syscalls, which adds crash handling and throughput variance.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.apps.afl import AflFuzzer
from repro.guest.api import GuestAPI, Region
from repro.guest.app import GuestApp
from repro.guest.linux import LinuxProcess
from repro.sim import DeterministicRNG
from repro.sim.units import MIB, SEC
from repro.toolstack.config import DomainConfig

# ---------------------------------------------------------------------
# Workload calibration (derived from the Fig 9 plateaus; see module doc)
# ---------------------------------------------------------------------
#: AFL input generation + queue bookkeeping per iteration.
AFL_GEN_MS = 0.10
#: Executing one input in an instrumented Unikraft clone (breakpoint
#: single-steps included): 470/s total with gen+reset => ~1.9 ms.
EXEC_UNIKRAFT_MS = 1.90
#: Executing one input in the native Linux process (plain AFL,
#: fork-server child): 590/s total => ~1.5 ms + fork.
EXEC_PROCESS_MS = 1.50
#: Executing one input against the Linux kernel module under KFX:
#: 320/s total => ~2.75 ms.
EXEC_MODULE_MS = 2.75
#: Dirty pages per iteration ("a consistent average of 8 pages for
#: Linux in comparison to an average of 3 pages for Unikraft").
DIRTY_PAGES_UNIKRAFT = 3
DIRTY_PAGES_LINUX_MODULE = 8
#: Extra per-input work when fuzzing without cloning: KFX attaches to
#: and instruments every freshly booted VM.
NOCLONE_SETUP_MS = 310.0
#: Worst-case crash/timeout handling when an unsupported syscall is
#: hit (actual penalty is uniform in [0, this]). Crashes come from the
#: coverage-guided fuzzer actually decoding inputs into syscalls: "the
#: syscall subsystem is not fully supported for the Unikraft tree
#: version we used ... this can generate considerable variations".
CRASH_HANDLING_MS = 2.0
#: Syscalls per full (non-crashing) input.
SYSCALLS_PER_INPUT = AflFuzzer.INPUT_LEN // 2
#: Fixed fraction of the execution cost (setup/teardown); the rest
#: scales with how many syscalls actually ran before a crash cut the
#: input short.
EXEC_FIXED_FRACTION = 0.3
#: Text pages that receive breakpoints during instrumentation.
INSTRUMENTED_PAGES = 12


class FuzzMode(enum.Enum):
    """The four setups compared in Fig 9."""

    UNIKRAFT_NOCLONE = "unikraft-noclone"
    UNIKRAFT_CLONE = "unikraft-clone"
    LINUX_PROCESS = "linux-process"
    LINUX_MODULE = "linux-module"


class SyscallAdapterApp(GuestApp):
    """The adapter that interprets AFL input as system calls (§7.2)."""

    image_name = "unikraft-fuzz"

    def __init__(self) -> None:
        self.scratch: Region | None = None
        self.inputs_run = 0

    def main(self, api: GuestAPI) -> None:
        """Boot: allocate the adapter's scratch buffer."""
        self.scratch = api.alloc(64 * 1024, touch=True)

    def clone_for_child(self) -> "SyscallAdapterApp":
        """Child state: same scratch layout."""
        child = SyscallAdapterApp()
        child.scratch = self.scratch
        return child


@dataclass
class FuzzSample:
    """One point of the Fig 9 time series."""

    t_s: float
    execs_per_s: float


@dataclass
class FuzzReport:
    mode: FuzzMode
    baseline: bool
    samples: list[FuzzSample]
    total_execs: int
    avg_reset_us: float | None = None
    avg_dirty_pages: float | None = None
    extras: dict = field(default_factory=dict)

    @property
    def mean_throughput(self) -> float:
        if not self.samples:
            return 0.0
        return sum(s.execs_per_s for s in self.samples) / len(self.samples)


class FuzzSession:
    """One fuzzing run of a given mode."""

    def __init__(self, platform, mode: FuzzMode, baseline: bool = False,
                 rng: DeterministicRNG | None = None) -> None:
        self.platform = platform
        self.mode = mode
        self.baseline = baseline
        self.rng = rng if rng is not None else platform.rng.fork(
            f"fuzz-{mode.value}-{baseline}")
        self._target_domid: int | None = None
        self._clone_domid: int | None = None
        self._process: LinuxProcess | None = None
        self._reset_us_total = 0.0
        self._dirty_total = 0
        self._resets = 0
        self.fuzzer = AflFuzzer(self.rng, baseline=baseline)

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def _target_config(self, suffix: str) -> DomainConfig:
        kernel = ("alpine-linux" if self.mode is FuzzMode.LINUX_MODULE
                  else "unikraft-fuzz")
        memory = 128 if self.mode is FuzzMode.LINUX_MODULE else 16
        return DomainConfig(name=f"fuzz-target-{suffix}", memory_mb=memory,
                            kernel=kernel, max_clones=1_000_000,
                            start_clones_paused=True)

    def setup(self) -> None:
        """Prepare the target: boot, clone, instrument, snapshot."""
        platform = self.platform
        if self.mode is FuzzMode.LINUX_PROCESS:
            self._process = LinuxProcess(platform.clock, platform.costs,
                                         "fuzz-adapter",
                                         resident_bytes=2 * MIB)
            self._process.fork()  # prime the AFL fork server
            return
        if self.mode is FuzzMode.UNIKRAFT_NOCLONE:
            return  # a VM is created per input
        config = self._target_config(self.mode.value)
        target = platform.xl.create(config, app=SyscallAdapterApp())
        self._target_domid = target.domid
        # KFX clones the target and instruments the *clone* (paper §7.2).
        clone_domid = platform.xl.clone(target.domid)[0]
        platform.cloneop.resume_clone(clone_domid)
        self._clone_domid = clone_domid
        self._instrument(clone_domid)
        platform.cloneop.snapshot(clone_domid)

    def _instrument(self, domid: int) -> None:
        """Breakpoint insertion via the clone_cow subcommand."""
        domain = self.platform.hypervisor.get_domain(domid)
        text = domain.memory.segments[0]
        npages = min(INSTRUMENTED_PAGES, text.npages)
        self.platform.cloneop.clone_cow(0, domid, text.pfn_start, npages)

    # ------------------------------------------------------------------
    # the fuzzing loop
    # ------------------------------------------------------------------
    def run(self, duration_s: float = 300.0,
            sample_every_s: float = 1.0) -> FuzzReport:
        """Fuzz for ``duration_s`` simulated seconds; returns the report."""
        self.setup()
        clock = self.platform.clock
        start = clock.now
        end = start + duration_s * SEC
        samples: list[FuzzSample] = []
        bucket_end = start + sample_every_s * SEC
        bucket_execs = 0
        total = 0
        while clock.now < end:
            self._iteration()
            bucket_execs += 1
            total += 1
            while clock.now >= bucket_end:
                t_s = (bucket_end - start) / SEC
                samples.append(FuzzSample(
                    t_s, bucket_execs / sample_every_s))
                bucket_execs = 0
                bucket_end += sample_every_s * SEC
        report = FuzzReport(
            mode=self.mode, baseline=self.baseline, samples=samples,
            total_execs=total)
        report.extras = {
            "corpus_size": self.fuzzer.stats.corpus_size,
            "edges_found": self.fuzzer.stats.edges_found,
            "crashes": self.fuzzer.stats.crashes,
            "unique_crashing_inputs": len(self.fuzzer.crashing_inputs),
        }
        if self._resets:
            report.avg_reset_us = self._reset_us_total / self._resets
            report.avg_dirty_pages = self._dirty_total / self._resets
        self.teardown()
        return report

    def _exec_cost(self, base_ms: float, syscalls_run: int) -> float:
        """Crashing inputs cut execution short; cost scales with the
        syscalls that actually ran."""
        fraction = syscalls_run / max(1, SYSCALLS_PER_INPUT)
        return base_ms * (EXEC_FIXED_FRACTION
                          + (1.0 - EXEC_FIXED_FRACTION) * fraction)

    def _iteration(self) -> None:
        clock = self.platform.clock
        clock.charge(AFL_GEN_MS)
        result, _interesting = self.fuzzer.fuzz_one()
        if self.mode is FuzzMode.LINUX_PROCESS:
            assert self._process is not None
            self._process.fork()  # fork-server child per input
            self._process.children.clear()  # children exit immediately
            clock.charge(self._exec_cost(EXEC_PROCESS_MS,
                                         result.syscalls_run))
            if result.crashed:
                clock.charge(self.rng.uniform(0.0, CRASH_HANDLING_MS))
            return
        if self.mode is FuzzMode.UNIKRAFT_NOCLONE:
            self._noclone_iteration(result)
            return
        # Clone-backed iterations (Unikraft clone / Linux module).
        assert self._clone_domid is not None
        domain = self.platform.hypervisor.get_domain(self._clone_domid)
        exec_ms = (EXEC_MODULE_MS if self.mode is FuzzMode.LINUX_MODULE
                   else EXEC_UNIKRAFT_MS)
        clock.charge(self._exec_cost(exec_ms, result.syscalls_run))
        dirty = (DIRTY_PAGES_LINUX_MODULE
                 if self.mode is FuzzMode.LINUX_MODULE
                 else DIRTY_PAGES_UNIKRAFT)
        scratch = domain.memory.segments[0]
        domain.memory.write_range(scratch.pfn_start,
                                  min(dirty, scratch.npages))
        if result.crashed:
            clock.charge(self.rng.uniform(0.0, CRASH_HANDLING_MS))
        before = clock.now
        rolled_back = self.platform.cloneop.clone_reset(0, self._clone_domid)
        self._reset_us_total += (clock.now - before) * 1000.0
        self._dirty_total += rolled_back
        self._resets += 1

    def _noclone_iteration(self, result) -> None:
        """Without cloning, "we start a new VM instance for each AFL
        input because it is the only way of reaching the same state at
        the beginning of each iteration"."""
        platform = self.platform
        config = self._target_config(f"nc{platform.clock.now:.0f}")
        config.start_clones_paused = False
        domain = platform.xl.create(config, app=SyscallAdapterApp())
        platform.clock.charge(NOCLONE_SETUP_MS
                              + self._exec_cost(EXEC_UNIKRAFT_MS,
                                                result.syscalls_run))
        if result.crashed:
            platform.clock.charge(self.rng.uniform(0.0, CRASH_HANDLING_MS))
        platform.xl.destroy(domain.domid)

    def teardown(self) -> None:
        """Destroy the target and its fuzzing clone."""
        platform = self.platform
        if self._clone_domid is not None:
            platform.xl.destroy(self._clone_domid)
            self._clone_domid = None
        if self._target_domid is not None:
            platform.xl.destroy(self._target_domid)
            self._target_domid = None
