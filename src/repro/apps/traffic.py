"""Request shapes for front-door traffic (FaaS, NGINX, Redis).

The front door dispatches *requests*, not packets: each request carries
a service demand in work-milliseconds drawn from an exponential with
the shape's mean, and a replica is a processor-sharing server that
delivers one work-millisecond per virtual millisecond. A replica
serving a shape alone therefore sustains ``1000 / mean_service_ms``
requests per second — the shapes below are calibrated so that number
matches the per-instance capacities the paper's workloads already use
(Figs 7-11).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.faas import UNIKERNEL_CAPACITY_RPS
from repro.apps.nginx import SERVICE_US_CLONE
from repro.errors import ReproError

#: Single-threaded Redis on Unikraft serves ~85 k GET/SET per second
#: over the PV network path (redis-benchmark magnitude; the Fig 8
#: workload only measures BGSAVE, so this is the one shape constant not
#: anchored to a paper figure).
REDIS_OP_CAPACITY_RPS = 85_000.0


@dataclass(frozen=True)
class RequestShape:
    """One kind of user request, as the load balancer models it."""

    name: str
    #: Mean service demand per request (exponentially distributed).
    mean_service_ms: float
    description: str

    @property
    def capacity_rps(self) -> float:
        """Requests/sec one dedicated replica sustains at full speed."""
        return 1000.0 / self.mean_service_ms


#: FaaS invocation: one replica serves 300 req/s (paper §7.3, lwip).
FAAS_INVOKE = RequestShape(
    name="faas",
    mean_service_ms=1000.0 / UNIKERNEL_CAPACITY_RPS,
    description="OpenFaaS function invocation (Figs 10-11 workload)")

#: NGINX GET: the Fig 7 per-request clone-worker service time.
NGINX_GET = RequestShape(
    name="nginx",
    mean_service_ms=SERVICE_US_CLONE / 1000.0,
    description="NGINX static GET served by a pinned worker clone")

#: Redis GET/SET against a clone replica.
REDIS_OP = RequestShape(
    name="redis",
    mean_service_ms=1000.0 / REDIS_OP_CAPACITY_RPS,
    description="Redis GET/SET against a clone replica")

#: Registry, keyed by shape name (``--workload`` on the CLI).
SHAPES = {shape.name: shape for shape in (FAAS_INVOKE, NGINX_GET, REDIS_OP)}


def as_shape(shape: "RequestShape | str") -> RequestShape:
    """Resolve a shape by name, passing instances through."""
    if isinstance(shape, RequestShape):
        return shape
    try:
        return SHAPES[shape]
    except KeyError:
        raise ReproError(
            f"unknown request shape {shape!r} (known: {sorted(SHAPES)})"
        ) from None
