"""The Mini-OS UDP server of the instantiation benchmark (paper §6.1).

"Once the UDP server is ready it sends a UDP packet to notify the host.
After that, the VM waits for interrupts." For the cloning experiment the
server clones itself after sending the boot notification; each clone
binds a *unique* port so no two <address, port> tuples hash to the same
bond slave (paper §6.1).
"""

from __future__ import annotations

from repro.guest.api import GuestAPI
from repro.guest.app import GuestApp
from repro.net.packets import Packet
from repro.toolstack.dom0 import HOST_IP


class UdpServerApp(GuestApp):
    """UDP echo server with a host boot notification."""

    image_name = "minios-udp"

    def __init__(self, host_ip: str = HOST_IP, notify_port: int = 9999,
                 listen_port: int = 9000) -> None:
        self.host_ip = host_ip
        self.notify_port = notify_port
        self.listen_port = listen_port
        #: Filled in by whoever owns this instance after boot/clone.
        self.requests_served = 0

    # ------------------------------------------------------------------
    def _serve(self, api: GuestAPI, packet: Packet) -> None:
        self.requests_served += 1
        api.reply(packet, payload=packet.payload)

    def _ready(self, api: GuestAPI, port: int) -> None:
        api.udp_send(self.host_ip, self.notify_port,
                     payload=("ready", api.domid), src_port=port)

    def main(self, api: GuestAPI) -> None:
        """Bind the echo port and notify the host we are ready."""
        api.udp_bind(self.listen_port, lambda p: self._serve(api, p))
        self._ready(api, self.listen_port)

    def clone_for_child(self) -> "UdpServerApp":
        """Child state: same configuration."""
        child = UdpServerApp(self.host_ip, self.notify_port, self.listen_port)
        return child

    def on_cloned(self, api: GuestAPI, child_index: int) -> None:
        """Rebind to a unique port and announce readiness."""
        # Unique port per clone: the bond's layer3+4 hash must be able to
        # address each clone individually (paper §6.1).
        parent_port = self.listen_port
        self.listen_port = unique_clone_port(api.domid)
        api.udp_unbind(parent_port)
        api.udp_bind(self.listen_port, lambda p: self._serve(api, p))
        self._ready(api, self.listen_port)


def unique_clone_port(domid: int) -> int:
    """Deterministic unique UDP port for a clone."""
    return 10000 + (domid % 50000)
