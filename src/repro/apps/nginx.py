"""NGINX HTTP throughput: worker processes vs worker clones (Fig 7).

On Linux, NGINX forks one worker per core and relies on SO_REUSEPORT
socket sharding; the kernel load-balances incoming connections. With
unikernel clones, each worker is a clone whose vif sits behind the
family bond, so load balancing happens in Dom0 and the unikernel needs
no socket sharding (paper §7.1).

Request service is modelled at the fluid level (simulating 120 k
requests/s packet by packet would be pointless); the per-request
service costs below are the workload calibration. Connection-to-worker
distribution, however, goes through the *real* bond hash, so skew from
the layer3+4 policy shows up faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.guest.api import GuestAPI
from repro.guest.app import GuestApp
from repro.guest.linux import LinuxProcess
from repro.net.packets import Flow
from repro.sim import DeterministicRNG
from repro.sim.units import MIB, SEC
from repro.toolstack.config import DomainConfig, VifConfig

# ---------------------------------------------------------------------
# Workload calibration (Fig 7: ~27-28 k req/s per process worker and
# ~30 k per clone worker; clones win because "each CPU core is used
# exclusively by its pinned worker clone and because it avoids switches
# between user and kernel space").
# ---------------------------------------------------------------------
#: Per-request service time of a worker running as a Linux process:
#: parsing + response + socket syscalls + scheduler interference.
SERVICE_US_PROCESS = 36.0
#: Per-request service time of a pinned worker clone (PV ring I/O, no
#: user/kernel crossings).
SERVICE_US_CLONE = 33.0
#: Run-to-run throughput noise (std-dev fraction): processes vary more.
NOISE_PROCESS = 0.055
NOISE_CLONE = 0.015
#: Connections a worker needs before it is saturated.
SATURATION_CONNECTIONS = 32
#: Tail inflation over the mean (p99/mean) per deployment style: the
#: kernel path adds scheduling jitter the pinned PV path avoids.
TAIL_FACTOR_PROCESS = 1.35
TAIL_FACTOR_CLONE = 1.10


class NginxApp(GuestApp):
    """NGINX master (and, after cloning, workers) in a unikernel."""

    image_name = "unikraft-nginx"

    def __init__(self, listen_port: int = 80) -> None:
        self.listen_port = listen_port
        self.is_worker = True  # the master also serves (worker 0)
        self.requests_served = 0

    def main(self, api: GuestAPI) -> None:
        """Listen on the HTTP port."""
        api.udp_bind(self.listen_port, lambda p: None)

    def on_cloned(self, api: GuestAPI, child_index: int) -> None:
        """Worker start: the inherited listener keeps serving."""
        # Workers inherit the listening socket; the bond in Dom0 does
        # the load balancing, so no SO_REUSEPORT equivalent is needed.
        self.is_worker = True


@dataclass
class WrkResult:
    """One wrk run (paper: 400 connections/worker, 5 s, repeated 30x)."""

    workers: int
    duration_s: float
    total_requests: int
    throughput_rps: float
    per_worker_connections: list[int]
    #: Closed-loop response latency (Little's law: conns / throughput).
    latency_p50_ms: float = 0.0
    latency_p99_ms: float = 0.0


def _latencies(shares: list[float], rates: list[float],
               tail_factor: float) -> tuple[float, float]:
    """Per-worker closed-loop latency via Little's law, aggregated."""
    means = [1000.0 * conns / rate
             for conns, rate in zip(shares, rates) if rate > 0]
    if not means:
        return 0.0, 0.0
    mean = sum(means) / len(means)
    return mean, max(means) * tail_factor


class NginxCloneCluster:
    """Master + (n-1) worker clones behind the family bond."""

    def __init__(self, platform, workers: int, ip: str = "10.0.2.1") -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker: {workers}")
        cpus = platform.hypervisor.cpus
        if workers > 2 * cpus:
            raise ValueError(
                f"{workers} workers on {cpus} cores is past the useful range")
        self.platform = platform
        self.workers = workers
        self.ip = ip
        config = DomainConfig(
            name=f"nginx-{ip}", memory_mb=16, kernel="unikraft-nginx",
            vifs=[VifConfig(ip=ip)], max_clones=max(0, workers - 1))
        self.master = platform.xl.create(config, app=NginxApp())
        # Pin the master to core 0, clones round-robin over the cores
        # ("each CPU core is used exclusively by its pinned worker" when
        # workers <= cores; beyond that the credit scheduler shares).
        platform.domctl.set_vcpu_affinity(0, self.master.domid, 0, {0})
        self.clone_ids: list[int] = []
        if workers > 1:
            self.clone_ids = platform.cloneop.clone(self.master.domid,
                                                    count=workers - 1)
            for i, domid in enumerate(self.clone_ids, start=1):
                platform.domctl.set_vcpu_affinity(0, domid, 0, {i % cpus})

    def worker_domids(self) -> list[int]:
        """Master first, then the clones."""
        return [self.master.domid] + self.clone_ids

    def worker_ports(self) -> list:
        """Bond slave ports, one per serving worker."""
        if self.workers == 1:
            # Single worker: no bond was formed; the master serves alone.
            return [None]
        bond = self.platform.dom0.family_bond(self.ip)
        return list(bond.slaves)

    def run_wrk(self, rng: DeterministicRNG, duration_s: float = 5.0,
                connections_per_worker: int = 400) -> WrkResult:
        """One wrk closed-loop run against the cluster."""
        total_connections = connections_per_worker * self.workers
        shares = self._connection_shares(rng, total_connections)
        scheduler = self.platform.hypervisor.scheduler
        throughput = 0.0
        rates = []
        for domid, conns in zip(self.worker_domids(), shares):
            # Each worker gets its credit-scheduler share of a core: a
            # full core when pinned exclusively (the paper's setup),
            # less when workers outnumber cores.
            cpu_share = scheduler.cpu_share(domid)
            rate = cpu_share * 1e6 / SERVICE_US_CLONE
            rate *= 1.0 + rng.gauss(0.0, NOISE_CLONE)
            utilization = min(1.0, conns / SATURATION_CONNECTIONS)
            rates.append(rate * utilization)
            throughput += rate * utilization
        self.platform.clock.charge(duration_s * SEC)
        total = int(throughput * duration_s)
        p50, p99 = _latencies(shares, rates, TAIL_FACTOR_CLONE)
        return WrkResult(self.workers, duration_s, total, throughput, shares,
                         latency_p50_ms=p50, latency_p99_ms=p99)

    def _connection_shares(self, rng: DeterministicRNG,
                           total_connections: int) -> list[int]:
        """Distribute wrk's connections over workers via the real bond
        hash (ephemeral source ports)."""
        if self.workers == 1:
            return [total_connections]
        bond = self.platform.dom0.family_bond(self.ip)
        counts: dict[str, int] = {s.name: 0 for s in bond.slaves}
        for _ in range(total_connections):
            flow = Flow(src_ip="10.0.0.1", dst_ip=self.ip,
                        src_port=rng.randint(32768, 60999), dst_port=80,
                        proto="tcp")
            slave = bond.select_slave(flow)
            counts[slave.name] += 1
        return list(counts.values())

    def destroy(self) -> None:
        """Tear the whole cluster down."""
        for domid in self.clone_ids:
            self.platform.xl.destroy(domid)
        self.platform.xl.destroy(self.master.domid)


class NginxProcessCluster:
    """Baseline: NGINX master + forked workers with socket sharding."""

    def __init__(self, clock, costs, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker: {workers}")
        self.workers = workers
        self.master = LinuxProcess(clock, costs, "nginx-master",
                                   resident_bytes=4 * MIB)
        self.worker_processes = []
        for _ in range(workers):
            child, _duration = self.master.fork()
            self.worker_processes.append(child)
        self.clock = clock

    def run_wrk(self, rng: DeterministicRNG, duration_s: float = 5.0,
                connections_per_worker: int = 400) -> WrkResult:
        """One wrk closed-loop run against the process workers."""
        total_connections = connections_per_worker * self.workers
        # SO_REUSEPORT: the kernel hashes each connection to a listener.
        shares = [0] * self.workers
        for _ in range(total_connections):
            shares[rng.randint(0, self.workers - 1)] += 1
        throughput = 0.0
        rates = []
        for conns in shares:
            rate = 1e6 / SERVICE_US_PROCESS
            rate *= 1.0 + rng.gauss(0.0, NOISE_PROCESS)
            utilization = min(1.0, conns / SATURATION_CONNECTIONS)
            rates.append(rate * utilization)
            throughput += rate * utilization
        self.clock.charge(duration_s * SEC)
        total = int(throughput * duration_s)
        p50, p99 = _latencies(shares, rates, TAIL_FACTOR_PROCESS)
        return WrkResult(self.workers, duration_s, total, throughput, shares,
                         latency_p50_ms=p50, latency_p99_ms=p99)
