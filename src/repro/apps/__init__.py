"""Workload applications used by the paper's evaluation.

- :mod:`repro.apps.udp_server` — Mini-OS UDP server (§6.1 instantiation,
  §6.2 memory density).
- :mod:`repro.apps.memhog` — resident-allocation fork/clone probe (Fig 6).
- :mod:`repro.apps.nginx` — NGINX workers as processes vs clones (Fig 7).
- :mod:`repro.apps.redis` — Redis BGSAVE via fork/clone + 9pfs (Fig 8).
- :mod:`repro.apps.fuzzing` — KFX+AFL fuzzing over clones (Fig 9).
- :mod:`repro.apps.faas` — OpenFaaS autoscaling, containers vs clones
  (Fig 10, Fig 11).
"""

from repro.apps.faas import FaasBackendType, OpenFaasGateway, PythonFunctionApp
from repro.apps.fuzzing import FuzzMode, FuzzSession, SyscallAdapterApp
from repro.apps.memhog import MemhogApp
from repro.apps.nginx import NginxApp, NginxCloneCluster, NginxProcessCluster
from repro.apps.redis import (
    RedisApp,
    RedisProcessBaseline,
    bgsave_unikernel,
    redis_unikernel_config,
)
from repro.apps.udp_server import UdpServerApp

__all__ = [
    "UdpServerApp",
    "MemhogApp",
    "NginxApp",
    "NginxCloneCluster",
    "NginxProcessCluster",
    "RedisApp",
    "RedisProcessBaseline",
    "redis_unikernel_config",
    "bgsave_unikernel",
    "FuzzMode",
    "FuzzSession",
    "SyscallAdapterApp",
    "FaasBackendType",
    "OpenFaasGateway",
    "PythonFunctionApp",
]
