"""The memory-cloning probe of Fig 6 (paper §6.2).

"The application allocates a chunk of memory that must be resident
... Once the required memory is allocated, the application starts a
simple TCP server that receives requests for forking/cloning." The
Unikraft build uses the tinyalloc allocator; the Linux build runs the
same logic as a process.
"""

from __future__ import annotations

from repro.guest.api import GuestAPI, Region
from repro.guest.app import GuestApp
from repro.net.packets import Packet

#: The control port the fork/clone trigger server listens on.
CONTROL_PORT = 7000


class MemhogApp(GuestApp):
    """Allocate a resident chunk; clone on request."""

    image_name = "unikraft-memhog"

    def __init__(self, alloc_bytes: int) -> None:
        self.alloc_bytes = alloc_bytes
        self.region: Region | None = None
        self.clones_triggered = 0
        self.last_clone_domids: list[int] = []

    def main(self, api: GuestAPI) -> None:
        """Allocate the resident chunk; start the trigger server."""
        # tinyalloc returns touched, resident memory.
        self.region = api.alloc(self.alloc_bytes, touch=True)
        api.udp_bind(CONTROL_PORT, lambda p: self._control(api, p))

    def _control(self, api: GuestAPI, packet: Packet) -> None:
        if packet.payload == "fork":
            self.trigger_clone(api)

    def trigger_clone(self, api: GuestAPI) -> list[int]:
        """The fork/clone request handler; returns child domids."""
        self.clones_triggered += 1
        self.last_clone_domids = api.fork(1)
        return self.last_clone_domids

    def clone_for_child(self) -> "MemhogApp":
        """Child state: same region handle (identical pfn layout)."""
        child = MemhogApp(self.alloc_bytes)
        child.region = self.region  # same pfn layout in the clone
        return child

    def dirty_fraction(self, api: GuestAPI, fraction: float) -> int:
        """Touch a fraction of the allocated chunk (COW-faults shared
        pages); returns pages touched."""
        if self.region is None:
            raise RuntimeError("memhog not initialized")
        npages = max(1, int(self.region.npages * fraction))
        api.touch(self.region, npages=npages)
        return npages
