"""A coverage-guided fuzzer core (AFL model).

KFX "does coverage-guided fuzzing and therefore it needs to instrument
the VM code in order to step through the binary code of the targeted
guest" (paper §7.2). This module models the fuzzer side: a corpus of
inputs, mutation, an edge-coverage bitmap, and the target — the
syscall-adapter program of the experiment, which decodes AFL's input
bytes into a sequence of system calls.

The target's behaviour is synthetic but structured: each (syscall,
argument-class) pair exercises an edge; some syscalls are unsupported
in the Unikraft tree under test and crash the run. This makes corpus
growth, coverage saturation and crash discovery real, measurable
dynamics rather than random noise.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import DeterministicRNG

#: The guest's syscall table: number -> (supported, argument classes).
#: getppid is the trivially supported baseline syscall of the paper.
SYSCALL_TABLE: dict[int, tuple[bool, int]] = {
    0: (True, 4),    # read
    1: (True, 4),    # write
    2: (True, 6),    # open
    3: (True, 2),    # close
    9: (True, 8),    # mmap
    11: (True, 4),   # munmap
    12: (True, 3),   # brk
    39: (True, 1),   # getpid
    57: (False, 1),  # fork - unsupported in a unikernel!
    59: (False, 4),  # execve - unsupported
    110: (True, 1),  # getppid (the baseline target)
    158: (False, 3), # arch_prctl - partially supported
    231: (True, 1),  # exit_group
    435: (False, 2), # clone3 - unsupported
}

GETPPID = 110


@dataclass
class ExecutionResult:
    edges: frozenset[int]
    crashed: bool
    syscalls_run: int


def run_syscall_adapter(data: bytes, baseline: bool) -> ExecutionResult:
    """Execute one AFL input against the adapter.

    ``baseline=True`` pins every decoded syscall to getppid (the paper's
    stable-throughput control); otherwise the input chooses syscalls and
    may hit unsupported ones, which crash the iteration.
    """
    numbers = sorted(SYSCALL_TABLE)
    edges: set[int] = set()
    crashed = False
    ran = 0
    previous = 0
    for offset in range(0, len(data) - 1, 2):
        if baseline:
            nr = GETPPID
        else:
            nr = numbers[data[offset] % len(numbers)]
        supported, arg_classes = SYSCALL_TABLE[nr]
        arg_class = data[offset + 1] % arg_classes
        # Edge = (previous syscall -> this syscall, argument class).
        edges.add(hash((previous, nr, arg_class)) & 0xFFFF)
        previous = nr
        ran += 1
        if not supported:
            crashed = True
            break
    return ExecutionResult(frozenset(edges), crashed, ran)


@dataclass
class AflStats:
    executions: int = 0
    crashes: int = 0
    corpus_size: int = 0
    edges_found: int = 0


class AflFuzzer:
    """Corpus + mutation + coverage bookkeeping."""

    INPUT_LEN = 16

    def __init__(self, rng: DeterministicRNG, baseline: bool = False) -> None:
        self.rng = rng
        self.baseline = baseline
        self.corpus: list[bytes] = [bytes(self.INPUT_LEN)]
        self.coverage: set[int] = set()
        self.crashing_inputs: set[bytes] = set()
        self.stats = AflStats(corpus_size=1)

    def next_input(self) -> bytes:
        """Pick a corpus entry and mutate it (havoc-lite)."""
        seed = bytearray(self.rng.choice(self.corpus))
        for _ in range(self.rng.randint(1, 4)):
            position = self.rng.randint(0, len(seed) - 1)
            seed[position] = self.rng.randint(0, 255)
        return bytes(seed)

    def report(self, data: bytes, result: ExecutionResult) -> bool:
        """Record an execution; returns True if the input was interesting
        (new coverage) and joined the corpus."""
        self.stats.executions += 1
        if result.crashed:
            self.stats.crashes += 1
            self.crashing_inputs.add(data)
        new_edges = result.edges - self.coverage
        if not new_edges:
            return False
        self.coverage |= new_edges
        self.corpus.append(data)
        self.stats.corpus_size = len(self.corpus)
        self.stats.edges_found = len(self.coverage)
        return True

    def fuzz_one(self) -> tuple[ExecutionResult, bool]:
        """Generate, execute, record. Returns (result, interesting)."""
        data = self.next_input()
        result = run_syscall_adapter(data, self.baseline)
        return result, self.report(data, result)
