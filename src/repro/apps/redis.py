"""Redis BGSAVE: fork/clone + 9pfs serialization (Fig 8, paper §7.1).

"Redis relies on fork() to create processes for saving the in-memory
database to storage." The experiment issues a save right after startup
(the slow first fork), mass-inserts keys, then saves again and reports
the *second* fork/clone duration plus the time to serialize the
snapshot to a 9pfs share. The baseline runs Redis as a process inside
an Alpine Linux VM writing to the same kind of share.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.guest.api import GuestAPI, Region
from repro.guest.app import GuestApp
from repro.guest.linux import LinuxVM
from repro.sim.units import MIB
from repro.toolstack.config import DomainConfig, P9Config

# ---------------------------------------------------------------------
# Workload calibration
# ---------------------------------------------------------------------
#: Redis resident set right after startup.
BASE_RESIDENT_BYTES = 8 * MIB
#: In-memory footprint per key (key + value + dict/entry overhead).
VALUE_BYTES = 100
#: RDB bytes written per key.
RDB_BYTES_PER_KEY = 60
#: CPU time to serialize one key into RDB format (ms).
SERIALIZE_MS_PER_KEY = 0.0003
#: Fixed RDB header/footer work (ms).
SERIALIZE_FIXED_MS = 0.05


@dataclass
class SaveTimings:
    """One BGSAVE measurement."""

    fork_ms: float
    save_ms: float
    keys: int


class RedisApp(GuestApp):
    """Redis on Unikraft: dict store + clone-based BGSAVE."""

    image_name = "unikraft-redis"

    def __init__(self) -> None:
        self.keys = 0
        self.base_region: Region | None = None
        self.data_regions: list[Region] = []
        #: Set by the parent before forking; tells the child to save.
        self.pending_save = False
        #: Filled in by the child after its save completes.
        self.last_save_ms: float | None = None
        self.saves_done = 0

    def main(self, api: GuestAPI) -> None:
        """Redis startup: allocate the base resident set."""
        self.base_region = api.alloc(BASE_RESIDENT_BYTES, touch=True)

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------
    def mass_insert(self, api: GuestAPI, count: int) -> None:
        """Bulk-load ``count`` keys (the paper uses redis mass insertion)."""
        if count <= 0:
            return
        region = api.alloc(count * VALUE_BYTES, touch=True)
        self.data_regions.append(region)
        self.keys += count

    def set_key(self, api: GuestAPI, count: int = 1) -> None:
        """Individual SETs: same memory behaviour as a small bulk load."""
        self.mass_insert(api, count)

    # ------------------------------------------------------------------
    # BGSAVE (child side)
    # ------------------------------------------------------------------
    def on_cloned(self, api: GuestAPI, child_index: int) -> None:
        """The BGSAVE child: serialize and exit."""
        if self.pending_save:
            self.pending_save = False
            self._do_save(api)

    def _do_save(self, api: GuestAPI) -> None:
        start = api.now
        fid = api.open("/dump.rdb", mode="w", create=True)
        api.platform.clock.charge(
            SERIALIZE_FIXED_MS + SERIALIZE_MS_PER_KEY * self.keys)
        api.write_file(fid, self.keys * RDB_BYTES_PER_KEY)
        api.close_file(fid)
        self.last_save_ms = api.now - start
        self.saves_done += 1

    def clone_for_child(self) -> "RedisApp":
        """Child state: a snapshot view of the database."""
        child = RedisApp()
        child.keys = self.keys
        child.base_region = self.base_region
        child.data_regions = list(self.data_regions)
        child.pending_save = self.pending_save
        return child


class RedisSaveScheduler:
    """The three BGSAVE triggers (paper §7.1): "periodically, when some
    number of database updates is reached, and when requested explicitly
    by using the Redis client tool"."""

    def __init__(self, platform, domain,
                 save_every_updates: int | None = None,
                 save_every_s: float | None = None) -> None:
        self.platform = platform
        self.domain = domain
        self.save_every_updates = save_every_updates
        self.save_every_s = save_every_s
        self.saves: list[SaveTimings] = []
        self._updates_since_save = 0
        self._timer = None
        if save_every_s is not None:
            from repro.sim.units import SEC

            self._timer = platform.engine.every(save_every_s * SEC,
                                                self._periodic_save)

    # -- trigger 1: explicit (the redis-cli SAVE/BGSAVE command) --------
    def bgsave(self) -> SaveTimings:
        """Explicit trigger (redis-cli BGSAVE)."""
        timings = bgsave_unikernel(self.platform, self.domain)
        self._updates_since_save = 0
        self.saves.append(timings)
        return timings

    # -- trigger 2: update count (redis.conf "save <sec> <changes>") ----
    def record_updates(self, count: int) -> SaveTimings | None:
        """Count updates; saves when the configured threshold is hit."""
        self._updates_since_save += count
        if (self.save_every_updates is not None
                and self._updates_since_save >= self.save_every_updates):
            return self.bgsave()
        return None

    def insert(self, count: int) -> SaveTimings | None:
        """Insert keys and apply the update-count trigger."""
        app: RedisApp = self.domain.guest.app
        app.mass_insert(self.domain.guest.api, count)
        return self.record_updates(count)

    # -- trigger 3: periodic -------------------------------------------
    def _periodic_save(self) -> None:
        if self.domain.domid not in self.platform.hypervisor.domains:
            self.stop()
            return
        self.bgsave()

    def stop(self) -> None:
        """Cancel the periodic trigger."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None


def redis_unikernel_config(name: str, memory_mb: int = 256,
                           max_clones: int = 64) -> DomainConfig:
    """A Redis unikernel with a 9pfs share and no network (the paper
    skips cloning devices the clones do not need: "we skip cloning
    network devices because the Redis clones do not need any network
    support")."""
    return DomainConfig(
        name=name, memory_mb=memory_mb, kernel="unikraft-redis",
        p9fs=[P9Config(tag="data", export_root="/srv/redis", mount_point="/")],
        max_clones=max_clones, start_clones_paused=True)


def bgsave_unikernel(platform, domain) -> SaveTimings:
    """Trigger a clone-backed BGSAVE; returns the measured timings.

    The clone is configured to start paused so the fork duration (as
    seen by the parent) and the child's save duration are measured
    separately, like the two series of Fig 8. The child is destroyed
    afterwards (Redis savers exit when done).
    """
    app: RedisApp = domain.guest.app
    app.pending_save = True
    start = platform.clock.now
    children = platform.cloneop.clone(domain.domid, count=1)
    fork_ms = platform.clock.now - start
    app.pending_save = False

    child_domid = children[0]
    platform.cloneop.resume_clone(child_domid)
    child = platform.hypervisor.get_domain(child_domid)
    child_app: RedisApp = child.guest.app
    if child_app.last_save_ms is None:
        raise RuntimeError("Redis clone did not perform its save")
    timings = SaveTimings(fork_ms=fork_ms, save_ms=child_app.last_save_ms,
                          keys=app.keys)
    platform.xl.destroy(child_domid)
    return timings


class RedisProcessBaseline:
    """Redis as a process in an Alpine VM, saving to a 9pfs share."""

    def __init__(self, platform, vm_domain) -> None:
        self.platform = platform
        self.domain = vm_domain
        self.linux = LinuxVM(vm_domain.guest)
        self.process = self.linux.spawn("redis-server",
                                        resident_bytes=BASE_RESIDENT_BYTES)
        self.keys = 0

    def mass_insert(self, count: int) -> None:
        """Bulk-load keys into the process's resident set."""
        if count <= 0:
            return
        self.process.grow(count * VALUE_BYTES)
        self.keys += count

    def bgsave(self) -> SaveTimings:
        """fork() + child writes the RDB through the VM's 9pfs mount."""
        child, fork_ms = self.process.fork()
        start = self.platform.clock.now
        mount = self.linux.p9_mount()
        fid = mount.open("/dump.rdb", mode="w", create=True)
        self.platform.clock.charge(
            SERIALIZE_FIXED_MS + SERIALIZE_MS_PER_KEY * self.keys)
        mount.write(fid, self.keys * RDB_BYTES_PER_KEY)
        mount.close(fid)
        save_ms = self.platform.clock.now - start
        return SaveTimings(fork_ms=fork_ms, save_ms=save_ms, keys=self.keys)
