"""The cloning notification ring.

xencloned submits a shared ring to the hypervisor; the first stage
pushes one entry per child and raises ``VIRQ_CLONED``. A full ring acts
as backpressure on the first stage (paper §5: "The notification acts
also as backpressure, slowing down the first stage of the cloning
process when the notification ring is full").
"""

from __future__ import annotations

from repro.errors import ReproError

from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class CloneNotification:
    """One ring entry: "the minimum required information for xencloned
    to proceed with the second stage" (paper §5.1)."""

    parent_domid: int
    child_domid: int
    parent_start_info_mfn: int
    child_start_info_mfn: int


class RingFullError(ReproError):
    """The ring is full: backpressure on the first stage."""


class CloneNotificationRing:
    """Fixed-capacity single-producer ring."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError(f"non-positive ring capacity: {capacity}")
        self.capacity = capacity
        self._entries: deque[CloneNotification] = deque()
        self.pushes = 0
        self.backpressure_events = 0
        self.high_watermark = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def push(self, entry: CloneNotification) -> None:
        """Append an entry; raises RingFullError when at capacity."""
        if self.full:
            self.backpressure_events += 1
            raise RingFullError(
                f"clone notification ring full ({self.capacity} entries)")
        self._entries.append(entry)
        self.pushes += 1
        self.high_watermark = max(self.high_watermark, len(self._entries))

    def pop(self) -> CloneNotification | None:
        """Dequeue the oldest entry, or None when drained."""
        if not self._entries:
            return None
        return self._entries.popleft()

    def drain(self) -> list[CloneNotification]:
        """Empty the ring, returning everything in FIFO order."""
        entries = list(self._entries)
        self._entries.clear()
        return entries

    def discard(self, predicate) -> int:
        """Drop queued entries matching ``predicate`` (used when a batch
        unwinds children whose notifications were never consumed);
        returns the number of entries removed."""
        kept = [entry for entry in self._entries if not predicate(entry)]
        removed = len(self._entries) - len(kept)
        if removed:
            self._entries = deque(kept)
        return removed
