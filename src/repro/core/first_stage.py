"""First stage of cloning: the hypervisor's work (paper §4.1, §5.2).

Mirrors instantiation but with copy-semantics: struct domain is copied
and edited, vCPU state is replicated (with the rax fixup), guest memory
is COW-shared through dom_cow, private memory (page tables, p2m,
start_info, console/Xenstore interface pages, I/O rings and buffers) is
rebuilt or duplicated, and the grant table and event channels are
cloned — including the DOMID_CHILD IDC wiring.
"""

from __future__ import annotations

from repro.core.notify_ring import CloneNotification
from repro.xen.domain import Domain, DomainState
from repro.xen.hypervisor import Hypervisor


def clone_domain(hypervisor: Hypervisor, parent: Domain,
                 child_index: int) -> Domain:
    """Create one clone of ``parent``; returns the paused child.

    The caller (CLONEOP) is responsible for policy checks, pausing the
    parent, pushing the notification and raising VIRQ_CLONED.
    """
    costs = hypervisor.costs
    clock = hypervisor.clock
    tracer = hypervisor.tracer

    with tracer.span("first_stage.domain_copy"):
        clock.charge(costs.clone_first_stage_fixed)

        # struct domain copy + special pages + paging frames. Copying the
        # parent's structures is cheaper than creating them from scratch,
        # so the creation fixed cost is not charged here.
        child = hypervisor.create_domain(
            name="",  # xencloned generates and sets the clone's name
            memory_bytes=parent.memory_bytes,
            vcpus=len(parent.vcpus),
            populate=False,
            overhead_pages=costs.hyp_per_clone_overhead_pages,
            charge_create=False,
        )
        child.config = (parent.config.for_clone(f"{parent.name}-unnamed")
                        if parent.config is not None else None)

        # vCPUs: affinity and user registers, rax fixed up (paper §5.2).
        child.vcpus = [vcpu.clone_for_child(child_index)
                       for vcpu in parent.vcpus]

        # Private Xen pages were freshly allocated by create_domain; their
        # contents are rewritten from the parent's (domid references etc.).
        clock.charge(costs.page_copy * len(child.special))

    # Memory: share every shareable parent segment with the child.
    with tracer.span("first_stage.memory_share") as span:
        shared_pages = 0
        newly_shared = 0
        for segment in parent.memory.shareable_segments():
            extent = segment.extent
            if not extent.shared:
                hypervisor.frames.share_to_cow(extent)
                newly_shared += segment.npages
            hypervisor.frames.add_sharer(extent)
            child.memory.adopt_segment(segment.pfn_start, extent,
                                       segment.extent_offset, segment.npages,
                                       label=segment.label)
            shared_pages += segment.npages
        clock.charge(costs.share_page * newly_shared)
        span.set(shared_pages=shared_pages, newly_shared=newly_shared)

    # Page table and p2m cloning: the per-entry work that dominates for
    # large guests (paper §4.1 and Fig 6).
    with tracer.span("first_stage.pt_clone", pages=shared_pages):
        clock.charge((costs.pt_entry_clone + costs.p2m_entry_clone)
                     * shared_pages)

    # Grant table and event channels.
    with tracer.span("first_stage.grants_events"):
        if hypervisor.faults.enabled:
            hypervisor.faults.fire("grants.clone", parent=parent.domid,
                                   child=child.domid)
        child.grants = parent.grants.clone_for_child(child.domid)
        clock.charge(costs.grant_entry_clone * len(parent.grants))
        if hypervisor.faults.enabled:
            hypervisor.faults.fire("events.clone", parent=parent.domid,
                                   child=child.domid)
        child.events = parent.events.clone_for_child(child.domid)
        clock.charge(costs.evtchn_op * len(parent.events))
        hypervisor.connect_idc_child(parent, child)

    # Family bookkeeping.
    child.parent_id = parent.domid
    parent.children.append(child.domid)
    child.enable_cloning(parent.max_clones)

    # Guest-level state: device frontends (rings and RX buffers are
    # copied - the clone's dominant private memory) and the application.
    copied_pages = 0
    if parent.guest is not None:
        with tracer.span("first_stage.guest_copy") as span:
            copied_pages = parent.guest.clone_for_child(child, child_index)
            clock.charge(costs.page_copy * copied_pages)
            span.set(copied_pages=copied_pages)

    tracer.count("clone.pages_shared", shared_pages)
    tracer.count("clone.pages_copied", copied_pages)
    child.state = DomainState.PAUSED
    return child


def make_notification(parent: Domain, child: Domain) -> CloneNotification:
    """Build the ring entry for xencloned (start_info frame numbers are
    identified by their extent ids in the simulation)."""
    return CloneNotification(
        parent_domid=parent.domid,
        child_domid=child.domid,
        parent_start_info_mfn=parent.special["start_info"].extent_id,
        child_start_info_mfn=child.special["start_info"].extent_id,
    )
