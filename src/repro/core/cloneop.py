"""The CLONEOP hypercall.

Nephele extends the hypervisor interface with exactly one hypercall;
every cloning operation is a subcommand of it (paper §5.1): cloning a
guest (from inside, or from Dom0 with an explicit target), signalling
second-stage completion, enabling cloning globally, and — for the
fuzzing use case (§7.2) — ``clone_cow`` (explicit COW of pages about to
receive breakpoints) and ``clone_reset`` (restore a clone's memory to
its recorded baseline between fuzzing iterations).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ReproError
from repro.core import first_stage
from repro.core.notify_ring import CloneNotificationRing, RingFullError
from repro.xen.domain import Domain, DomainState
from repro.xen.domid import DOM0
from repro.xen.errors import XenPermissionError
from repro.xen.frames import Extent, PageType
from repro.xen.hypervisor import Hypervisor
from repro.xen.memory import Segment


class CloneSubOp(enum.Enum):
    """Subcommands of the CLONEOP hypercall."""

    CLONE = "clone"
    CLONE_COMPLETION = "clone_completion"
    CLONE_FAILED = "clone_failed"
    CLONE_COW = "clone_cow"
    CLONE_RESET = "clone_reset"
    SET_GLOBAL_ENABLE = "set_global_enable"


class CloneOpError(ReproError):
    """CLONEOP subcommand failure (policy or protocol violation)."""


#: Bounded backpressure: how many stall + wake-up cycles :meth:`CloneOp._notify`
#: attempts on a full notification ring before declaring xencloned stuck.
BACKPRESSURE_STALL_LIMIT = 8

#: Bounded VIRQ redelivery: how many times :meth:`CloneOp.clone` re-raises
#: VIRQ_CLONED (with exponential virtual backoff) when the batch wake-up
#: was lost before declaring the second stage dead.
VIRQ_RETRY_LIMIT = 4


@dataclass
class SegmentSnapshot:
    """Baseline record of one memory segment (for clone_reset)."""

    pfn_start: int
    npages: int
    extent: Extent
    extent_offset: int
    label: str


class CloneOp:
    """The hypervisor-resident CLONEOP implementation."""

    def __init__(self, hypervisor: Hypervisor,
                 ring_capacity: int = 64) -> None:
        self.hypervisor = hypervisor
        self.globally_enabled = False
        self.ring = CloneNotificationRing(ring_capacity)
        #: child domid -> parent domid, for in-flight second stages.
        self._pending: dict[int, int] = {}
        #: child domid -> reason, for second stages xencloned reported
        #: failed (consumed by the in-flight CLONE subop).
        self._failed: dict[int, str] = {}
        #: clone_reset baselines: domid -> list of segment snapshots.
        self._baselines: dict[int, list[SegmentSnapshot]] = {}
        self.stats = {"clones": 0, "resets": 0, "explicit_cows": 0,
                      "failed_clones": 0}
        hypervisor.set_cloneop(self)

    def _is_privileged(self, domid: int) -> bool:
        """Dom0 (whether or not modelled as a Domain object) and any
        privileged domain may issue control subops."""
        if domid == DOM0:
            return True
        domain = self.hypervisor.domains.get(domid)
        return domain is not None and domain.privileged

    # ------------------------------------------------------------------
    # subop: SET_GLOBAL_ENABLE (called by xencloned)
    # ------------------------------------------------------------------
    def set_global_enable(self, enabled: bool) -> None:
        """Enable/disable cloning host-wide (xencloned's privilege)."""
        self.globally_enabled = enabled

    # ------------------------------------------------------------------
    # subop: CLONE
    # ------------------------------------------------------------------
    def clone(self, caller_domid: int, count: int = 1,
              target_domid: int | None = None) -> list[int]:
        """Clone a guest ``count`` times; returns the children's domids.

        From inside a guest, ``target_domid`` is omitted (the guest
        clones itself). From Dom0 — e.g. for VM fuzzing — the target is
        passed explicitly (paper §5.1).
        """
        hyp = self.hypervisor
        tracer = hyp.tracer
        # The spans below partition the whole operation: every clock
        # charge between clone.op's start and end falls inside exactly
        # one of prepare / first_stage / handoff / resume, so the stage
        # durations sum to the clone's virtual elapsed time.
        with tracer.span("clone.op", caller=caller_domid, count=count):
            with tracer.span("clone.prepare"):
                hyp.clock.charge(hyp.costs.hypercall_base)
                if count < 1:
                    raise CloneOpError(f"non-positive clone count: {count}")
                if not self.globally_enabled:
                    raise CloneOpError("cloning is disabled globally "
                                       "(xencloned not running?)")
                if target_domid is None or target_domid == caller_domid:
                    parent = hyp.get_domain(caller_domid)
                else:
                    if not self._is_privileged(caller_domid):
                        raise XenPermissionError(
                            f"domain {caller_domid} may not clone "
                            f"domain {target_domid}")
                    parent = hyp.get_domain(target_domid)
                if not parent.may_clone(count):
                    raise CloneOpError(
                        f"domain {parent.domid} may not create {count} more "
                        f"clones (max {parent.max_clones}, created "
                        f"{parent.clones_created})")

                # The parent is paused until the completion of the second
                # stage, "to keep its state consistent for all its clones"
                # (paper §5).
                previous_state = parent.state
                hyp.pause_domain(parent.domid)

            children: list[Domain] = []
            for i in range(count):
                child_index = parent.clones_created
                # Domids are allocated monotonically, so "domains that
                # appeared during this first stage" is just "domid >=
                # the allocator's current value" — snapshotting the
                # whole domain set per child would be O(fleet) on the
                # success path.
                known_mark = hyp._next_domid
                try:
                    with tracer.span("clone.first_stage",
                                     parent=parent.domid) as span:
                        child = first_stage.clone_domain(hyp, parent,
                                                         child_index)
                        span.set(child=child.domid)
                except Exception:
                    # Unwind the partial child (ENOMEM mid-stage, ...) and
                    # every earlier sibling whose second stage has not run
                    # yet: the parent must come back runnable and nothing
                    # may leak (domains, ring entries, pending records).
                    hyp.faults.aborted("clone.first_stage")
                    self._abort_unplumbed_children(parent, children,
                                                   previous_state,
                                                   resume=False)
                    self._abort_partial_clone(parent, known_mark,
                                              previous_state)
                    raise
                parent.clones_created += 1
                self._pending[child.domid] = parent.domid
                try:
                    with tracer.span("clone.handoff", parent=parent.domid,
                                     child=child.domid):
                        self._notify(parent, child)
                except Exception:
                    # Handoff failed (ring stuck, xencloned fatal error):
                    # drop the half-plumbed child plus every earlier
                    # unplumbed sibling, then resume the parent.
                    self._pending.pop(child.domid, None)
                    self._failed.pop(child.domid, None)
                    parent.clones_created -= 1
                    self._abort_unplumbed_children(parent, children,
                                                   previous_state,
                                                   resume=False)
                    self._abort_partial_clone(parent, known_mark,
                                              previous_state)
                    raise
                children.append(child)
                self.stats["clones"] += 1

            # Coalesced wake-up: the per-child notifications above were
            # deferred (their event-channel sends are already charged),
            # so the whole batch wakes xencloned exactly once here.
            try:
                with tracer.span("clone.wakeup", count=len(children)):
                    hyp.flush_cloned()
                    # Per-child coordination cost, charged after the
                    # dispatch exactly as the per-child protocol did.
                    for _ in children:
                        hyp.clock.charge(hyp.costs.clone_coordination)
            except Exception:
                # A second stage failed mid-batch: drop every child whose
                # second stage did not complete and resume the parent.
                hyp.faults.aborted("clone.wakeup")
                self._abort_unplumbed_children(parent, children,
                                               previous_state)
                raise

            # The synchronous second stage has signalled completion (or
            # failure) for each child by now. Children whose VIRQ was
            # lost are still pending: re-raise it with exponential
            # virtual backoff before concluding xencloned is absent.
            failed = self._consume_failures(children)
            still_pending = [c.domid for c in children
                             if c.domid in self._pending]
            retries = 0
            while still_pending and retries < VIRQ_RETRY_LIMIT:
                retries += 1
                with tracer.span("clone.virq_retry", attempt=retries):
                    hyp.clock.charge(hyp.costs.clone_virq_retry_backoff
                                     * (2 ** (retries - 1)))
                    hyp.notify_cloned()
                failed.update(self._consume_failures(children))
                still_pending = [c.domid for c in children
                                 if c.domid in self._pending]
            if retries and not still_pending:
                hyp.faults.recovered("virq.deliver")
            if still_pending:
                # The second stage is genuinely dead: unwind every child
                # it never plumbed and hand the caller a clean failure.
                hyp.faults.aborted("virq.deliver")
                self._abort_unplumbed_children(parent, children,
                                               previous_state)
                raise CloneOpError(
                    f"second stage never completed for {still_pending} "
                    "(is xencloned attached?)")
            if failed:
                # Graceful degradation: xencloned cleaned up the failed
                # children (CLONE_FAILED) without aborting the batch;
                # only the survivors are resumed and returned.
                children = [c for c in children if c.domid not in failed]

            with tracer.span("clone.resume"):
                # rax fixups: 0 in the parent (paper §5.2).
                for vcpu in parent.vcpus:
                    vcpu.registers["rax"] = 0
                if (previous_state is DomainState.RUNNING
                        or previous_state is DomainState.CREATED):
                    hyp.unpause_domain(parent.domid)
                else:
                    parent.state = previous_state
                self._resume_children(parent, children)
        tracer.count("clone.ops")
        tracer.count("clone.children", len(children))
        if failed:
            tracer.count("clone.failed_children", len(failed))
        return [child.domid for child in children]

    def _consume_failures(self, children: list[Domain]) -> dict[int, str]:
        """Pop and return the CLONE_FAILED reports for ``children``."""
        return {child.domid: self._failed.pop(child.domid)
                for child in children if child.domid in self._failed}

    def _abort_partial_clone(self, parent: Domain, known_mark: int,
                             previous_state: DomainState) -> None:
        """Destroy every domain allocated at or after ``known_mark``
        (the domid allocator's value when the failed first stage
        began); only runs on the failure path."""
        hyp = self.hypervisor
        for domid in [d for d in hyp.domains if d >= known_mark]:
            orphan = hyp.domains[domid]
            if domid in parent.children:
                parent.children.remove(domid)
            orphan.parent_id = None
            hyp.destroy_domain(domid)
        if previous_state in (DomainState.RUNNING, DomainState.CREATED):
            hyp.unpause_domain(parent.domid)
        else:
            parent.state = previous_state

    def _notify(self, parent: Domain, child: Domain) -> None:
        """Queue a child's second-stage notification.

        The ring push is backed by a *bounded* stall loop: on a full
        ring the first stage wakes xencloned synchronously (one extra
        event-channel send, exactly what the pre-coalescing protocol
        charged on a full ring) and retries, up to
        :data:`BACKPRESSURE_STALL_LIMIT` times. The per-child wake-up
        itself is deferred; the batch is flushed once by :meth:`clone`.
        """
        entry = first_stage.make_notification(parent, child)
        hyp = self.hypervisor
        stalled = False
        for _ in range(BACKPRESSURE_STALL_LIMIT):
            try:
                if hyp.faults.enabled:
                    hyp.faults.fire("notify.ring", parent=parent.domid,
                                    child=child.domid)
                self.ring.push(entry)
                break
            except RingFullError:
                # Backpressure: stall the first stage until xencloned
                # drains. A wake-up that frees no slot is retried — a
                # daemon draining slowly makes progress eventually; one
                # that never drains hits the bound below.
                stalled = True
                hyp.notify_cloned()
        else:
            hyp.faults.aborted("notify.ring")
            raise CloneOpError(
                f"clone notification ring still full after "
                f"{BACKPRESSURE_STALL_LIMIT} wake-ups "
                "(is xencloned draining?)")
        if stalled:
            hyp.faults.recovered("notify.ring")
        hyp.notify_cloned(defer=True)

    def _abort_unplumbed_children(self, parent: Domain,
                                  children: list[Domain],
                                  previous_state: DomainState,
                                  resume: bool = True) -> None:
        """Unwind children whose second stage never completed (their
        domids are still pending) after a failed batch wake-up; children
        already plumbed by xencloned stay alive, like in the per-child
        notification protocol. ``resume=False`` leaves the parent's
        state to the caller (used when another unwind step follows)."""
        hyp = self.hypervisor
        aborted: set[int] = set()
        for child in children:
            # Failure reports for this batch die with it.
            self._failed.pop(child.domid, None)
            if self._pending.pop(child.domid, None) is None:
                continue
            aborted.add(child.domid)
            parent.clones_created -= 1
            self.stats["clones"] -= 1
            child.parent_id = None
            if child.domid in parent.children:
                parent.children.remove(child.domid)
            hyp.destroy_domain(child.domid)
        # Purge their queued notifications: xencloned must never see an
        # entry for a domain that no longer exists.
        if aborted:
            self.ring.discard(lambda entry: entry.child_domid in aborted)
        if not resume:
            return
        if previous_state in (DomainState.RUNNING, DomainState.CREATED):
            hyp.unpause_domain(parent.domid)
        else:
            parent.state = previous_state

    def _resume_children(self, parent: Domain, children: list[Domain]) -> None:
        start_paused = (parent.config is not None
                        and parent.config.start_clones_paused)
        for child in children:
            if start_paused:
                continue
            self.resume_clone(child.domid)

    def resume_clone(self, child_domid: int) -> None:
        """Unpause a clone and run its post-fork continuation."""
        child = self.hypervisor.get_domain(child_domid)
        self.hypervisor.unpause_domain(child_domid)
        if child.guest is not None:
            rax = child.vcpus[0].registers["rax"]
            child.guest.on_resumed_after_clone(rax - 1)

    # ------------------------------------------------------------------
    # subop: CLONE_COMPLETION (called by xencloned)
    # ------------------------------------------------------------------
    def clone_completion(self, caller_domid: int, parent_domid: int,
                         child_domid: int) -> None:
        """xencloned signals that a child's second stage finished."""
        if not self._is_privileged(caller_domid):
            raise XenPermissionError("clone_completion is Dom0-only")
        self.hypervisor.clock.charge(self.hypervisor.costs.hypercall_base)
        pending_parent = self._pending.pop(child_domid, None)
        if pending_parent != parent_domid:
            raise CloneOpError(
                f"unexpected completion for child {child_domid} "
                f"(parent {parent_domid}, pending {pending_parent})")

    # ------------------------------------------------------------------
    # subop: CLONE_FAILED (called by xencloned)
    # ------------------------------------------------------------------
    def clone_failed(self, caller_domid: int, parent_domid: int,
                     child_domid: int, reason: str = "") -> None:
        """xencloned reports a child whose second stage failed.

        The hypervisor unwinds the half-plumbed child — family links,
        clone accounting, frames — while the rest of the batch proceeds
        (graceful degradation: one bad child must not abort its
        siblings). The in-flight CLONE subop consumes the report and
        drops the child from its result.
        """
        if not self._is_privileged(caller_domid):
            raise XenPermissionError("clone_failed is Dom0-only")
        hyp = self.hypervisor
        hyp.clock.charge(hyp.costs.hypercall_base)
        pending_parent = self._pending.pop(child_domid, None)
        if pending_parent != parent_domid:
            raise CloneOpError(
                f"unexpected failure report for child {child_domid} "
                f"(parent {parent_domid}, pending {pending_parent})")
        parent = hyp.get_domain(parent_domid)
        parent.clones_created -= 1
        self.stats["clones"] -= 1
        self.stats["failed_clones"] += 1
        child = hyp.domains.get(child_domid)
        if child is not None:
            child.parent_id = None
            if child_domid in parent.children:
                parent.children.remove(child_domid)
            hyp.clock.charge(hyp.costs.clone_abort_fixed)
            hyp.destroy_domain(child_domid)
        self._failed[child_domid] = reason
        hyp.faults.aborted("clone.second_stage")
        hyp.tracer.count("clone.failed")

    # ------------------------------------------------------------------
    # subop: CLONE_COW (fuzzing: breakpoint insertion, §7.2)
    # ------------------------------------------------------------------
    def clone_cow(self, caller_domid: int, target_domid: int, pfn: int,
                  npages: int = 1):
        """Explicitly trigger COW on a clone's pages so the fuzzer can
        plant breakpoints without touching the shared originals."""
        if not self._is_privileged(caller_domid):
            raise XenPermissionError("clone_cow is Dom0-only")
        target = self.hypervisor.get_domain(target_domid)
        stats = target.memory.write_range(pfn, npages)
        self.hypervisor.clock.charge(
            self.hypervisor.costs.hypercall_base
            + self.hypervisor.costs.clone_cow_per_page * npages)
        self.stats["explicit_cows"] += npages
        return stats

    # ------------------------------------------------------------------
    # subop: CLONE_RESET (fuzzing: restore memory between iterations)
    # ------------------------------------------------------------------
    def snapshot(self, target_domid: int) -> int:
        """Record the reset baseline for ``target_domid``.

        Models KFX keeping the original contents of the pages it will
        restore: the baseline holds its own references on the shared
        extents so resets can re-map them. Returns segments recorded.
        """
        target = self.hypervisor.get_domain(target_domid)
        self.release_baseline(target_domid)
        baseline: list[SegmentSnapshot] = []
        for seg in target.memory.segments:
            if seg.extent.page_type is not PageType.NORMAL:
                continue
            if seg.extent.shared:
                self.hypervisor.frames.add_ref_range(
                    seg.extent, seg.extent_offset, seg.npages)
            baseline.append(SegmentSnapshot(
                pfn_start=seg.pfn_start, npages=seg.npages,
                extent=seg.extent, extent_offset=seg.extent_offset,
                label=seg.label))
        self._baselines[target_domid] = baseline
        target.memory.clear_dirty()
        return len(baseline)

    def clone_reset(self, caller_domid: int, target_domid: int) -> int:
        """Restore a clone's memory to its baseline; returns the number
        of dirty pages that were rolled back."""
        if not self._is_privileged(caller_domid):
            raise XenPermissionError("clone_reset is Dom0-only")
        baseline = self._baselines.get(target_domid)
        if baseline is None:
            raise CloneOpError(
                f"no reset baseline recorded for domain {target_domid}")
        target = self.hypervisor.get_domain(target_domid)
        frames = self.hypervisor.frames
        dirty = target.memory.clear_dirty()

        # A segment identical to its baseline snapshot would be dropped
        # and immediately re-added - skip the pair (pfn_start makes the
        # key unique within a domain).
        def seg_key(pfn_start, npages, extent, offset):
            return (pfn_start, npages, extent.extent_id, offset)

        baseline_keys = {
            seg_key(s.pfn_start, s.npages, s.extent, s.extent_offset)
            for s in baseline
        }
        keep_extents = {snap.extent.extent_id for snap in baseline}
        survivors: list[Segment] = []
        unchanged: set = set()
        for seg in target.memory.segments:
            if seg.extent.page_type is not PageType.NORMAL:
                survivors.append(seg)
                continue
            key = seg_key(seg.pfn_start, seg.npages, seg.extent,
                          seg.extent_offset)
            if key in baseline_keys:
                survivors.append(seg)
                unchanged.add(key)
                continue
            if seg.extent.shared:
                frames.drop_ref_range(seg.extent, seg.extent_offset,
                                      seg.npages)
            elif seg.extent.extent_id not in keep_extents:
                frames.free_extent(seg.extent)
            # Baseline-private extents are kept; they get re-mapped below.

        restored: list[Segment] = []
        for snap in baseline:
            key = seg_key(snap.pfn_start, snap.npages, snap.extent,
                          snap.extent_offset)
            if key in unchanged:
                continue
            if snap.extent.shared:
                frames.add_ref_range(snap.extent, snap.extent_offset,
                                     snap.npages)
            restored.append(Segment(snap.pfn_start, snap.npages, snap.extent,
                                    snap.extent_offset, snap.label))
        merged = survivors + restored
        merged.sort(key=lambda s: s.pfn_start)
        target.memory.segments = merged
        target.memory._starts_cache = None

        self.hypervisor.clock.charge(
            self.hypervisor.costs.hypercall_base
            + self.hypervisor.costs.clone_reset_fixed
            + self.hypervisor.costs.clone_reset_per_page * dirty)
        self.stats["resets"] += 1
        return dirty

    # ------------------------------------------------------------------
    # host fail-stop (the fleet tier)
    # ------------------------------------------------------------------
    def host_shutdown(self) -> dict[str, int]:
        """Purge all in-flight clone state when the host fail-stops.

        The fleet calls this while powering off a crashed or fenced
        host: pending second-stage records, queued ring notifications,
        failure reports and reset baselines all die with the host.
        Nothing is charged to the clock (the host is dead); baseline
        extent references are dropped so the frame table balances for
        the dead-host accounting in ``audit_fleet``. Returns the purge
        counts.
        """
        purged = {"pending": len(self._pending),
                  "failed": len(self._failed),
                  "ring": len(self.ring),
                  "baselines": len(self._baselines)}
        self._pending.clear()
        self._failed.clear()
        self.ring.discard(lambda entry: True)
        for domid in list(self._baselines):
            self.release_baseline(domid)
        self.globally_enabled = False
        return purged

    def release_baseline(self, domid: int) -> None:
        """Drop a baseline's extent references (on domain teardown)."""
        baseline = self._baselines.pop(domid, None)
        if not baseline:
            return
        for snap in baseline:
            if snap.extent.shared:
                self.hypervisor.frames.drop_ref_range(
                    snap.extent, snap.extent_offset, snap.npages)
