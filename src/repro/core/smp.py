"""SMP mitigation via clone fleets (paper §9).

"Cloning can also be used to side-step other limitations of existing
unikernels, for instance lack of SMP support can be mitigated by
running clones on different CPUs." A :class:`CloneFleet` turns one
single-vCPU unikernel into a family with one member pinned per physical
CPU — the pattern the NGINX experiment uses, packaged as a first-class
primitive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.cloneop import CloneOpError
from repro.xen.domain import Domain
from repro.xen.errors import XenInvalidError


@dataclass
class FleetMember:
    domid: int
    cpu: int
    is_parent: bool


@dataclass
class CloneFleet:
    """A parent plus clones, one per physical CPU."""

    platform: object
    parent_domid: int
    members: list[FleetMember] = field(default_factory=list)

    @property
    def size(self) -> int:
        return len(self.members)

    def domains(self) -> list[Domain]:
        """The live Domain objects of every member."""
        return [self.platform.hypervisor.get_domain(m.domid)
                for m in self.members]

    def member_on_cpu(self, cpu: int) -> FleetMember:
        """The member pinned to ``cpu``."""
        for member in self.members:
            if member.cpu == cpu:
                return member
        raise XenInvalidError(f"no fleet member on CPU {cpu}")

    def scale_to(self, cpus: int) -> list[int]:
        """Grow the fleet to cover ``cpus`` CPUs; returns new domids."""
        platform = self.platform
        if cpus > platform.hypervisor.cpus:
            raise XenInvalidError(
                f"host has {platform.hypervisor.cpus} CPUs, asked for {cpus}")
        if cpus <= self.size:
            return []
        needed = cpus - self.size
        parent = platform.hypervisor.get_domain(self.parent_domid)
        if not parent.may_clone(needed):
            raise CloneOpError(
                f"fleet needs {needed} more clones but domain "
                f"{self.parent_domid} has budget "
                f"{parent.max_clones - parent.clones_created}")
        new_ids = platform.cloneop.clone(self.parent_domid, count=needed)
        next_cpu = self.size
        for domid in new_ids:
            platform.domctl.set_vcpu_affinity(0, domid, 0, {next_cpu})
            self.members.append(FleetMember(domid, next_cpu, False))
            next_cpu += 1
        return new_ids

    def destroy_clones(self) -> None:
        """Tear down the clones, keep the parent."""
        for member in [m for m in self.members if not m.is_parent]:
            self.platform.xl.destroy(member.domid)
        self.members = [m for m in self.members if m.is_parent]


def build_fleet(platform, parent_domid: int,
                cpus: int | None = None) -> CloneFleet:
    """Pin ``parent_domid`` to CPU 0, clone it across the remaining CPUs.

    ``cpus`` defaults to every physical CPU on the host. Every member
    ends up pinned to its own core, ready for embarrassingly-parallel
    scale-out (the unikernel itself stays single-vCPU).
    """
    target = platform.hypervisor.cpus if cpus is None else cpus
    if target < 1:
        raise XenInvalidError(f"fleet needs at least one CPU: {target}")
    parent = platform.hypervisor.get_domain(parent_domid)
    if len(parent.vcpus) != 1:
        raise XenInvalidError(
            "clone fleets are for single-vCPU unikernels "
            f"(domain {parent_domid} has {len(parent.vcpus)})")
    platform.domctl.set_vcpu_affinity(0, parent_domid, 0, {0})
    fleet = CloneFleet(platform, parent_domid)
    fleet.members.append(FleetMember(parent_domid, 0, True))
    fleet.scale_to(target)
    return fleet
