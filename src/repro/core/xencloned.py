"""xencloned: the Nephele second-stage daemon (paper §4.2, §5.2.1).

Runs in Dom0, woken by ``VIRQ_CLONED``. For each notification it
introduces the child to xenstored (passing the parent ID), generates
and sets the clone's name — guaranteed unique, so no xl-style name scan
is needed — clones the device directories (with ``xs_clone`` or, for
the ablation, the pre-Nephele deep copy), reacts to the udev events the
backends emit (enslaving clone vifs to the family's bond or OVS group),
asks the 9pfs backend over QMP to clone fid tables, and finally signals
completion back to the hypervisor via CLONEOP.
"""

from __future__ import annotations

import enum

from repro.core.cloneop import CloneOp
from repro.devices.console import console_backend_path, console_frontend_path
from repro.errors import ReproError
from repro.devices.p9 import p9_backend_path, p9_frontend_path
from repro.devices.udev import UdevEvent
from repro.net.bridge import Bridge
from repro.toolstack.dom0 import Dom0
from repro.xen.domid import DOM0
from repro.xen.domain import Domain
from repro.xen.events import VIRQ_CLONED
from repro.xen.hypervisor import Hypervisor
from repro.xenstore.client import XsHandle
from repro.xenstore.clone import XsCloneOp


class CloneSwitchMode(enum.Enum):
    """How clone vifs are aggregated (paper §5.2.1)."""

    BOND = "bond"
    OVS = "ovs"


class Xencloned:
    """The second-stage coordinator."""

    def __init__(self, hypervisor: Hypervisor, dom0: Dom0, cloneop: CloneOp,
                 use_xs_clone: bool = True,
                 switch_mode: CloneSwitchMode = CloneSwitchMode.BOND) -> None:
        self.hypervisor = hypervisor
        self.dom0 = dom0
        self.cloneop = cloneop
        self.use_xs_clone = use_xs_clone
        self.switch_mode = switch_mode
        self.handle = XsHandle(dom0.xenstore, client="xencloned")
        #: Parents whose Xenstore info is cached ("on first cloning the
        #: parent Xenstore information is read and cached by xencloned to
        #: speed up future invocations", paper §6.2).
        self._parent_cache: set[int] = set()
        self.clones_completed = 0

        hypervisor.register_virq_handler(VIRQ_CLONED, self._on_virq)
        dom0.udev.subscribe(self._on_udev)
        # xencloned is responsible for enabling cloning globally (§5.1).
        cloneop.set_global_enable(True)

    # ------------------------------------------------------------------
    # host fail-stop (the fleet tier)
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """The daemon dies with its host (fleet crash/fence path).

        Cloning is disabled globally — a fenced host that races its
        power-off can no longer start new clones — and the parent-info
        cache is dropped.
        """
        self.cloneop.set_global_enable(False)
        self._parent_cache.clear()

    # ------------------------------------------------------------------
    # VIRQ_CLONED handling
    # ------------------------------------------------------------------
    def _on_virq(self, virq: int) -> None:
        if virq != VIRQ_CLONED:
            return
        while True:
            entry = self.cloneop.ring.pop()
            if entry is None:
                break
            try:
                self._second_stage(entry.parent_domid, entry.child_domid)
            except ReproError as error:
                # Graceful degradation: one child's second stage failing
                # (backend error, Xenstore trouble) must not abort the
                # rest of the batch. Clean the half-plumbed child up and
                # report it; the remaining ring entries still run.
                self._abort_child(entry.parent_domid, entry.child_domid,
                                  error)

    def _second_stage(self, parent_domid: int, child_domid: int) -> None:
        parent = self.hypervisor.get_domain(parent_domid)
        child = self.hypervisor.get_domain(child_domid)
        tracer = self.hypervisor.tracer

        with tracer.span("clone.second_stage", parent=parent_domid,
                         child=child_domid):
            with tracer.span("clone.second_stage.introduce"):
                # 1. Introduce the child to xenstored, with the parent ID.
                self.handle.introduce_domain(child_domid, parent_domid)

                # 2. Parent-info cache: the first clone of a parent reads
                # the parent's Xenstore info (one extra request); later
                # clones skip it.
                if parent_domid not in self._parent_cache:
                    self.handle.read_maybe(
                        f"/local/domain/{parent_domid}/name")
                    self._parent_cache.add(parent_domid)

            with tracer.span("clone.second_stage.name"):
                # 3. Generate + set the clone's name. xencloned guarantees
                # uniqueness (domid-suffixed), so no name scan is needed.
                child.name = f"{parent.name}-c{child_domid}"
                self.handle.write(f"{child.store_path}/name", child.name)

                # Grant reference and event port for the child's own
                # Xenstore connection (paper §4: "...grant reference and
                # event port for communication with the Xenstore daemon,
                # etc.").
                self.handle.write(f"{child.store_path}/store/ring-ref",
                                  str(child.special["xenstore"].extent_id))
                self.handle.write(f"{child.store_path}/store/port", "1")

            # 4. Device cloning (skippable per config: the Fig 6 probe
            # keeps only the mandatory operations of the second stage).
            clone_io = (parent.config is None
                        or parent.config.clone_io_devices)
            if clone_io:
                with tracer.span("clone.second_stage.xenstore",
                                 xs_clone=self.use_xs_clone):
                    if self.use_xs_clone:
                        self._clone_devices_xs(parent, child)
                    else:
                        self._clone_devices_deep(parent, child)

            # 5. 9pfs backends clone over QMP.
            if clone_io and parent.frontends.get("9pfs"):
                with tracer.span("clone.second_stage.p9"):
                    self.hypervisor.faults.fire(
                        "device.attach", device="9pfs-qmp",
                        parent=parent_domid, child=child_domid)
                    self.dom0.p9.clone(parent_domid, child_domid)
                    self.dom0.p9.connect_clone_frontend(child)

            with tracer.span("clone.second_stage.completion"):
                # 6. Completion: unblocks the parent.
                self.cloneop.clone_completion(DOM0, parent_domid,
                                              child_domid)
        self.clones_completed += 1
        tracer.count("clone.second_stages")

    def _abort_child(self, parent_domid: int, child_domid: int,
                     error: ReproError) -> None:
        """Unwind one failed second stage (mirrors ``xl destroy``).

        Removes whatever registry entries and backend state the partial
        second stage created, releases the child from xenstored, then
        reports CLONE_FAILED so the hypervisor destroys the domain and
        the in-flight CLONE subop drops it from its result.
        """
        tracer = self.hypervisor.tracer
        with tracer.span("clone.second_stage.abort", parent=parent_domid,
                         child=child_domid, error=type(error).__name__):
            for path in (f"/local/domain/{child_domid}",
                         f"/local/domain/0/backend/vif/{child_domid}",
                         f"/local/domain/0/backend/console/{child_domid}",
                         f"/local/domain/0/backend/9pfs/{child_domid}"):
                if self.handle.daemon.exists(path):
                    self.handle.rm(path)
            self.dom0.netback.remove(child_domid)
            self.dom0.console_daemon.remove(child_domid)
            self.dom0.p9.remove(child_domid)
            self.handle.release_domain(child_domid)
            self.cloneop.clone_failed(DOM0, parent_domid, child_domid,
                                      reason=str(error))
        tracer.count("clone.second_stage_aborts")

    # ------------------------------------------------------------------
    # device directory cloning
    # ------------------------------------------------------------------
    def _clone_devices_xs(self, parent: Domain, child: Domain) -> None:
        p, c = parent.domid, child.domid
        faults = self.hypervisor.faults
        if parent.frontends.get("console"):
            if faults.enabled:
                faults.fire("device.attach", device="console",
                            parent=p, child=c)
            self.handle.clone(p, c, XsCloneOp.DEV_CONSOLE,
                              console_frontend_path(p), console_frontend_path(c))
            self.handle.clone(p, c, XsCloneOp.DEV_CONSOLE,
                              console_backend_path(p), console_backend_path(c))
        if parent.frontends.get("vif"):
            if faults.enabled:
                faults.fire("device.attach", device="vif",
                            parent=p, child=c)
            self.handle.clone(p, c, XsCloneOp.DEV_VIF,
                              f"/local/domain/{p}/device/vif",
                              f"/local/domain/{c}/device/vif")
            self.handle.clone(p, c, XsCloneOp.DEV_VIF,
                              f"/local/domain/0/backend/vif/{p}",
                              f"/local/domain/0/backend/vif/{c}")
        if parent.frontends.get("9pfs"):
            if faults.enabled:
                faults.fire("device.attach", device="9pfs",
                            parent=p, child=c)
            self.handle.clone(p, c, XsCloneOp.DEV_9PFS,
                              p9_frontend_path(p), p9_frontend_path(c))
            self.handle.clone(p, c, XsCloneOp.DEV_9PFS,
                              p9_backend_path(p), p9_backend_path(c))

    def _clone_devices_deep(self, parent: Domain, child: Domain) -> None:
        """Pre-Nephele ablation: one write request per Xenstore entry,
        "similarly to how the Xenstore entries are created on regular
        instantiation" (paper §6.1)."""
        p, c = parent.domid, child.domid
        faults = self.hypervisor.faults
        if parent.frontends.get("console"):
            if faults.enabled:
                faults.fire("device.attach", device="console",
                            parent=p, child=c)
            self.handle.deep_copy(p, c, console_frontend_path(p),
                                  console_frontend_path(c))
            self.handle.deep_copy(p, c, console_backend_path(p),
                                  console_backend_path(c))
        if parent.frontends.get("vif"):
            if faults.enabled:
                faults.fire("device.attach", device="vif",
                            parent=p, child=c)
            self.handle.deep_copy(p, c, f"/local/domain/{p}/device/vif",
                                  f"/local/domain/{c}/device/vif")
            self.handle.deep_copy(p, c, f"/local/domain/0/backend/vif/{p}",
                                  f"/local/domain/0/backend/vif/{c}")
        if parent.frontends.get("9pfs"):
            if faults.enabled:
                faults.fire("device.attach", device="9pfs",
                            parent=p, child=c)
            self.handle.deep_copy(p, c, p9_frontend_path(p), p9_frontend_path(c))
            self.handle.deep_copy(p, c, p9_backend_path(p), p9_backend_path(c))

    # ------------------------------------------------------------------
    # udev: finish clone vif setup
    # ------------------------------------------------------------------
    def _on_udev(self, event: UdevEvent) -> None:
        if event.subsystem != "net" or event.action != "add":
            return
        if not event.properties.get("cloned"):
            return
        with self.hypervisor.tracer.span("xencloned.vif_aggregate"):
            self.hypervisor.clock.charge(self.hypervisor.costs.udev_dispatch)
            domid = event.properties["domid"]
            index = event.properties["index"]
            backend = self.dom0.netback.backends.get((domid, index))
            if backend is None:
                return
            self._aggregate_family_vif(backend)

    def _aggregate_family_vif(self, backend) -> None:
        """Enslave a clone vif (and, the first time, the parent's vif)
        to the family's bond or OVS group."""
        ip = backend.ip
        first_time = ip not in self.dom0._family_switch
        if self.switch_mode is CloneSwitchMode.BOND:
            switch = self.dom0.family_bond(ip)
            add = switch.enslave
        else:
            switch = self.dom0.family_ovs_group(ip)
            add = switch.add_bucket
        if first_time:
            parent_backend = self._parent_backend(backend)
            if parent_backend is not None:
                if isinstance(parent_backend.switch, Bridge):
                    parent_backend.switch.detach(parent_backend.port)
                add(parent_backend.port)
        add(backend.port)
        # Outbound clone traffic still reaches the host via the bridge.
        backend.attach_switch(self.dom0.bridges["xenbr0"])
        self.hypervisor.clock.charge(self.hypervisor.costs.switch_attach)

    def _parent_backend(self, backend):
        child = self.hypervisor.domains.get(backend.domid)
        if child is None or child.parent_id is None:
            return None
        return self.dom0.netback.backends.get((child.parent_id, backend.index))
