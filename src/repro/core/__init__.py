"""Nephele core: the cloning engine.

The paper's contribution (§4-§5): the single ``CLONEOP`` hypercall and
its subcommands, the hypervisor-side first stage (vCPUs, memory, grant
and event-channel cloning, the notification ring and ``VIRQ_CLONED``),
and the host-side second stage run by the ``xencloned`` daemon
(Xenstore cloning, device backends, switching, completion signalling).
"""

from repro.core.cloneop import CloneOp, CloneSubOp, CloneOpError
from repro.core.family import family_of, is_family, share_allowed
from repro.core.notify_ring import CloneNotification, CloneNotificationRing
from repro.core.smp import CloneFleet, build_fleet
from repro.core.xencloned import Xencloned

__all__ = [
    "CloneOp",
    "CloneSubOp",
    "CloneOpError",
    "Xencloned",
    "CloneNotification",
    "CloneNotificationRing",
    "family_of",
    "is_family",
    "share_allowed",
    "CloneFleet",
    "build_fleet",
]
