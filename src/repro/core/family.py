"""Domain families and the memory-sharing security constraint.

Two domains are family "if and only if they do have some common
ancestor domain or one of them is the ancestor of the other" (paper
§4). Nephele avoids the known memory-deduplication side channels by
allowing sharing only inside a family, i.e. among clones of one trusted
VM of one tenant (paper §1, §8).
"""

from __future__ import annotations

from repro.xen.hypervisor import Hypervisor


def family_of(hypervisor: Hypervisor, domid: int) -> frozenset[int]:
    """All live members of ``domid``'s family, including itself."""
    return hypervisor.family_of(domid)


def is_family(hypervisor: Hypervisor, a: int, b: int) -> bool:
    """True when ``a`` and ``b`` are family (or the same domain)."""
    if a == b:
        return True
    return b in hypervisor.family_of(a)


def share_allowed(hypervisor: Hypervisor, a: int, b: int) -> bool:
    """May pages be COW-shared between ``a`` and ``b``?

    Only within a family: content-based sharing between unrelated
    tenants is exactly the attack surface Nephele closes.
    """
    return is_family(hypervisor, a, b)
