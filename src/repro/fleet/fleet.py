"""The fleet: N simulated hosts behind one placement control plane.

Each member host is a full :class:`repro.platform.Platform` — its own
hypervisor, frame pool, xenstored and xencloned — so nothing is shared
between hosts except the control plane itself, exactly like a rack of
independent Xen machines behind a pool master. The fleet routes clone
requests to hosts via a pluggable placement policy, forwards them
cross-host when the preferred host lacks capacity, and survives
host-level faults (:mod:`repro.faults` sites ``host.crash``,
``host.partition``, ``host.degraded``): failures are detected by
deterministic heartbeat timeouts on the fleet's virtual clock, in-flight
clone batches on a dying host unwind through the existing whole-batch
rollback, and affected clones are re-placed on surviving hosts with
bounded retries and exponential backoff.

Determinism: the fleet has its own :class:`VirtualClock` (control-plane
charges) and :class:`DeterministicRNG`; member-host seeds are forked
from the fleet seed, hosts are always iterated in index order, and all
failure triggers come from the fleet's :class:`FaultInjector`. A fixed
(seed, plan, policy) triple therefore reproduces byte-identical runs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.devices.vif import RX_BUFFER_PAGES
from repro.errors import ReproError
from repro.faults.injector import NULL_INJECTOR, FaultInjector
from repro.faults.plan import FaultPlan, FaultSpec
from repro.fleet.placement import PlacementPolicy, make_policy
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.platform import Platform
from repro.sim import CostModel, DeterministicRNG, VirtualClock
from repro.sim.units import GIB, pages_of
from repro.toolstack.config import DomainConfig


class FleetError(ReproError):
    """Fleet-level failure (unknown family, no capacity anywhere)."""


class HostState(enum.Enum):
    """Lifecycle of one member host, as the control plane sees it."""

    #: Healthy: answers heartbeats, accepts placements.
    UP = "up"
    #: Grey failure: answers heartbeats but slowly; drained from new
    #: placement, existing instances keep running with a penalty.
    DEGRADED = "degraded"
    #: Administratively evacuating: keeps serving existing instances at
    #: full speed while warm migrations move its families away, but
    #: receives no new placements (see :mod:`repro.fleet.migration`).
    DRAINING = "draining"
    #: Unreachable but (presumably) still running guests — the
    #: split-brain window before fencing.
    PARTITIONED = "partitioned"
    #: Fail-stopped (guests died with it) but not yet declared dead.
    CRASHED = "crashed"
    #: Declared dead by the control plane; resources accounted.
    DEAD = "dead"


#: States a host can receive *new* placements in.
_PLACEABLE = (HostState.UP,)
#: States the control plane can still reach the host in.
_REACHABLE = (HostState.UP, HostState.DEGRADED, HostState.DRAINING)


@dataclass
class FleetConfig:
    """Fleet shape and failure-detection calibration."""

    hosts: int = 4
    seed: int = 0xC10E
    #: Placement policy name (see :data:`repro.fleet.placement.POLICIES`).
    policy: str = "round-robin"
    #: Per-host memory (16 GiB: the paper's testbed, §6).
    host_memory_bytes: int = 16 * GIB
    host_dom0_bytes: int = 4 * GIB
    host_cpus: int = 4
    #: Heartbeat period on the fleet clock (one ``tick()``).
    heartbeat_interval_ms: float = 50.0
    #: Missed beats before an unreachable host is declared dead and
    #: fenced (xapi-style HA: a few lost heartbeats, not one).
    heartbeat_timeout_beats: int = 3
    #: Bounded re-placement: attempts per clone request before the
    #: remainder is reported failed.
    replace_retry_limit: int = 3
    #: Re-place clones that died with their host (failover). Off means
    #: they are only accounted as lost.
    replace_lost: bool = True
    #: Enable tracing on the fleet control plane and member hosts.
    trace: bool = False
    #: Nephele xs_clone on member hosts (ablation knob, passed through).
    use_xs_clone: bool = True


@dataclass(frozen=True)
class CloneResult:
    """Outcome of one fleet clone request, at child granularity.

    ``requested == len(placed) + failed`` always holds — a child is
    either placed on a (then-)healthy host or reported failed; the
    fleet never silently drops one. Frozen: results are facts, not
    scratch space.
    """

    family: str
    requested: int
    #: (host name, child domid) per successfully placed child.
    placed: tuple[tuple[str, int], ...] = ()
    failed: int = 0
    #: Re-placement attempts consumed (0 = first host took the batch).
    retries: int = 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {
            "family": self.family,
            "requested": self.requested,
            "placed": [[host, domid] for host, domid in self.placed],
            "failed": self.failed,
            "retries": self.retries,
        }


@dataclass(frozen=True)
class FamilyPlacement:
    """Where a freshly created family's first replica landed.

    ``create_family`` historically returned a bare ``(host, domid)``
    tuple; iteration and indexing keep that unpacking working as a
    deprecation shim — new code should use the named fields.
    """

    family: str
    host: str
    domid: int

    def __iter__(self):
        return iter((self.host, self.domid))

    def __getitem__(self, index: int):
        return (self.host, self.domid)[index]

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {"family": self.family, "host": self.host,
                "domid": self.domid}


@dataclass
class _Family:
    """One cloneable workload: a parent image plus its live instances."""

    name: str
    config: DomainConfig
    app_factory: Callable[[], Any] | None
    #: Host the family was first placed on (preferred clone target).
    origin: str
    #: host name -> parent replica domid.
    replicas: dict[str, int] = field(default_factory=dict)
    #: host name -> clone domids living there.
    clones: dict[str, list[int]] = field(default_factory=dict)
    #: Latest :class:`repro.fleet.migration.MigrationRecord` planned for
    #: this family (active while ``migration.active``); ``None`` if the
    #: family never migrated. Served by ``GET /families/{name}``.
    migration: Any = None


class FleetHost:
    """One member host: a full platform plus control-plane state."""

    def __init__(self, name: str, index: int, platform: Platform) -> None:
        self.name = name
        self.index = index
        self.platform = platform
        self.state = HostState.UP
        self.missed_beats = 0
        #: Set while a mid-batch kill is armed on this host's injector:
        #: the next clone failure is a host death, not a local error.
        self.dying = False

    @property
    def free_frames(self) -> int:
        """Free machine frames in the host's guest pool."""
        return self.platform.hypervisor.frames.free_frames

    @property
    def alive(self) -> bool:
        return self.state in _REACHABLE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FleetHost({self.name}, {self.state.value}, "
                f"{self.free_frames} free frames)")


class Fleet:
    """The placement control plane over N member hosts."""

    def __init__(self, config: FleetConfig | None = None,
                 plan: FaultPlan | None = None,
                 costs: CostModel | None = None) -> None:
        self.config = config if config is not None else FleetConfig()
        if self.config.hosts < 1:
            raise FleetError(f"non-positive host count: {self.config.hosts}")
        self.costs = costs if costs is not None else CostModel()
        self.clock = VirtualClock()
        self.rng = DeterministicRNG(self.config.seed)
        self.tracer = (Tracer(self.clock, host="fleet")
                       if self.config.trace else NULL_TRACER)
        self.policy: PlacementPolicy = make_policy(self.config.policy)
        #: The fleet-level injector: polls the ``host.*`` event sites.
        self.faults = (FaultInjector(plan, clock=self.clock,
                                     rng=self.rng.fork("fleet-faults"),
                                     tracer=self.tracer)
                       if plan is not None and plan.specs else NULL_INJECTOR)
        self.hosts: list[FleetHost] = []
        host_rng = self.rng.fork("host-seeds")
        for index in range(self.config.hosts):
            name = f"host{index}"
            platform = Platform.create(
                total_memory_bytes=self.config.host_memory_bytes,
                dom0_memory_bytes=self.config.host_dom0_bytes,
                cpus=self.config.host_cpus,
                seed=host_rng.fork(name).seed,
                use_xs_clone=self.config.use_xs_clone,
                trace=self.config.trace,
                host_name=name,
                costs=self.costs)
            # Every member gets a *live* injector (empty plan) so the
            # control plane can arm one-shot faults on a dying host at
            # runtime — that is how a host kill lands mid-batch and
            # exercises the existing whole-batch rollback.
            platform.attach_faults(FaultPlan(name=f"{name}-armed"))
            self.hosts.append(FleetHost(name, index, platform))
        self._by_name = {host.name: host for host in self.hosts}
        self._families: dict[str, _Family] = {}
        #: Monotonic counter bumped on every change that can alter which
        #: (host, domid) instances serve traffic: replica boots, clone
        #: placements, host state transitions, fencing, repairs and
        #: family teardown. Consumers (the front door's ``refresh``)
        #: cache derived pool views keyed on this epoch instead of
        #: re-deriving them per call. Direct platform-level destroys
        #: that bypass the fleet verbs (the chaos harness tearing down
        #: domains through ``platform.xl``) do not bump it.
        self.topology_epoch = 0
        self.beats = 0
        #: Every migration ever planned on this fleet, in plan order
        #: (active and terminal records alike — the page-ledger audit
        #: walks the full history).
        self.migrations: list[Any] = []
        self._planner: Any = None
        #: Serial for collision-free names of flatten-migrated domains.
        self._migration_boot_serial = 0
        self.stats = {
            "clone_requests": 0,
            "children_requested": 0,
            "children_placed": 0,
            "children_failed": 0,
            "children_lost": 0,
            "children_replaced": 0,
            "replace_failed": 0,
            "forwards": 0,
            "replacements_attempted": 0,
            "replicas_booted": 0,
            "replicas_lost": 0,
            "hosts_crashed": 0,
            "hosts_fenced": 0,
            "detections": 0,
            "degraded_marked": 0,
            "repairs": 0,
            "drains": 0,
            "migrations_planned": 0,
            "migrations_done": 0,
            "migrations_failed": 0,
            "migration_rounds": 0,
            "migration_pages_streamed": 0,
            "migration_pages_aborted": 0,
            "migration_shared_remapped": 0,
            "migration_demand_faults": 0,
            "migration_replicas_dropped": 0,
            "instances_migrated": 0,
        }

    # ------------------------------------------------------------------
    # host lookup / capacity model
    # ------------------------------------------------------------------
    def host(self, name: str) -> FleetHost:
        """The member host named ``name``."""
        try:
            return self._by_name[name]
        except KeyError:
            raise FleetError(f"unknown host {name!r}") from None

    def _clone_frames_estimate(self, config: DomainConfig) -> int:
        """Conservative private-frame footprint of one clone.

        Hypervisor bookkeeping plus the non-shareable RX buffers per
        vif, plus slack for early COW faults — the capacity check that
        decides when a clone request is forwarded cross-host.
        """
        return (self.costs.hyp_per_clone_overhead_pages
                + RX_BUFFER_PAGES * len(config.vifs) + 16)

    def _parent_frames_estimate(self, config: DomainConfig) -> int:
        """Frame footprint of booting a fresh parent replica."""
        return (pages_of(config.memory_mb * 1024 * 1024)
                + self.costs.hyp_per_domain_overhead_pages
                + RX_BUFFER_PAGES * len(config.vifs) + 16)

    def _candidates(self, need_frames: int) -> list[FleetHost]:
        return [host for host in self.hosts
                if host.state in _PLACEABLE
                and host.free_frames >= need_frames]

    # ------------------------------------------------------------------
    # families: create + clone
    # ------------------------------------------------------------------
    def create_family(self, config: DomainConfig,
                      app_factory: Callable[[], Any] | None = None,
                      ) -> FamilyPlacement:
        """Place a new cloneable parent; returns its placement.

        The :class:`FamilyPlacement` still unpacks as the old
        ``(host name, domid)`` tuple.
        """
        if config.name in self._families:
            raise FleetError(f"family {config.name!r} already exists")
        candidates = self._candidates(self._parent_frames_estimate(config))
        if not candidates:
            raise FleetError(
                f"no host can place family {config.name!r}")
        host = self.policy.choose(candidates)
        family = _Family(name=config.name, config=config,
                         app_factory=app_factory, origin=host.name)
        domid = self._boot_replica(host, family)
        self._families[config.name] = family
        self.tracer.count("fleet.families")
        return FamilyPlacement(family=config.name, host=host.name,
                               domid=domid)

    def _boot_replica(self, host: FleetHost, family: _Family) -> int:
        """Boot a parent replica of ``family`` on ``host``."""
        # Replica names are host-qualified so cross-host re-placement
        # never collides even though each host has its own xenstored.
        config = DomainConfig(
            name=f"{family.name}.{host.name}",
            memory_mb=family.config.memory_mb,
            vcpus=family.config.vcpus,
            kernel=family.config.kernel,
            vifs=list(family.config.vifs),
            p9fs=list(family.config.p9fs),
            max_clones=family.config.max_clones,
            start_clones_paused=family.config.start_clones_paused,
            clone_io_devices=family.config.clone_io_devices)
        app = family.app_factory() if family.app_factory is not None else None
        domain = host.platform.xl.create(config, app=app)
        family.replicas[host.name] = domain.domid
        self.topology_epoch += 1
        self.stats["replicas_booted"] += 1
        return domain.domid

    def clone_family(self, name: str, count: int = 1) -> CloneResult:
        """Clone ``count`` instances of a family, placing them fleet-wide.

        The preferred host is the family's origin (then any host already
        holding a replica); the request is forwarded — policy-chosen —
        when the preferred hosts lack capacity, and re-placed with
        bounded exponential backoff when a host dies mid-request.
        """
        family = self._require_family(name)
        if count < 1:
            raise FleetError(f"non-positive clone count: {count}")
        self.stats["clone_requests"] += 1
        self.stats["children_requested"] += count
        placed, failed, retries = self._place_children(family, count)
        self.stats["children_placed"] += len(placed)
        self.stats["children_failed"] += failed
        self.tracer.count("fleet.clone_requests")
        return CloneResult(family=name, requested=count,
                           placed=tuple(placed), failed=failed,
                           retries=retries)

    def _require_family(self, name: str) -> _Family:
        try:
            return self._families[name]
        except KeyError:
            raise FleetError(f"unknown family {name!r}") from None

    def _place_children(self, family: _Family, count: int,
                        ) -> tuple[list[tuple[str, int]], int, int]:
        """Place ``count`` clones of ``family``; the retry/backoff loop.

        Returns (placed, failed, retries). Placed plus failed always
        covers the full count.
        """
        placed: list[tuple[str, int]] = []
        failed = 0
        retries = 0
        while len(placed) + failed < count:
            remaining = count - len(placed) - failed
            host = self._pick_clone_host(family, remaining)
            if host is None:
                failed += remaining
                break
            children = self._clone_on(host, family, remaining)
            if children is not None:
                placed.extend((host.name, domid) for domid in children)
                # Children xencloned reported CLONE_FAILED are a
                # per-child failure on a healthy host, not a host
                # death: reported, never silently dropped.
                failed += remaining - len(children)
                continue
            # The host died (or became unreachable) under the request:
            # back off exponentially on the fleet clock, then re-place
            # on the survivors — up to the configured bound.
            retries += 1
            self.stats["replacements_attempted"] += 1
            if retries > self.config.replace_retry_limit:
                failed += remaining
                break
            self.clock.charge(self.costs.fleet_replace_backoff
                              * (2 ** (retries - 1)))
        return placed, failed, retries

    def _pick_clone_host(self, family: _Family,
                         count: int) -> FleetHost | None:
        need = self._clone_frames_estimate(family.config) * count
        candidates = self._candidates(need)
        if not candidates:
            return None
        origin = self._by_name.get(family.origin)
        if origin in candidates:
            return origin
        with_replica = [host for host in candidates
                        if host.name in family.replicas]
        if with_replica:
            return self.policy.choose(with_replica)
        # Cross-host forward: no healthy replica host has capacity.
        forward_need = need + self._parent_frames_estimate(family.config)
        candidates = [h for h in candidates if h.free_frames >= forward_need]
        if not candidates:
            return None
        return self.policy.choose(candidates)

    def _clone_on(self, host: FleetHost, family: _Family,
                  count: int) -> list[int] | None:
        """Run one clone batch on ``host``; None means the host died.

        Polls the ``host.crash`` event site with ``op="clone"`` context
        first: a matching spec models the host dying *during* this very
        batch, implemented by arming a one-shot allocation fault on the
        host's own injector so the batch unwinds through CLONEOP's
        whole-batch rollback before the host is powered off.
        """
        if host.state not in _REACHABLE:
            # Connection refused: failure-triggered detection beats the
            # heartbeat timeout.
            self._declare_dead(host)
            return None
        if self.faults.event("host.crash", host=host.name, op="clone"):
            self._arm_midbatch_kill(host)
        if self.faults.event("host.partition", host=host.name, op="clone"):
            host.state = HostState.PARTITIONED
            self.topology_epoch += 1
            return None
        if host.state is HostState.DEGRADED:
            self.clock.charge(self.costs.fleet_degraded_penalty)
        if host.name not in family.replicas:
            self.clock.charge(self.costs.fleet_forward_rpc)
            self.stats["forwards"] += 1
            try:
                self._boot_replica(host, family)
            except ReproError:
                if host.dying:
                    # The armed kill landed in the replica boot rather
                    # than the clone batch: the host dies all the same.
                    host.state = HostState.CRASHED
                    self._declare_dead(host)
                else:
                    # The forward target could not even boot the
                    # replica (capacity raced away): a failed placement
                    # attempt; the retry loop picks another host.
                    pass
                return None
        replica = family.replicas[host.name]
        try:
            children = host.platform.xl.clone(replica, count=count)
        except ReproError:
            if host.dying:
                # The armed kill fired: the batch was unwound by the
                # whole-batch rollback; now the host is gone.
                host.state = HostState.CRASHED
                self._declare_dead(host)
            return None
        if host.dying:
            # The armed kill missed the batch (spec skipped too many
            # hits): the host still dies, right after the batch — the
            # children it just placed die with it and are re-placed by
            # the power-off path.
            family.clones.setdefault(host.name, []).extend(children)
            host.state = HostState.CRASHED
            self._declare_dead(host)
            return None
        family.clones.setdefault(host.name, []).extend(children)
        self.topology_epoch += 1
        self.tracer.count("fleet.children_placed", len(children))
        return children

    def _arm_midbatch_kill(self, host: FleetHost) -> None:
        """Schedule ``host`` to fail-stop inside the next clone batch."""
        host.dying = True
        host.platform.faults.arm(FaultSpec(
            site="frames.alloc", count=1,
            after=self.rng.randint(0, 6)))
        self.tracer.event("fleet.host_kill_armed", host=host.name)

    # ------------------------------------------------------------------
    # heartbeats, detection, fencing
    # ------------------------------------------------------------------
    def tick(self) -> None:
        """One heartbeat round over every member host.

        Polls the host-level event sites with ``op="heartbeat"``
        context, accumulates missed beats for unreachable hosts, and
        declares them dead at the configured timeout. All cost lands on
        the fleet clock; detection latency is therefore deterministic.
        """
        self.beats += 1
        self.clock.charge(self.costs.fleet_heartbeat_poll * len(self.hosts))
        for host in self.hosts:
            if host.state is HostState.DEAD:
                continue
            if host.state in _REACHABLE:
                if self.faults.event("host.crash", host=host.name,
                                     op="heartbeat"):
                    host.state = HostState.CRASHED
                    self.topology_epoch += 1
                elif self.faults.event("host.partition", host=host.name,
                                       op="heartbeat"):
                    host.state = HostState.PARTITIONED
                    self.topology_epoch += 1
                elif (host.state is HostState.UP
                      and self.faults.event("host.degraded", host=host.name,
                                            op="heartbeat")):
                    host.state = HostState.DEGRADED
                    self.topology_epoch += 1
                    self.stats["degraded_marked"] += 1
            if host.state in (HostState.CRASHED, HostState.PARTITIONED):
                host.missed_beats += 1
                if host.missed_beats >= self.config.heartbeat_timeout_beats:
                    self._declare_dead(host)
            else:
                host.missed_beats = 0
        # Warm migrations advance one round per heartbeat, so drains and
        # rebalances make progress while traffic keeps flowing.
        if self.migrations:
            self.planner.tick()

    def run_heartbeats(self, beats: int) -> None:
        """Run ``beats`` heartbeat rounds back to back."""
        for _ in range(beats):
            self.tick()

    def repair_host(self, name: str) -> None:
        """Heal a degraded/drained host back into the placement pool."""
        host = self.host(name)
        if host.state not in (HostState.DEGRADED, HostState.DRAINING):
            raise FleetError(
                f"host {name} is {host.state.value}, "
                f"not degraded or draining")
        host.state = HostState.UP
        self.topology_epoch += 1
        self.stats["repairs"] += 1

    # ------------------------------------------------------------------
    # warm migration: drain + rebalance (see repro.fleet.migration)
    # ------------------------------------------------------------------
    @property
    def planner(self):
        """The fleet's :class:`~repro.fleet.migration.MigrationPlanner`.

        Created lazily so fleets that never migrate pay nothing (and so
        the module import stays acyclic).
        """
        if self._planner is None:
            from repro.fleet.migration import MigrationPlanner
            self._planner = MigrationPlanner(self)
        return self._planner

    def drain_host(self, name: str, mode: str = "precopy") -> list:
        """Evacuate ``name``: warm-migrate every family it hosts away.

        The host enters :attr:`HostState.DRAINING` — it keeps serving
        its existing instances at full speed but takes no new placements
        — and one migration per resident family is planned; they stream
        on subsequent heartbeats. Returns the planned records (families
        with no feasible target are skipped and stay put). Once drained,
        ``repair_host`` returns the host to the pool.
        """
        host = self.host(name)
        if host.state is HostState.DRAINING:
            raise FleetError(f"host {name} is already draining")
        if host.state not in _PLACEABLE:
            raise FleetError(
                f"host {name} is {host.state.value}, not up")
        host.state = HostState.DRAINING
        self.topology_epoch += 1
        self.stats["drains"] += 1
        self.tracer.event("fleet.drain", host=name)
        return self.planner.plan_drain(host, mode=mode)

    def rebalance(self, mode: str = "precopy") -> list:
        """One rebalance pass: warm-migrate a family off the most
        loaded host when the placement policy reports an imbalance.

        Policies without a rebalance notion (round-robin) plan nothing;
        returns the planned records (empty when balanced).
        """
        return self.planner.plan_rebalance(mode=mode)

    def _declare_dead(self, host: FleetHost) -> None:
        """Fence + account a failed host, then re-place its children."""
        if host.state is HostState.DEAD:
            return
        was_partitioned = host.state is HostState.PARTITIONED
        self.clock.charge(self.costs.fleet_detect_fixed)
        self.stats["detections"] += 1
        self.tracer.event("fleet.host_dead", host=host.name,
                          cause=host.state.value)
        platform = host.platform
        if was_partitioned:
            # STONITH: the pool master power-cycles the unreachable
            # host before re-placing its workloads, so a family is
            # never live on two sides of a partition.
            self.clock.charge(self.costs.fleet_fence_per_domain
                              * platform.guest_count())
            self.stats["hosts_fenced"] += 1
        else:
            self.stats["hosts_crashed"] += 1
        host.state = HostState.DEAD
        host.dying = False
        self.topology_epoch += 1
        # A dead host aborts every in-flight migration touching it: the
        # family stays wholly where it was (pre-cutover) or is torn down
        # at the target and re-placed cold (post-copy that lost its
        # source) — never left split across hosts.
        if self.migrations:
            for record in self.migrations:
                if not record.active:
                    continue
                if host.name not in (record.source, record.target):
                    continue
                reason = ("source-lost" if record.source == host.name
                          else "target-lost")
                if record.committed and record.source == host.name:
                    self.planner._fail_moved_family(record, reason)
                else:
                    self.planner._abort(record, reason)
        # Power-off accounting: every guest's frames/grants/backends are
        # released, and all in-flight clone-plumbing state dies with the
        # host — audit_fleet verifies nothing survives.
        platform.xencloned.shutdown()
        for domid in sorted(platform.hypervisor.domains):
            if domid not in platform.hypervisor.domains:
                continue
            try:
                platform.xl.destroy(domid)
            except ReproError:
                platform.hypervisor.destroy_domain(domid)
        platform.cloneop.host_shutdown()
        # Strike the dead host from every family, then fail the lost
        # children over onto the survivors.
        lost: list[tuple[_Family, int]] = []
        for family in self._families.values():
            if family.replicas.pop(host.name, None) is not None:
                self.stats["replicas_lost"] += 1
            dead_clones = family.clones.pop(host.name, None)
            if dead_clones:
                self.stats["children_lost"] += len(dead_clones)
                lost.append((family, len(dead_clones)))
        if self.config.replace_lost:
            for family, n in lost:
                placed, failed, _retries = self._place_children(family, n)
                self.stats["children_replaced"] += len(placed)
                self.stats["replace_failed"] += failed
        else:
            for _family, n in lost:
                self.stats["replace_failed"] += n

    # ------------------------------------------------------------------
    # teardown
    # ------------------------------------------------------------------
    def destroy_family(self, name: str) -> None:
        """Destroy every live instance of a family, fleet-wide."""
        family = self._families.pop(name, None)
        if family is None:
            raise FleetError(f"unknown family {name!r}")
        self.topology_epoch += 1
        for record in self.migrations:
            if record.active and record.family == name:
                self.planner._abort(record, "family-destroyed")
        for host_name in sorted(set(family.clones) | set(family.replicas)):
            host = self._by_name[host_name]
            if host.state is HostState.DEAD:
                continue
            for domid in family.clones.get(host_name, []):
                if domid in host.platform.hypervisor.domains:
                    host.platform.xl.destroy(domid)
            replica = family.replicas.get(host_name)
            if (replica is not None
                    and replica in host.platform.hypervisor.domains):
                host.platform.xl.destroy(replica)

    def shutdown(self) -> None:
        """Quiesce the fleet: fence stragglers, destroy every family."""
        for host in self.hosts:
            if host.state in (HostState.CRASHED, HostState.PARTITIONED):
                self._declare_dead(host)
        # In-flight migrations are aborted in place (families are about
        # to be destroyed anyway); the page ledger stays conserved.
        for record in self.migrations:
            if record.active:
                self.planner._abort(record, "fleet-shutdown")
        for name in sorted(self._families):
            self.destroy_family(name)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def families(self) -> dict[str, _Family]:
        """Live family records (read-only by convention)."""
        return self._families

    def live_hosts(self) -> list[FleetHost]:
        """Hosts the control plane can still reach, in index order."""
        return [host for host in self.hosts if host.alive]

    def guest_count(self) -> int:
        """Guests live fleet-wide (dead hosts contribute zero)."""
        return sum(host.platform.guest_count() for host in self.hosts)

    def report(self) -> dict[str, Any]:
        """Machine-readable fleet state (JSON-serializable)."""
        return {
            "hosts": {
                host.name: {
                    "state": host.state.value,
                    "free_frames": host.free_frames,
                    "guests": host.platform.guest_count(),
                    "clock_ms": round(host.platform.clock.now, 6),
                } for host in self.hosts
            },
            "families": {
                family.name: {
                    "origin": family.origin,
                    "replicas": dict(sorted(family.replicas.items())),
                    "clones": {h: len(c) for h, c
                               in sorted(family.clones.items())},
                } for family in self._families.values()
            },
            "policy": self.policy.name,
            "beats": self.beats,
            "clock_ms": round(self.clock.now, 6),
            "migrations": [record.to_dict()
                           for record in self.migrations],
            "stats": dict(self.stats),
        }
