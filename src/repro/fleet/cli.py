"""``python -m repro.fleet``: the fleet chaos smoke runner.

Mirrors ``python -m repro.faults``: run the fleet host-kill storm one
or more times at a fixed (seed, plan, policy), print the report, and
exit non-zero on any leak-oracle violation, on fingerprint drift
between runs, or — when hosts are being killed — on a storm that never
exercised a successful re-placement. CI pins exactly this contract.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.faults.plan import FaultPlan
from repro.fleet.chaos import FleetChaosReport, run_fleet_chaos
from repro.fleet.parallel import ParallelStormReport, run_parallel_storm
from repro.fleet.placement import POLICIES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fleet",
        description="Run a deterministic multi-host fleet chaos storm.")
    parser.add_argument("--seed", type=lambda v: int(v, 0), default=0xC10E,
                        help="fleet seed (default 0xC10E)")
    parser.add_argument("--hosts", type=int, default=4,
                        help="member hosts (default 4)")
    parser.add_argument("--kills", type=int, default=2,
                        help="hosts to kill during the storm (default 2)")
    parser.add_argument("--policy", choices=sorted(POLICIES),
                        default="round-robin", help="placement policy")
    parser.add_argument("--parents", type=int, default=2,
                        help="clone families (default 2)")
    parser.add_argument("--batch", type=int, default=3,
                        help="children per clone request (default 3)")
    parser.add_argument("--rounds", type=int, default=8,
                        help="workload rounds (default 8)")
    parser.add_argument("--runs", type=int, default=1,
                        help="repeat the run and require byte-identical "
                             "fingerprints (default 1)")
    parser.add_argument("--plan", type=str, default=None,
                        help="JSON fault-plan file (default: generated "
                             "kill plan)")
    parser.add_argument("--parallel", type=int, default=None,
                        metavar="N",
                        help="run the epoch-barrier storm instead, with "
                             "N worker processes (0 = same storm, "
                             "serial executor)")
    parser.add_argument("--json", action="store_true",
                        help="print the full report as JSON")
    parser.add_argument("--list-policies", action="store_true",
                        help="list placement policies and exit")
    return parser


def _print_report(report: FleetChaosReport, as_json: bool) -> None:
    if as_json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return
    print(f"fleet chaos seed={report.seed:#x} hosts={report.hosts} "
          f"policy={report.policy} plan={report.plan_name}")
    print(f"  clones: requested={report.clones_requested} "
          f"placed={report.clones_placed} failed={report.clones_failed}")
    print(f"  hosts killed: {report.hosts_killed}  "
          f"replacements: {report.replacements}")
    print(f"  virtual clock: {report.clock_ms:.3f} ms")
    print(f"  fingerprint: {report.fingerprint}")
    if report.violations:
        print(f"  VIOLATIONS ({len(report.violations)}):")
        for violation in report.violations:
            print(f"    - {violation}")
    else:
        print("  leak audit: clean (fleet-wide)")


def _print_parallel_report(report: ParallelStormReport,
                           as_json: bool) -> None:
    if as_json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
        return
    print(f"parallel storm seed={report.seed:#x} hosts={report.hosts} "
          f"workers={report.workers} policy={report.policy} "
          f"epochs={report.epochs}")
    print(f"  clones: requested={report.clones_requested} "
          f"placed={report.clones_placed} failed={report.clones_failed}")
    print(f"  hosts killed: {report.hosts_killed}  "
          f"replacements: {report.children_replaced}  "
          f"forwards: {report.forwards}  "
          f"fenced: {report.fenced_commands}")
    print(f"  fleet clock: {report.clock_ms:.3f} ms")
    print(f"  fingerprint: {report.fingerprint}")
    if report.violations:
        print(f"  VIOLATIONS ({len(report.violations)}):")
        for violation in report.violations:
            print(f"    - {violation}")
    else:
        print("  leak audit: clean (fleet-wide)")


def _main_parallel(args: argparse.Namespace) -> int:
    """The ``--parallel N`` path: the epoch-barrier storm runner."""
    fingerprints: list[str] = []
    report: ParallelStormReport | None = None
    for _ in range(max(1, args.runs)):
        report = run_parallel_storm(
            seed=args.seed, hosts=args.hosts, workers=args.parallel,
            parents=args.parents, batch=args.batch, epochs=args.rounds,
            kills=args.kills, policy=args.policy)
        fingerprints.append(report.fingerprint)
    assert report is not None
    _print_parallel_report(report, args.json)

    exit_code = 0
    if report.violations:
        print(f"FAIL: {len(report.violations)} leak-oracle violations",
              file=sys.stderr)
        exit_code = 1
    if len(set(fingerprints)) > 1:
        print(f"FAIL: fingerprint drift across {len(fingerprints)} runs: "
              f"{fingerprints}", file=sys.stderr)
        exit_code = 1
    if report.hosts_killed < min(args.kills, args.hosts):
        print(f"FAIL: storm killed {report.hosts_killed} hosts, "
              f"expected {min(args.kills, args.hosts)}", file=sys.stderr)
        exit_code = 1
    return exit_code


def main(argv: list[str] | None = None) -> int:
    """Run the storm; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.list_policies:
        for name in sorted(POLICIES):
            print(name)
        return 0
    if args.parallel is not None:
        return _main_parallel(args)

    plan = None
    if args.plan:
        with open(args.plan, encoding="utf-8") as fh:
            plan = FaultPlan.from_json(fh.read())

    fingerprints: list[str] = []
    report: FleetChaosReport | None = None
    for _ in range(max(1, args.runs)):
        report = run_fleet_chaos(
            seed=args.seed, hosts=args.hosts, kills=args.kills,
            parents=args.parents, batch=args.batch, rounds=args.rounds,
            policy=args.policy, plan=plan)
        fingerprints.append(report.fingerprint)
    assert report is not None
    _print_report(report, args.json)

    exit_code = 0
    if report.violations:
        print(f"FAIL: {len(report.violations)} leak-oracle violations",
              file=sys.stderr)
        exit_code = 1
    if len(set(fingerprints)) > 1:
        print(f"FAIL: fingerprint drift across {len(fingerprints)} runs: "
              f"{fingerprints}", file=sys.stderr)
        exit_code = 1
    if args.kills > 0 and report.hosts_killed < args.kills:
        print(f"FAIL: storm killed {report.hosts_killed} hosts, "
              f"expected {args.kills}", file=sys.stderr)
        exit_code = 1
    if (args.kills > 0 and args.kills < args.hosts
            and report.replacements < 1):
        # A total-loss storm (kills == hosts) leaves no survivor to
        # re-place onto, so the expectation only applies below it.
        print("FAIL: no successful re-placement despite host kills",
              file=sys.stderr)
        exit_code = 1
    return exit_code


if __name__ == "__main__":  # pragma: no cover - module CLI
    sys.exit(main())
