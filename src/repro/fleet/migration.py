"""Live warm migration of clone families between fleet hosts.

The fleet tier could always *re-place* a family lost with a dead host
(a cold re-boot on a survivor); this module moves families **warm**:

- **pre-copy**: iterative dirty-page rounds charged to the fleet
  :class:`~repro.sim.clock.VirtualClock` — round 0 streams the whole
  ship set, every later round streams the pages the guest re-dirtied
  while the previous round was on the wire, and the loop ends with a
  stop-and-copy cutover window once the dirty set drops under a
  threshold (or a convergence bound of rounds has been spent);
- **post-copy**: the family cuts over first, then pages stream in the
  background while the hot set is pulled by synchronous demand faults
  over the fleet network (the post-copy tax).

Both modes are driven by a :class:`MigrationPlanner` that the
``drain_host`` control-plane verb and the least-loaded placement
policy's rebalance pass (:meth:`~repro.fleet.fleet.Fleet.rebalance`)
both call. Because migration interacts with the COW clone tree, the
planner decides per family between **ship-delta** (keep the sharing:
stream each clone's private pages, re-bind its shared pages against
the replica resident on the target) and **flatten** (break the
sharing: stream full standalone copies, no parent needed on the
target) from the actual per-page shared-vs-private accounting of the
source domains — see docs/MIGRATION.md for the decision rule and the
full failure model.

Migrations advance one round per :meth:`~repro.fleet.fleet.Fleet.tick`
(the heartbeat round), so they interleave deterministically with
placement, failure detection and front-door traffic. Each round polls
the ``migration.*`` fault sites, so the chaos harness can kill the
source host, the target host, or the stream mid-round; the ledger
(pages queued == streamed + aborted + pending) is audited by
:func:`repro.fleet.chaos.audit_fleet`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import ReproError
from repro.toolstack.config import DomainConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.fleet import Fleet, FleetHost, _Family


#: Convergence bound: a pre-copy migration spends at most this many
#: dirty-page rounds before it force-cutovers with whatever dirty set
#: remains (the classic guard against a guest that dirties faster than
#: the stream drains; docs/MIGRATION.md derives when that can happen).
MIGRATION_ROUND_LIMIT = 8

#: Stop-and-copy threshold: once a round leaves at most this many
#: re-dirtied pages, the next step is the cutover window instead of
#: another round.
MIGRATION_CUTOVER_THRESHOLD_PAGES = 8


class MigrationError(ReproError):
    """Planner-level failure (unknown family, no feasible target)."""


@dataclass
class MigrationRecord:
    """One family-between-hosts migration: plan, progress and ledger.

    The page ledger is the conservation law ``audit_fleet`` checks:
    ``pages_queued == pages_streamed + pages_aborted + pages_pending``
    at every instant, with ``pages_pending == 0`` once the record is
    terminal. ``pages_queued`` grows as rounds re-queue freshly
    dirtied pages; no page is ever silently dropped from the ledger.
    """

    family: str
    source: str
    target: str
    #: ``precopy`` or ``postcopy``.
    mode: str
    #: ``ship-delta`` or ``flatten`` (see the planner's decision rule).
    decision: str
    #: ``streaming`` -> ``done`` | ``failed``.
    phase: str = "streaming"
    #: Why a failed migration failed (``source-lost``, ``target-lost``,
    #: ``stream-lost``, ``target-capacity``, ``fleet-shutdown``).
    reason: str = ""
    #: Whether the family already switched over to the target (post-copy
    #: sets this in its first round; pre-copy only at cutover).
    committed: bool = False
    # -- page ledger ---------------------------------------------------
    pages_queued: int = 0
    pages_streamed: int = 0
    pages_aborted: int = 0
    pages_pending: int = 0
    #: Shared pages re-bound against the target replica (ship-delta).
    shared_remapped: int = 0
    # -- round accounting ----------------------------------------------
    rounds_done: int = 0
    #: Hot working set: pages the source instances had dirtied when the
    #: migration was planned (caps per-round re-dirtying).
    working_set: int = 0
    #: Post-copy demand faults served synchronously over the network.
    demand_faults: int = 0
    #: Instances to move: clone domids on the source, and whether the
    #: source replica ships.
    clones_moving: int = 0
    replica_ships: bool = False
    started_ms: float = 0.0
    finished_ms: float = 0.0

    @property
    def active(self) -> bool:
        return self.phase == "streaming"

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (the control plane serves this)."""
        return {
            "family": self.family,
            "source": self.source,
            "target": self.target,
            "mode": self.mode,
            "decision": self.decision,
            "phase": self.phase,
            "reason": self.reason,
            "committed": self.committed,
            "pages_queued": self.pages_queued,
            "pages_streamed": self.pages_streamed,
            "pages_aborted": self.pages_aborted,
            "pages_pending": self.pages_pending,
            "shared_remapped": self.shared_remapped,
            "rounds_done": self.rounds_done,
            "demand_faults": self.demand_faults,
            "clones_moving": self.clones_moving,
            "replica_ships": self.replica_ships,
            "started_ms": round(self.started_ms, 6),
            "finished_ms": round(self.finished_ms, 6),
        }


class MigrationPlanner:
    """Plans and executes warm migrations on behalf of a fleet.

    The planner reads per-page shared-vs-private accounting straight
    from the source domains' :class:`~repro.xen.memory.GuestMemory`
    (the COW machinery the clone path maintains), picks ship-delta vs
    flatten by cost, and then advances every active record one round
    per fleet heartbeat via :meth:`tick`.
    """

    def __init__(self, fleet: "Fleet",
                 round_limit: int = MIGRATION_ROUND_LIMIT,
                 cutover_threshold_pages: int =
                 MIGRATION_CUTOVER_THRESHOLD_PAGES) -> None:
        self.fleet = fleet
        self.round_limit = round_limit
        self.cutover_threshold_pages = cutover_threshold_pages

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan_family(self, name: str, source: str,
                    target: str | None = None,
                    mode: str = "precopy") -> MigrationRecord:
        """Plan moving ``name``'s presence on ``source`` to ``target``.

        With ``target=None`` the fleet's placement policy picks the
        target among placeable hosts with capacity (never the source).
        The record is registered with the fleet and starts advancing on
        the next heartbeat.
        """
        from repro.fleet.fleet import _PLACEABLE

        fleet = self.fleet
        if mode not in ("precopy", "postcopy"):
            raise MigrationError(f"unknown migration mode {mode!r}")
        family = fleet.families.get(name)
        if family is None:
            raise MigrationError(f"unknown family {name!r}")
        source_host = fleet.host(source)
        clones = list(family.clones.get(source, []))
        replica_domid = family.replicas.get(source)
        if not clones and replica_domid is None:
            raise MigrationError(
                f"family {name!r} has no instances on {source}")
        for record in fleet.migrations:
            if record.active and record.family == name:
                raise MigrationError(
                    f"family {name!r} is already migrating")
        if target is None:
            candidates = [
                h for h in fleet.hosts
                if h.state in _PLACEABLE and h.name != source
                and h.free_frames >= self._footprint(family, len(clones),
                                                     h.name)]
            if not candidates:
                raise MigrationError(
                    f"no placeable target host for family {name!r}")
            target = fleet.policy.choose(candidates).name
        elif target == source:
            raise MigrationError("source and target host are the same")
        else:
            fleet.host(target)  # validates the name

        record = self._price(family, source_host, target, clones,
                             replica_domid, mode)
        record.started_ms = fleet.clock.now
        family.migration = record
        fleet.migrations.append(record)
        fleet.stats["migrations_planned"] += 1
        fleet.tracer.event("migration.planned", family=name,
                           source=source, target=target, mode=mode,
                           decision=record.decision)
        return record

    def plan_drain(self, host: "FleetHost",
                   mode: str = "precopy") -> list[MigrationRecord]:
        """Plan evacuating every family present on ``host``.

        Families with no feasible target (or already migrating) are
        skipped — they stay put and the drain is partial; the caller
        can compare the returned records against the host's families.
        """
        fleet = self.fleet
        names = sorted(
            name for name, family in fleet.families.items()
            if host.name in family.replicas or family.clones.get(host.name))
        records = []
        for name in names:
            try:
                records.append(self.plan_family(name, host.name,
                                                mode=mode))
            except MigrationError:
                continue
        return records

    def plan_rebalance(self, mode: str = "precopy"
                       ) -> list[MigrationRecord]:
        """One rebalance pass: ask the policy for an (overloaded,
        underloaded) host pair and move one family between them.

        Policies without a rebalance notion (round-robin) propose
        nothing; the least-loaded policy proposes a pair once the
        imbalance crosses its threshold.
        """
        fleet = self.fleet
        from repro.fleet.fleet import _PLACEABLE

        candidates = [h for h in fleet.hosts if h.state in _PLACEABLE]
        pair = fleet.policy.rebalance_pair(candidates)
        if pair is None:
            return []
        busy, idle = pair
        names = sorted(
            name for name, family in fleet.families.items()
            if (busy.name in family.replicas
                or family.clones.get(busy.name))
            and not (family.migration is not None
                     and family.migration.active))
        if not names:
            return []
        return [self.plan_family(names[0], busy.name, target=idle.name,
                                 mode=mode)]

    # ------------------------------------------------------------------
    # pricing: ship-delta vs flatten from real page accounting
    # ------------------------------------------------------------------
    def _memory_of(self, host: "FleetHost", domid: int):
        return host.platform.hypervisor.domains[domid].memory

    def _footprint(self, family: "_Family", clones: int,
                   target: str | None = None) -> int:
        """Frame need on ``target`` for the common (ship-delta) shape.

        Moved clones re-materialize as COW children of the target
        replica — clone-sized, not parent-sized — plus one parent boot
        when the target holds no replica yet. A flatten decision can
        need more than this admission estimate; ``_instantiate`` unwinds
        and aborts the migration if the target turns out too small, so
        the check is a heuristic, not a safety invariant.
        """
        fleet = self.fleet
        need = clones * fleet._clone_frames_estimate(family.config)
        if target is None or target not in family.replicas:
            need += fleet._parent_frames_estimate(family.config)
        return need

    def _price(self, family: "_Family", source_host: "FleetHost",
               target: str, clones: list[int], replica_domid: int | None,
               mode: str) -> MigrationRecord:
        costs = self.fleet.costs
        stream = costs.migration_page_stream
        remap = costs.migration_remap_shared_page
        clone_private = clone_shared = 0
        working_set = 0
        for domid in clones:
            memory = self._memory_of(source_host, domid)
            clone_private += memory.private_pages()
            clone_shared += memory.shared_pages()
            working_set += memory.dirty.count
        replica_pages = 0
        if replica_domid is not None:
            memory = self._memory_of(source_host, replica_domid)
            replica_pages = memory.private_pages() + memory.shared_pages()
            working_set += memory.dirty.count

        replica_on_target = target in family.replicas
        replicas_elsewhere = any(
            host not in (source_host.name, target)
            for host in family.replicas)
        # Ship-delta needs a parent at the target to re-share against.
        delta_feasible = replica_on_target or replica_domid is not None
        delta_replica_pages = (0 if replica_on_target else replica_pages)
        delta_cost = (delta_replica_pages * stream
                      + clone_private * stream + clone_shared * remap)
        # Flatten only ships the source replica when it is the family's
        # sole template (otherwise it is dropped, not moved).
        flatten_replica_ships = (replica_domid is not None
                                 and not replica_on_target
                                 and not replicas_elsewhere)
        flatten_cost = ((clone_private + clone_shared) * stream
                        + (replica_pages if flatten_replica_ships else 0)
                        * stream)

        if delta_feasible and delta_cost <= flatten_cost:
            decision = "ship-delta"
            to_stream = delta_replica_pages + clone_private
            shared_remap = clone_shared
            replica_ships = (replica_domid is not None
                             and not replica_on_target)
        else:
            decision = "flatten"
            to_stream = (clone_private + clone_shared
                         + (replica_pages if flatten_replica_ships else 0))
            shared_remap = 0
            replica_ships = flatten_replica_ships

        return MigrationRecord(
            family=family.name, source=source_host.name, target=target,
            mode=mode, decision=decision,
            pages_queued=to_stream, pages_pending=to_stream,
            shared_remapped=shared_remap,
            working_set=working_set, clones_moving=len(clones),
            replica_ships=replica_ships)

    # ------------------------------------------------------------------
    # execution: one round per fleet heartbeat
    # ------------------------------------------------------------------
    def tick(self) -> None:
        """Advance every active migration by one round."""
        for record in list(self.fleet.migrations):
            if record.active:
                self._advance(record)

    def _advance(self, record: MigrationRecord) -> None:
        fleet = self.fleet
        context = {"family": record.family, "source": record.source,
                   "target": record.target, "round": record.rounds_done,
                   "op": "migration"}
        if fleet.faults.event("migration.source", **context):
            self._lose_host(record, record.source, "source-lost")
            return
        if fleet.faults.event("migration.target", **context):
            self._lose_host(record, record.target, "target-lost")
            return
        if fleet.faults.event("migration.stream", **context):
            self._lose_stream(record)
            return
        source = fleet.host(record.source)
        target = fleet.host(record.target)
        # A host lost to an *external* failure (heartbeat-detected
        # crash, partition fencing) aborts the migration the same way.
        if not record.committed and not source.alive:
            self._abort(record, "source-lost")
            return
        if not target.alive:
            if record.committed:
                self._fail_moved_family(record, "target-lost")
            else:
                self._abort(record, "target-lost")
            return
        if record.committed and not source.alive:
            # Post-copy window of vulnerability: outstanding pages died
            # with the source; the moved instances cannot be completed.
            self._fail_moved_family(record, "source-lost")
            return

        if record.mode == "precopy":
            self._precopy_round(record)
        else:
            self._postcopy_round(record)

    # -- pre-copy ------------------------------------------------------
    def _precopy_round(self, record: MigrationRecord) -> None:
        fleet = self.fleet
        costs = fleet.costs
        ship = record.pages_pending
        with fleet.tracer.span("migration.round", family=record.family,
                               round=record.rounds_done, pages=ship):
            duration = (costs.migration_round_fixed
                        + ship * costs.migration_page_stream)
            fleet.clock.charge(duration)
        record.pages_streamed += ship
        record.pages_pending = 0
        record.rounds_done += 1
        fleet.stats["migration_rounds"] += 1
        fleet.stats["migration_pages_streamed"] += ship
        dirtied = min(record.working_set,
                      int(costs.migration_dirty_rate_pages_per_ms
                          * duration))
        record.pages_queued += dirtied
        record.pages_pending = dirtied
        if (dirtied <= self.cutover_threshold_pages
                or record.rounds_done >= self.round_limit):
            self._cutover(record)

    def _cutover(self, record: MigrationRecord) -> None:
        """The stop-and-copy window: final dirty set + switch-over."""
        fleet = self.fleet
        costs = fleet.costs
        final = record.pages_pending
        with fleet.tracer.span("migration.cutover", family=record.family,
                               pages=final):
            fleet.clock.charge(
                costs.migration_cutover_fixed
                + final * costs.migration_page_stream
                + record.shared_remapped
                * costs.migration_remap_shared_page)
            record.pages_streamed += final
            record.pages_pending = 0
            fleet.stats["migration_pages_streamed"] += final
            fleet.stats["migration_shared_remapped"] += \
                record.shared_remapped
            self._commit(record)

    # -- post-copy -----------------------------------------------------
    def _postcopy_round(self, record: MigrationRecord) -> None:
        fleet = self.fleet
        costs = fleet.costs
        if not record.committed:
            # Cut over first: minimal state ships inside the window,
            # the memory follows.
            with fleet.tracer.span("migration.cutover",
                                   family=record.family, pages=0):
                fleet.clock.charge(
                    costs.migration_cutover_fixed
                    + record.shared_remapped
                    * costs.migration_remap_shared_page)
                fleet.stats["migration_shared_remapped"] += \
                    record.shared_remapped
                self._commit(record, terminal=False)
            record.rounds_done += 1
            fleet.stats["migration_rounds"] += 1
            return
        # Background stream + demand faults for the hot set.
        ship = record.pages_pending
        faults = min(ship, record.working_set)
        with fleet.tracer.span("migration.round", family=record.family,
                               round=record.rounds_done, pages=ship,
                               demand_faults=faults):
            fleet.clock.charge(
                costs.migration_round_fixed
                + (ship - faults) * costs.migration_page_stream
                + faults * costs.migration_postcopy_fault)
        record.pages_streamed += ship
        record.pages_pending = 0
        record.demand_faults += faults
        record.rounds_done += 1
        fleet.stats["migration_rounds"] += 1
        fleet.stats["migration_pages_streamed"] += ship
        fleet.stats["migration_demand_faults"] += faults
        self._finish(record)

    # ------------------------------------------------------------------
    # commit / abort / failure paths
    # ------------------------------------------------------------------
    def _commit(self, record: MigrationRecord,
                terminal: bool = True) -> None:
        """Activate the family on the target, strike it from the source.

        Runs inside the cutover window. A target that cannot take the
        instances (capacity raced away since planning) aborts the
        migration in place: the family keeps running at the source.
        """
        fleet = self.fleet
        family = fleet.families[record.family]
        target = fleet.host(record.target)
        source = fleet.host(record.source)
        clones = list(family.clones.get(record.source, []))
        replica_domid = family.replicas.get(record.source)
        try:
            new_domids = self._instantiate(record, family, target,
                                           len(clones))
        except ReproError:
            self._abort(record, "target-capacity")
            return
        # Tear down the source side; the family now serves from the
        # target. Destroyed domains drop out of the front-door pool at
        # the next refresh (epoch bump below).
        for domid in clones:
            if domid in source.platform.hypervisor.domains:
                source.platform.xl.destroy(domid)
        family.clones.pop(record.source, None)
        if replica_domid is not None:
            if replica_domid in source.platform.hypervisor.domains:
                source.platform.xl.destroy(replica_domid)
            del family.replicas[record.source]
            if not record.replica_ships:
                fleet.stats["migration_replicas_dropped"] += 1
        if new_domids:
            family.clones.setdefault(record.target, []).extend(new_domids)
        if family.origin == record.source:
            family.origin = record.target
        fleet.topology_epoch += 1
        record.committed = True
        fleet.stats["instances_migrated"] += (
            len(clones) + (1 if replica_domid is not None else 0))
        fleet.tracer.event("migration.committed", family=record.family,
                           source=record.source, target=record.target)
        if terminal:
            self._finish(record)

    def _instantiate(self, record: MigrationRecord, family: "_Family",
                     target: "FleetHost", count: int) -> list[int]:
        """Build the family's instances on the target host.

        Ship-delta clones from the target replica (booting it first if
        it ships with the migration), so the COW tree is re-established
        on the target; flatten boots standalone full copies.
        """
        fleet = self.fleet
        booted_fresh = False
        domids: list[int] = []
        try:
            if record.decision == "ship-delta":
                if record.target not in family.replicas:
                    fleet._boot_replica(target, family)
                    booted_fresh = True
                if count == 0:
                    return []
                replica = family.replicas[record.target]
                return target.platform.xl.clone(replica, count=count)
            # Flatten: standalone boots, plus the replica when it is
            # the family's sole template.
            if (record.replica_ships
                    and record.target not in family.replicas):
                fleet._boot_replica(target, family)
                booted_fresh = True
            for _ in range(count):
                serial = fleet._migration_boot_serial
                fleet._migration_boot_serial += 1
                config = DomainConfig(
                    name=f"{family.name}.{target.name}.m{serial}",
                    memory_mb=family.config.memory_mb,
                    vcpus=family.config.vcpus,
                    kernel=family.config.kernel,
                    vifs=list(family.config.vifs),
                    p9fs=list(family.config.p9fs),
                    max_clones=family.config.max_clones,
                    start_clones_paused=family.config.start_clones_paused,
                    clone_io_devices=family.config.clone_io_devices)
                app = (family.app_factory()
                       if family.app_factory is not None else None)
                domain = target.platform.xl.create(config, app=app)
                domids.append(domain.domid)
            return domids
        except ReproError:
            # Unwind whatever landed on the target before the failure:
            # an aborted migration leaves the family wholly at the
            # source, never half-placed.
            for domid in domids:
                if domid in target.platform.hypervisor.domains:
                    target.platform.xl.destroy(domid)
            if booted_fresh:
                replica = family.replicas.pop(record.target, None)
                if (replica is not None and replica
                        in target.platform.hypervisor.domains):
                    target.platform.xl.destroy(replica)
                fleet.topology_epoch += 1
            raise

    def _finish(self, record: MigrationRecord) -> None:
        record.phase = "done"
        record.finished_ms = self.fleet.clock.now
        self.fleet.stats["migrations_done"] += 1
        self.fleet.tracer.event("migration.done", family=record.family)

    def _abort(self, record: MigrationRecord, reason: str) -> None:
        """Abort in place: the family keeps running at the source."""
        fleet = self.fleet
        record.pages_aborted += record.pages_pending
        fleet.stats["migration_pages_aborted"] += record.pages_pending
        record.pages_pending = 0
        record.phase = "failed"
        record.reason = reason
        record.finished_ms = fleet.clock.now
        fleet.stats["migrations_failed"] += 1
        fleet.tracer.event("migration.failed", family=record.family,
                           reason=reason)

    def _lose_host(self, record: MigrationRecord, host_name: str,
                   reason: str) -> None:
        """A ``migration.source``/``migration.target`` fault fired: the
        named host fail-stops mid-round; the migration fails and the
        dead-host path re-places whatever died with it."""
        from repro.fleet.fleet import HostState

        fleet = self.fleet
        host = fleet.host(host_name)
        if record.committed and reason == "source-lost":
            # Post-copy: the moved family cannot be completed without
            # the source's outstanding pages. Tear it down at the
            # target *first* so it is re-placed cold exactly once.
            self._fail_moved_family(record, reason)
        else:
            self._abort(record, reason)
        if host.state not in (HostState.DEAD,):
            host.state = HostState.CRASHED
            fleet.topology_epoch += 1
            fleet._declare_dead(host)

    def _lose_stream(self, record: MigrationRecord) -> None:
        """A ``migration.stream`` fault fired: both hosts stay up."""
        if record.committed:
            self._fail_moved_family(record, "stream-lost")
        else:
            self._abort(record, "stream-lost")

    def _fail_moved_family(self, record: MigrationRecord,
                           reason: str) -> None:
        """Post-cutover failure: the instances already moved to the
        target cannot be completed (their memory source is gone). They
        are torn down and re-placed cold — the family is never left
        half-migrated."""
        from repro.fleet.fleet import HostState

        fleet = self.fleet
        family = fleet.families.get(record.family)
        self._abort(record, reason)
        if family is None:
            return
        target = fleet.host(record.target)
        if target.state is HostState.DEAD:
            # The dead-host path already struck and re-placed them.
            return
        lost = 0
        for domid in family.clones.pop(record.target, []):
            if domid in target.platform.hypervisor.domains:
                target.platform.xl.destroy(domid)
            lost += 1
        replica = family.replicas.pop(record.target, None)
        if replica is not None:
            if replica in target.platform.hypervisor.domains:
                target.platform.xl.destroy(replica)
            fleet.stats["replicas_lost"] += 1
        fleet.topology_epoch += 1
        if lost:
            fleet.stats["children_lost"] += lost
            if fleet.config.replace_lost:
                placed, failed, _retries = fleet._place_children(
                    family, lost)
                fleet.stats["children_replaced"] += len(placed)
                fleet.stats["replace_failed"] += failed
            else:
                fleet.stats["replace_failed"] += lost


# ----------------------------------------------------------------------
# ledger audit (folded into repro.fleet.chaos.audit_fleet)
# ----------------------------------------------------------------------
def audit_migrations(fleet: "Fleet") -> list[str]:
    """The migration conservation laws, as violation strings.

    - per record: ``pages_queued == pages_streamed + pages_aborted +
      pages_pending`` (no page lost from the ledger, none counted
      twice), with ``pages_pending == 0`` once terminal;
    - a committed-and-done migration left no instance behind on the
      source (never split), an uncommitted one placed none on the
      target;
    - the fleet-level counters equal the per-record sums.
    """
    violations: list[str] = []
    streamed = aborted = 0
    done = failed = 0
    for record in fleet.migrations:
        streamed += record.pages_streamed
        aborted += record.pages_aborted
        done += record.phase == "done"
        failed += record.phase == "failed"
        label = (f"migration {record.family} "
                 f"{record.source}->{record.target}")
        if (record.pages_queued != record.pages_streamed
                + record.pages_aborted + record.pages_pending):
            violations.append(
                f"{label}: ledger broken: queued {record.pages_queued} "
                f"!= streamed {record.pages_streamed} + aborted "
                f"{record.pages_aborted} + pending "
                f"{record.pages_pending}")
        if not record.active and record.pages_pending:
            violations.append(
                f"{label}: terminal with {record.pages_pending} "
                f"pages still pending")
    stats = fleet.stats
    if stats["migration_pages_streamed"] != streamed:
        violations.append(
            f"migration stream counter {stats['migration_pages_streamed']}"
            f" != per-record sum {streamed}")
    if stats["migration_pages_aborted"] != aborted:
        violations.append(
            f"migration abort counter {stats['migration_pages_aborted']}"
            f" != per-record sum {aborted}")
    in_flight = sum(1 for r in fleet.migrations if r.active)
    if stats["migrations_planned"] != done + failed + in_flight:
        violations.append(
            f"migration conservation broken: planned "
            f"{stats['migrations_planned']} != done {done} + failed "
            f"{failed} + in-flight {in_flight}")
    return violations


# ----------------------------------------------------------------------
# the migration chaos storm (CI: migration-chaos-smoke)
# ----------------------------------------------------------------------
@dataclass
class MigrationChaosReport:
    """Deterministic outcome of one migration chaos run."""

    seed: int
    hosts: int
    fingerprint: str = ""
    migrations_planned: int = 0
    migrations_done: int = 0
    migrations_failed: int = 0
    pages_streamed: int = 0
    pages_aborted: int = 0
    faults_fired: int = 0
    midstream_audits: int = 0
    violations: list[str] = field(default_factory=list)
    records: list[dict] = field(default_factory=list)
    fleet_stats: dict[str, Any] = field(default_factory=dict)
    clock_ms: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation, the fingerprint payload."""
        return {
            "seed": self.seed,
            "hosts": self.hosts,
            "fingerprint": self.fingerprint,
            "migrations_planned": self.migrations_planned,
            "migrations_done": self.migrations_done,
            "migrations_failed": self.migrations_failed,
            "pages_streamed": self.pages_streamed,
            "pages_aborted": self.pages_aborted,
            "faults_fired": self.faults_fired,
            "midstream_audits": self.midstream_audits,
            "violations": list(self.violations),
            "records": list(self.records),
            "fleet_stats": self.fleet_stats,
            "clock_ms": self.clock_ms,
        }


def migration_storm_plan(seed: int, faults: int = 100,
                         hosts: int = 4):
    """A deterministic fault storm over the migration tier.

    The budget lands almost entirely on ``migration.stream`` (the
    abort-in-place failure: both hosts survive, the family stays wholly
    at the source), spread over the run by randomized ``after`` floors
    and burst sizes, because a stream loss is the only migration fault
    a fleet can absorb an unbounded number of. A bounded tail of
    ``migration.source``/``migration.target`` kills (never more than
    ``hosts - 2``, so the fleet always keeps a migratable pair) fires
    the fail-stop paths: source lost mid-round, target lost mid-round,
    and — via the post-copy storms the workload schedules — source
    lost with pages outstanding after cutover.
    """
    from repro.faults.plan import FaultPlan, FaultSpec
    from repro.sim import DeterministicRNG

    rng = DeterministicRNG(seed).fork("migration-storm-plan")
    kills = max(0, min(hosts - 2, 2))
    specs = []
    # One budgeted probabilistic spec, not many independent ones: the
    # injector consults every armed spec per poll, so N independent
    # draws would compound to near-certain death each round. A single
    # p=0.2 draw lets migrations survive rounds, reach cutover, and
    # still lose the stream at every phase across the storm.
    specs.append(FaultSpec(site="migration.stream",
                           count=faults - kills,
                           probability=0.2))
    for index in range(kills):
        site = ("migration.source" if index % 2 == 0
                else "migration.target")
        specs.append(FaultSpec(site=site, count=1,
                               after=rng.randint(10, 25)))
    return FaultPlan(specs=specs,
                     name=f"migration-storm-{seed:#x}-{faults}")


def run_migration_chaos(seed: int = 0xC10E, hosts: int = 4,
                        faults: int = 100, rounds: int = 10,
                        parents: int = 2, batch: int = 2,
                        host_memory_mb: int = 192,
                        plan=None) -> MigrationChaosReport:
    """Drive drains/rebalances under a migration-fault storm, audit.

    Every workload round clones, dirties clone memory (so migrations
    have real dirty sets to converge over), then alternately drains a
    host or runs a rebalance pass, and advances several heartbeats so
    the in-flight migrations stream **while faults fire**. The
    fleet-wide audit runs both mid-stream (pages in flight) and after
    quiesce; the report fingerprint covers every deterministic output.
    """
    from repro.apps.udp_server import UdpServerApp
    from repro.fleet.chaos import audit_fleet
    from repro.fleet.fleet import Fleet, FleetConfig, HostState
    from repro.sim.units import MIB
    from repro.toolstack.config import DomainConfig, VifConfig

    if plan is None:
        plan = migration_storm_plan(seed, faults=faults, hosts=hosts)
    config = FleetConfig(hosts=hosts, seed=seed, policy="least-loaded",
                         host_memory_bytes=host_memory_mb * MIB,
                         host_dom0_bytes=(host_memory_mb // 3) * MIB)
    fleet = Fleet(config, plan=plan)
    report = MigrationChaosReport(seed=seed, hosts=hosts)
    rng = fleet.rng.fork("migration-chaos-workload")

    if fleet.faults.enabled:
        fleet.faults.active = False
    families = []
    for i in range(parents):
        domain_config = DomainConfig(
            name=f"fam{i}", memory_mb=4,
            vifs=[VifConfig(ip=f"10.2.{i + 1}.1")], max_clones=1024)
        fleet.create_family(domain_config, app_factory=UdpServerApp)
        families.append(domain_config.name)
    if fleet.faults.enabled:
        fleet.faults.active = True

    for round_index in range(rounds):
        for name in families:
            family = fleet.families.get(name)
            if family is None:
                continue
            result = fleet.clone_family(name, count=batch)
            for host_name, domid in result.placed:
                host = fleet.host(host_name)
                child = host.platform.hypervisor.domains.get(domid)
                if child is None or not child.memory.segments:
                    continue
                try:
                    child.memory.write_range(
                        child.memory.segments[0].pfn_start,
                        rng.randint(1, 6))
                except ReproError:
                    pass
        # Drain the most-loaded UP host (where the families are), in
        # alternating modes; fall back to a rebalance pass when the
        # drain is not possible this round.
        live = [h for h in fleet.hosts if h.state is HostState.UP]
        if len(live) >= 2:
            victim = min(live, key=lambda h: (h.free_frames, h.index))
            mode = "postcopy" if round_index % 3 == 2 else "precopy"
            try:
                fleet.drain_host(victim.name, mode=mode)
            except ReproError:
                try:
                    fleet.rebalance()
                except ReproError:
                    pass
        # Stream while faults fire; audit with pages in flight.
        for _ in range(3):
            fleet.tick()
            if any(r.active for r in fleet.migrations):
                report.midstream_audits += 1
                for violation in audit_fleet(fleet):
                    report.violations.append(f"mid-stream: {violation}")
        # Return drained hosts to the pool — drained clean or drain
        # aborted by a fault, either way the host goes back to work so
        # later rounds have somewhere to migrate to.
        for host in fleet.hosts:
            draining = host.state is HostState.DRAINING
            if draining and not any(r.active and r.source == host.name
                                    for r in fleet.migrations):
                fleet.repair_host(host.name)
            elif host.state is HostState.DEGRADED:
                fleet.repair_host(host.name)

    # Quiesce: let in-flight migrations finish or die, then audit.
    for _ in range(fleet.config.heartbeat_timeout_beats
                   + MIGRATION_ROUND_LIMIT):
        fleet.tick()
        if not any(r.active for r in fleet.migrations):
            break
    for host in fleet.hosts:
        if host.state in (HostState.DRAINING, HostState.DEGRADED):
            fleet.repair_host(host.name)
    fleet.shutdown()

    report.migrations_planned = fleet.stats["migrations_planned"]
    report.migrations_done = fleet.stats["migrations_done"]
    report.migrations_failed = fleet.stats["migrations_failed"]
    report.pages_streamed = fleet.stats["migration_pages_streamed"]
    report.pages_aborted = fleet.stats["migration_pages_aborted"]
    report.faults_fired = (fleet.faults.stats["injected"]
                           if fleet.faults.enabled else 0)
    report.violations.extend(audit_fleet(fleet))
    report.records = [r.to_dict() for r in fleet.migrations]
    report.fleet_stats = fleet.report()["stats"]
    report.clock_ms = round(fleet.clock.now, 6)
    payload = report.to_dict()
    payload.pop("fingerprint")
    report.fingerprint = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()
    return report


def main(argv: list[str] | None = None) -> int:
    """CLI: ``python -m repro.fleet.migration`` (migration-chaos-smoke).

    Exits non-zero on any conservation/leak violation, on fingerprint
    drift between same-seed runs, or if the storm never exercised a
    migration (planned == 0 would make the smoke vacuous).
    """
    import argparse

    parser = argparse.ArgumentParser(
        description="Run a deterministic migration chaos storm: drains "
                    "and rebalances under migration/host faults, with "
                    "the fleet-wide leak audit run mid-stream and after "
                    "quiesce.")
    parser.add_argument("--seed", type=lambda v: int(v, 0),
                        default=0xC10E)
    parser.add_argument("--hosts", type=int, default=4)
    parser.add_argument("--faults", type=int, default=100)
    parser.add_argument("--rounds", type=int, default=10)
    parser.add_argument("--runs", type=int, default=1,
                        help="repeat and require byte-identical "
                             "fingerprints")
    parser.add_argument("--json", action="store_true")
    args = parser.parse_args(argv)

    fingerprints = []
    report = None
    for _ in range(max(1, args.runs)):
        report = run_migration_chaos(seed=args.seed, hosts=args.hosts,
                                     faults=args.faults,
                                     rounds=args.rounds)
        fingerprints.append(report.fingerprint)
    assert report is not None
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(f"migration storm seed={args.seed:#x} hosts={args.hosts} "
              f"faults={args.faults}")
        print(f"  planned {report.migrations_planned}, done "
              f"{report.migrations_done}, failed "
              f"{report.migrations_failed}")
        print(f"  pages streamed {report.pages_streamed}, aborted "
              f"{report.pages_aborted}, mid-stream audits "
              f"{report.midstream_audits}")
        print(f"  violations: {len(report.violations)}")
        for violation in report.violations:
            print(f"    - {violation}")
        print(f"  fingerprint: {report.fingerprint}")

    failures = []
    if report.violations:
        failures.append(f"{len(report.violations)} audit violations")
    if len(set(fingerprints)) > 1:
        failures.append("fingerprint drift between same-seed runs")
    if report.migrations_planned == 0:
        failures.append("storm planned no migrations")
    if failures:
        print("FAIL: " + "; ".join(failures))
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
