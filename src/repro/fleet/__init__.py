"""repro.fleet: multi-host placement, failover and host-level chaos.

The fleet tier sits above :class:`repro.platform.Platform`: N fully
independent simulated hosts behind one control plane that places clone
families, routes and forwards clone requests (round-robin or
least-loaded), detects host failures via deterministic heartbeats, and
re-places lost clones on survivors — the ROADMAP's "natural next tier
above per-operation faults".
"""

from repro.fleet.chaos import (
    FleetChaosReport,
    audit_fleet,
    kill_plan,
    run_fleet_chaos,
)
from repro.fleet.fleet import (
    CloneResult,
    Fleet,
    FleetConfig,
    FleetError,
    FleetHost,
    HostState,
)
from repro.fleet.parallel import (
    HostSpec,
    ParallelStormReport,
    ProcessHostExecutor,
    SerialHostExecutor,
    audit_parallel_report,
    run_parallel_storm,
)
from repro.fleet.placement import (
    POLICIES,
    LeastLoadedPolicy,
    PlacementError,
    PlacementPolicy,
    RoundRobinPolicy,
    make_policy,
)

__all__ = [
    "HostSpec",
    "ParallelStormReport",
    "ProcessHostExecutor",
    "SerialHostExecutor",
    "audit_parallel_report",
    "run_parallel_storm",
    "Fleet",
    "FleetConfig",
    "FleetError",
    "FleetHost",
    "HostState",
    "CloneResult",
    "PlacementPolicy",
    "PlacementError",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "POLICIES",
    "make_policy",
    "audit_fleet",
    "kill_plan",
    "run_fleet_chaos",
    "FleetChaosReport",
]
