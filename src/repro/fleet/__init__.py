"""repro.fleet: multi-host placement, failover and host-level chaos.

The fleet tier sits above :class:`repro.platform.Platform`: N fully
independent simulated hosts behind one control plane that places clone
families, routes and forwards clone requests (round-robin or
least-loaded), detects host failures via deterministic heartbeats, and
re-places lost clones on survivors — the ROADMAP's "natural next tier
above per-operation faults". :mod:`repro.fleet.migration` adds live
warm migration of clone families between hosts (pre-copy dirty-page
rounds or post-copy demand streaming), driven by the ``drain_host``
verb and the least-loaded policy's rebalance pass.
"""

from repro.fleet.chaos import (
    FleetChaosReport,
    audit_fleet,
    kill_plan,
    run_fleet_chaos,
)
from repro.fleet.fleet import (
    CloneResult,
    Fleet,
    FleetConfig,
    FleetError,
    FleetHost,
    HostState,
)
from repro.fleet.migration import (
    MIGRATION_CUTOVER_THRESHOLD_PAGES,
    MIGRATION_ROUND_LIMIT,
    MigrationChaosReport,
    MigrationError,
    MigrationPlanner,
    MigrationRecord,
    audit_migrations,
    migration_storm_plan,
    run_migration_chaos,
)
from repro.fleet.parallel import (
    HostSpec,
    ParallelStormReport,
    ProcessHostExecutor,
    SerialHostExecutor,
    audit_parallel_report,
    run_parallel_storm,
)
from repro.fleet.placement import (
    POLICIES,
    LeastLoadedPolicy,
    PlacementError,
    PlacementPolicy,
    RoundRobinPolicy,
    make_policy,
)

__all__ = [
    "HostSpec",
    "ParallelStormReport",
    "ProcessHostExecutor",
    "SerialHostExecutor",
    "audit_parallel_report",
    "run_parallel_storm",
    "Fleet",
    "FleetConfig",
    "FleetError",
    "FleetHost",
    "HostState",
    "CloneResult",
    "PlacementPolicy",
    "PlacementError",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "POLICIES",
    "make_policy",
    "audit_fleet",
    "kill_plan",
    "run_fleet_chaos",
    "FleetChaosReport",
    "MIGRATION_CUTOVER_THRESHOLD_PAGES",
    "MIGRATION_ROUND_LIMIT",
    "MigrationChaosReport",
    "MigrationError",
    "MigrationPlanner",
    "MigrationRecord",
    "audit_migrations",
    "migration_storm_plan",
    "run_migration_chaos",
]
