"""Placement policies: which host receives a new instance.

A policy sees only the candidate hosts the fleet already filtered for
availability and capacity, and picks one. Policies are deterministic
state machines — two fleets running the same (seed, plan, policy)
triple place every instance identically, which is what makes the fleet
chaos fingerprint reproducible.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.fleet import FleetHost


class PlacementError(ReproError):
    """No host can take the instance (capacity or availability)."""


class PlacementPolicy:
    """Base class: pick one host from the filtered candidates."""

    #: Registry key (``--policy`` on the CLI).
    name = "base"

    def choose(self, candidates: Sequence["FleetHost"]) -> "FleetHost":
        """Pick the host that receives the instance."""
        raise NotImplementedError

    def reset(self) -> None:
        """Drop any internal state (between independent runs)."""

    def rebalance_pair(self, candidates: Sequence["FleetHost"],
                       ) -> tuple["FleetHost", "FleetHost"] | None:
        """Propose an (overloaded, underloaded) host pair to migrate a
        family between, or ``None`` when the fleet looks balanced.

        Consulted by :meth:`repro.fleet.fleet.Fleet.rebalance`. The
        base policy has no load notion and never proposes a move.
        """
        return None


class RoundRobinPolicy(PlacementPolicy):
    """Rotate over hosts in index order.

    The cursor advances per *placement*, not per host, so a host
    leaving the candidate set (crash, drain) does not shift the phase
    of the rotation for the survivors.
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def choose(self, candidates: Sequence["FleetHost"]) -> "FleetHost":
        """Pick the next candidate in rotation order."""
        if not candidates:
            raise PlacementError("no candidate hosts")
        host = candidates[self._cursor % len(candidates)]
        self._cursor += 1
        return host

    def reset(self) -> None:
        """Rewind the rotation cursor."""
        self._cursor = 0


class LeastLoadedPolicy(PlacementPolicy):
    """Pick the host with the most free machine frames.

    Ties break on the lowest host index, keeping the choice
    deterministic when fresh hosts are interchangeable.
    """

    name = "least-loaded"

    #: Rebalance trigger: propose a move only when the busiest host has
    #: less than this fraction of the idlest host's free frames.
    REBALANCE_RATIO = 0.5

    def choose(self, candidates: Sequence["FleetHost"]) -> "FleetHost":
        """Pick the candidate with the most free frames."""
        if not candidates:
            raise PlacementError("no candidate hosts")
        return max(candidates, key=lambda h: (h.free_frames, -h.index))

    def rebalance_pair(self, candidates: Sequence["FleetHost"],
                       ) -> tuple["FleetHost", "FleetHost"] | None:
        """Propose (busiest, idlest) once the imbalance crosses the
        threshold; ties break on host index, keeping the proposal
        deterministic."""
        if len(candidates) < 2:
            return None
        busiest = min(candidates, key=lambda h: (h.free_frames, h.index))
        idlest = max(candidates, key=lambda h: (h.free_frames, -h.index))
        if busiest is idlest:
            return None
        if busiest.free_frames >= idlest.free_frames * self.REBALANCE_RATIO:
            return None
        return busiest, idlest


#: Policy registry: ``--policy`` names -> constructors.
POLICIES = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    LeastLoadedPolicy.name: LeastLoadedPolicy,
}


def make_policy(name: str) -> PlacementPolicy:
    """Instantiate a registered policy by name."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise PlacementError(
            f"unknown placement policy {name!r} "
            f"(known: {sorted(POLICIES)})") from None
