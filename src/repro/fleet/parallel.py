"""Process-parallel fleet execution with epoch barriers.

The serial :class:`~repro.fleet.fleet.Fleet` interleaves every host's
virtual work on one Python thread; a chaos storm over N hosts therefore
costs N hosts' worth of wall-clock time. This module runs the same
style of storm with each member host's :class:`~repro.platform.Platform`
owned by a worker process, synchronized in *epochs*:

1. The control plane (always in the parent process) plans an epoch from
   the host snapshots collected at the previous barrier: clone
   placements, forwards, COW touches, destroys, and the kill schedule.
2. Every host executes its command batch independently — this is the
   part that parallelizes, because member platforms share no state.
3. At the barrier the control plane collects per-command results,
   advances the fleet :class:`~repro.sim.clock.VirtualClock` to the
   epoch boundary, detects host deaths, and defers re-placement of lost
   children to the *next* epoch.

Cross-host interactions (clone forwards, heartbeat accounting,
re-placements) happen only at barriers, so the command batches — and
with them every host platform's trajectory — are identical whether the
batches run in worker processes or sequentially in the parent. That is
the determinism contract: ``run_parallel_storm(seed, workers=0)`` and
``run_parallel_storm(seed, workers=4)`` produce byte-identical
fingerprints (pinned by ``tests/test_fleet_parallel.py``).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
from dataclasses import dataclass, field
from typing import Any

from repro.devices.vif import RX_BUFFER_PAGES
from repro.errors import ReproError
from repro.faults.chaos import audit_platform
from repro.faults.plan import FaultPlan, FaultSpec
from repro.fleet.placement import make_policy
from repro.platform import Platform
from repro.sim import CostModel, DeterministicRNG, VirtualClock
from repro.sim.units import MIB, pages_of


@dataclass(frozen=True)
class HostSpec:
    """Everything a worker process needs to build one member host.

    Plain picklable data: the spec crosses the process boundary once at
    executor start-up; the platform itself is built *inside* the worker
    and never leaves it.
    """

    name: str
    index: int
    seed: int
    memory_bytes: int
    dom0_bytes: int
    cpus: int = 4
    use_xs_clone: bool = True


@dataclass(frozen=True)
class _Snapshot:
    """One host's barrier-time state, as the control plane sees it.

    Quacks like :class:`~repro.fleet.fleet.FleetHost` just enough for
    the placement policies (``free_frames`` + ``index``).
    """

    name: str
    index: int
    guests: int
    free_frames: int
    clock_ms: float
    alive: bool


class _HostEngine:
    """One member host: a Platform plus the epoch command interpreter.

    Commands arrive as plain tuples and produce one result tuple each,
    in order — the control plane attributes results by zipping them
    with the batch it sent. Mutating commands on a dead host answer
    ``("fenced",)``; read-only commands (``status``, ``audit``,
    ``advance``) always execute, so a fenced host still reports its
    post-power-off state.
    """

    def __init__(self, spec: HostSpec) -> None:
        self.spec = spec
        self.platform = Platform.create(
            total_memory_bytes=spec.memory_bytes,
            dom0_memory_bytes=spec.dom0_bytes,
            cpus=spec.cpus,
            seed=spec.seed,
            use_xs_clone=spec.use_xs_clone,
            trace=False,
            host_name=spec.name)
        # Live injector with an empty plan, mirroring Fleet: the control
        # plane arms one-shot kills at runtime via ``arm_kill``.
        self.platform.attach_faults(FaultPlan(name=f"{spec.name}-armed"))
        self.alive = True
        self.dying = False
        #: family name -> replica domid on this host.
        self.replicas: dict[str, int] = {}

    # ------------------------------------------------------------------
    def execute(self, commands: list[tuple]) -> list[tuple]:
        """Run one epoch's command batch; one result tuple per command."""
        results = []
        for command in commands:
            op = command[0]
            if op == "status":
                results.append(self._status())
            elif op == "audit":
                results.append(("audit",
                                tuple(audit_platform(self.platform))))
            elif op == "advance":
                if self.platform.clock.now < command[1]:
                    self.platform.clock.advance_to(command[1])
                results.append(("ok",))
            elif not self.alive:
                results.append(("fenced",))
            elif op == "boot":
                results.append(self._boot(command))
            elif op == "clone":
                results.append(self._clone(command))
            elif op == "touch":
                results.append(self._touch(command))
            elif op == "destroy":
                results.append(self._destroy(command))
            elif op == "arm_kill":
                self.dying = True
                self.platform.faults.arm(FaultSpec(
                    site="frames.alloc", count=1, after=command[1]))
                results.append(("ok",))
            elif op == "kill":
                self._power_off()
                results.append(("host_died", "kill"))
            else:
                raise ReproError(f"unknown epoch command {op!r}")
        return results

    # ------------------------------------------------------------------
    def _status(self) -> tuple:
        return ("status", self.platform.guest_count(),
                self.platform.hypervisor.frames.free_frames,
                round(self.platform.clock.now, 6), self.alive)

    def _boot(self, command: tuple) -> tuple:
        from repro.apps.udp_server import UdpServerApp
        from repro.toolstack.config import DomainConfig, VifConfig

        family, ip, memory_mb, max_clones = command[1:5]
        config = DomainConfig(
            name=f"{family}.{self.spec.name}", memory_mb=memory_mb,
            vifs=[VifConfig(ip=ip)], max_clones=max_clones)
        try:
            domain = self.platform.xl.create(config, app=UdpServerApp())
        except ReproError as exc:
            if self.dying:
                self._power_off()
                return ("host_died", type(exc).__name__)
            return ("boot_failed", type(exc).__name__)
        self.replicas[family] = domain.domid
        return ("booted", domain.domid)

    def _clone(self, command: tuple) -> tuple:
        family, count = command[1], command[2]
        replica = self.replicas.get(family)
        if replica is None:
            return ("clone_failed", "no-replica")
        try:
            domids = self.platform.xl.clone(replica, count=count)
        except ReproError as exc:
            if self.dying:
                self._power_off()
                return ("host_died", type(exc).__name__)
            return ("clone_failed", type(exc).__name__)
        return ("cloned", tuple(domids))

    def _touch(self, command: tuple) -> tuple:
        domid, pages = command[1], command[2]
        domain = self.platform.hypervisor.domains.get(domid)
        if domain is None or not domain.memory.segments:
            return ("ok",)
        try:
            domain.memory.write_range(domain.memory.segments[0].pfn_start,
                                      pages)
        except ReproError as exc:
            if self.dying:
                self._power_off()
                return ("host_died", type(exc).__name__)
            # The serial chaos storm swallows COW-touch errors too.
        return ("ok",)

    def _destroy(self, command: tuple) -> tuple:
        domid = command[1]
        if domid in self.platform.hypervisor.domains:
            try:
                self.platform.xl.destroy(domid)
            except ReproError:
                pass
        for family, replica in list(self.replicas.items()):
            if replica == domid:
                del self.replicas[family]
        return ("ok",)

    def _power_off(self) -> None:
        """Fail-stop: release every guest, mirroring ``_declare_dead``."""
        platform = self.platform
        platform.xencloned.shutdown()
        for domid in sorted(platform.hypervisor.domains):
            if domid not in platform.hypervisor.domains:
                continue
            try:
                platform.xl.destroy(domid)
            except ReproError:
                platform.hypervisor.destroy_domain(domid)
        platform.cloneop.host_shutdown()
        self.alive = False
        self.dying = False
        self.replicas.clear()


# ----------------------------------------------------------------------
# executors: where the epoch batches actually run
# ----------------------------------------------------------------------
class SerialHostExecutor:
    """Run every host's batch in the parent process, in index order."""

    workers = 0

    def __init__(self, specs: list[HostSpec]) -> None:
        self.engines = {spec.index: _HostEngine(spec) for spec in specs}

    def run_epoch(self, batches: dict[int, list[tuple]],
                  ) -> dict[int, list[tuple]]:
        """Execute the batches; the return is the barrier."""
        return {index: self.engines[index].execute(commands)
                for index, commands in sorted(batches.items())}

    def close(self) -> None:
        """Nothing to tear down in-process."""


def _worker_main(conn, specs: list[HostSpec]) -> None:
    """Worker process loop: recv batches, execute, send results."""
    engines = {spec.index: _HostEngine(spec) for spec in specs}
    while True:
        try:
            batches = conn.recv()
        except EOFError:
            break
        if batches is None:
            break
        conn.send({index: engines[index].execute(commands)
                   for index, commands in sorted(batches.items())})
    conn.close()


class ProcessHostExecutor:
    """Shard the hosts over N worker processes; barrier on all replies.

    Hosts are assigned round-robin by index, so host counts that do not
    divide evenly still balance. The pipes carry only command/result
    tuples — platforms never cross the process boundary.
    """

    def __init__(self, specs: list[HostSpec], workers: int) -> None:
        self.workers = max(1, min(workers, len(specs)))
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        shards: list[list[HostSpec]] = [[] for _ in range(self.workers)]
        for spec in specs:
            shards[spec.index % self.workers].append(spec)
        self._shard_of = {spec.index: shard_index
                          for shard_index, shard in enumerate(shards)
                          for spec in shard}
        self._pipes = []
        self._procs = []
        for shard in shards:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(target=_worker_main,
                               args=(child_conn, shard), daemon=True)
            proc.start()
            child_conn.close()
            self._pipes.append(parent_conn)
            self._procs.append(proc)

    def run_epoch(self, batches: dict[int, list[tuple]],
                  ) -> dict[int, list[tuple]]:
        """Send each shard its batches; collect all replies (barrier)."""
        per_shard: list[dict[int, list[tuple]]] = [
            {} for _ in self._pipes]
        for index, commands in batches.items():
            per_shard[self._shard_of[index]][index] = commands
        for pipe, shard_batches in zip(self._pipes, per_shard):
            if shard_batches:
                pipe.send(shard_batches)
        merged: dict[int, list[tuple]] = {}
        for pipe, shard_batches in zip(self._pipes, per_shard):
            if shard_batches:
                merged.update(pipe.recv())
        return merged

    def close(self) -> None:
        """Shut the workers down and reap them."""
        for pipe in self._pipes:
            try:
                pipe.send(None)
            except (OSError, BrokenPipeError):
                pass
        for proc in self._procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=10)
        for pipe in self._pipes:
            pipe.close()


# ----------------------------------------------------------------------
# the epoch-structured storm
# ----------------------------------------------------------------------
@dataclass
class ParallelStormReport:
    """Outcome of one parallel storm run, with its fingerprint.

    ``workers`` is excluded from the fingerprint payload: the whole
    point of the epoch-barrier design is that the executor choice does
    not change the simulation.
    """

    seed: int
    hosts: int
    workers: int
    policy: str
    epochs: int
    epoch_window_ms: float
    clones_requested: int = 0
    clones_placed: int = 0
    clones_failed: int = 0
    children_lost: int = 0
    children_replaced: int = 0
    replace_failed: int = 0
    hosts_killed: int = 0
    forwards: int = 0
    fenced_commands: int = 0
    clock_ms: float = 0.0
    per_host: list = field(default_factory=list)
    violations: list = field(default_factory=list)
    fingerprint: str = ""

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (CLI ``--json``, fingerprinting)."""
        return {
            "seed": self.seed,
            "hosts": self.hosts,
            "workers": self.workers,
            "policy": self.policy,
            "epochs": self.epochs,
            "epoch_window_ms": self.epoch_window_ms,
            "clones_requested": self.clones_requested,
            "clones_placed": self.clones_placed,
            "clones_failed": self.clones_failed,
            "children_lost": self.children_lost,
            "children_replaced": self.children_replaced,
            "replace_failed": self.replace_failed,
            "hosts_killed": self.hosts_killed,
            "forwards": self.forwards,
            "fenced_commands": self.fenced_commands,
            "clock_ms": self.clock_ms,
            "per_host": list(self.per_host),
            "violations": list(self.violations),
            "fingerprint": self.fingerprint,
        }


def audit_parallel_report(report: ParallelStormReport) -> list[str]:
    """The storm's conservation laws, as audit-style violation strings.

    Mirrors ``audit_fleet``: every requested child is placed or failed,
    every lost child is replaced or accounted as a failed replacement.
    """
    violations = []
    resolved = report.clones_placed + report.clones_failed
    if report.clones_requested != resolved:
        violations.append(
            f"storm: {report.clones_requested} children requested but "
            f"{report.clones_placed}+{report.clones_failed} resolved")
    replaced = report.children_replaced + report.replace_failed
    if report.children_lost != replaced:
        violations.append(
            f"storm: {report.children_lost} children lost but "
            f"{report.children_replaced}+{report.replace_failed} "
            f"re-placement outcomes")
    return violations


def run_parallel_storm(seed: int = 0xC10E, hosts: int = 4,
                       workers: int = 0, parents: int = 2,
                       batch: int = 3, epochs: int = 8, kills: int = 1,
                       policy: str = "round-robin",
                       epoch_window_ms: float = 50.0,
                       host_memory_mb: int = 192,
                       ) -> ParallelStormReport:
    """Run one epoch-structured fleet storm; see the module docstring.

    ``workers=0`` executes every host in the parent process;
    ``workers>=1`` shards the hosts over that many worker processes.
    Both produce byte-identical reports for the same arguments.
    """
    rng = DeterministicRNG(seed)
    host_rng = rng.fork("host-seeds")
    specs = [HostSpec(name=f"host{i}", index=i,
                      seed=host_rng.fork(f"host{i}").seed,
                      memory_bytes=host_memory_mb * MIB,
                      dom0_bytes=(host_memory_mb // 3) * MIB)
             for i in range(hosts)]
    executor = (ProcessHostExecutor(specs, workers) if workers >= 1
                else SerialHostExecutor(specs))
    try:
        return _run_storm(executor, specs, seed=seed, parents=parents,
                          batch=batch, epochs=epochs, kills=kills,
                          policy=policy, epoch_window_ms=epoch_window_ms,
                          rng=rng)
    finally:
        executor.close()


def _run_storm(executor, specs: list[HostSpec], *, seed: int,
               parents: int, batch: int, epochs: int, kills: int,
               policy: str, epoch_window_ms: float,
               rng: DeterministicRNG) -> ParallelStormReport:
    hosts = len(specs)
    costs = CostModel()
    fleet_clock = VirtualClock()
    policy_obj = make_policy(policy)
    wrng = rng.fork("parallel-storm-workload")
    krng = rng.fork("parallel-storm-kills")

    report = ParallelStormReport(
        seed=seed, hosts=hosts, workers=getattr(executor, "workers", 0),
        policy=policy, epochs=epochs, epoch_window_ms=epoch_window_ms)

    families = [f"fam{i}" for i in range(parents)]
    family_ip = {f"fam{i}": f"10.1.{i + 1}.1" for i in range(parents)}
    memory_mb, max_clones = 4, 1024
    clone_need = costs.hyp_per_clone_overhead_pages + RX_BUFFER_PAGES + 16
    parent_need = (pages_of(memory_mb * MIB)
                   + costs.hyp_per_domain_overhead_pages
                   + RX_BUFFER_PAGES + 16)

    # Kill schedule: distinct victims, one mid-epoch arm each. Drawn up
    # front from a dedicated stream so the schedule is independent of
    # how the workload unfolds.
    kill_epochs: dict[int, list[tuple[int, int]]] = {}
    victims = list(range(hosts))
    for _ in range(max(0, min(kills, hosts))):
        victim = victims.pop(krng.randint(0, len(victims) - 1))
        epoch = krng.randint(1, max(1, epochs))
        kill_epochs.setdefault(epoch, []).append(
            (victim, krng.randint(0, 6)))

    alive = set(range(hosts))
    snapshots: dict[int, _Snapshot] = {}
    #: family -> host index set holding a replica (control-plane mirror).
    replicas: dict[str, set[int]] = {name: set() for name in families}
    replica_domids: dict[tuple[str, int], int] = {}
    #: family -> host index -> live clone domids.
    placements: dict[str, dict[int, list[int]]] = {
        name: {} for name in families}
    #: Clones placed at the previous barrier (touched next epoch).
    last_placed: list[tuple[str, int, int]] = []
    pending_replace: list[tuple[str, int]] = []

    def barrier(batches: dict[int, list[tuple]],
                ) -> dict[int, list[tuple]]:
        results = executor.run_epoch(batches)
        # Heartbeat accounting + epoch boundary on the fleet clock.
        fleet_clock.charge(costs.fleet_heartbeat_poll * len(alive))
        return results

    def host_died(index: int) -> None:
        if index not in alive:
            return
        alive.discard(index)
        report.hosts_killed += 1
        fleet_clock.charge(costs.fleet_detect_fixed)
        for name in families:
            replicas[name].discard(index)
            replica_domids.pop((name, index), None)
            lost = placements[name].pop(index, None)
            if lost:
                report.children_lost += len(lost)
                pending_replace.append((name, len(lost)))

    #: Forwards queued in the epoch being planned: a second request for
    #: the same family must reuse the queued replica, not boot another.
    epoch_forwards: set[tuple[str, int]] = set()

    def place_request(name: str, count: int, kind: str,
                      batches: dict[int, list[tuple]]) -> bool:
        """Queue one clone request; False when no host can take it."""
        holder_indices = sorted(
            replicas[name] | {i for (n, i) in epoch_forwards if n == name})
        holders = [snapshots[i] for i in holder_indices
                   if i in alive
                   and snapshots[i].free_frames >= clone_need * count]
        if holders:
            target = policy_obj.choose(holders)
        else:
            fresh = [snapshots[i] for i in sorted(alive)
                     if snapshots[i].free_frames
                     >= parent_need + clone_need * count]
            if not fresh:
                return False
            target = policy_obj.choose(fresh)
            batches.setdefault(target.index, []).append(
                ("boot", name, family_ip[name], memory_mb, max_clones))
            epoch_forwards.add((name, target.index))
            fleet_clock.charge(costs.fleet_forward_rpc)
            report.forwards += 1
        batches.setdefault(target.index, []).append(
            ("clone", name, count, kind))
        return True

    def process_results(batches: dict[int, list[tuple]],
                        results: dict[int, list[tuple]]) -> None:
        last_placed.clear()
        for index in sorted(results):
            for command, result in zip(batches[index], results[index]):
                op, tag = command[0], result[0]
                if tag == "status":
                    snapshots[index] = _Snapshot(
                        name=specs[index].name, index=index,
                        guests=result[1], free_frames=result[2],
                        clock_ms=result[3], alive=result[4])
                    continue
                if tag == "host_died":
                    host_died(index)
                if tag == "fenced":
                    report.fenced_commands += 1
                if op == "boot":
                    if tag == "booted":
                        replicas[command[1]].add(index)
                        replica_domids[(command[1], index)] = result[1]
                elif op == "clone":
                    name, count, kind = command[1], command[2], command[3]
                    if tag == "cloned":
                        domids = list(result[1])
                        placements[name].setdefault(index, []).extend(
                            domids)
                        last_placed.extend(
                            (name, index, domid) for domid in domids)
                        if kind == "batch":
                            report.clones_placed += len(domids)
                        else:
                            report.children_replaced += len(domids)
                    else:
                        if kind == "batch":
                            report.clones_failed += count
                        else:
                            report.replace_failed += count

    # Barrier -1: attach — collect the initial capacity snapshots.
    prologue = {i: [("status",)] for i in range(hosts)}
    process_results(prologue, barrier(prologue))

    # Epoch 0: boot the parent families (no kills are scheduled here,
    # mirroring the serial storm's disarmed boot phase).
    boot_batches: dict[int, list[tuple]] = {}
    for name in families:
        candidates = [snapshots[i] for i in sorted(alive)
                      if snapshots[i].free_frames >= parent_need]
        if not candidates:
            raise ReproError(f"no host can boot family {name!r}")
        target = policy_obj.choose(candidates)
        boot_batches.setdefault(target.index, []).append(
            ("boot", name, family_ip[name], memory_mb, max_clones))
    for i in range(hosts):
        boot_batches.setdefault(i, []).append(("status",))
    process_results(boot_batches, barrier(boot_batches))
    if fleet_clock.now < epoch_window_ms:
        fleet_clock.advance_to(epoch_window_ms)

    # Workload epochs.
    for epoch in range(1, epochs + 1):
        epoch_forwards.clear()
        batches = {i: [("advance", round(fleet_clock.now, 6))]
                   for i in range(hosts)}
        for victim, after in kill_epochs.get(epoch, []):
            if victim in alive:
                batches[victim].append(("arm_kill", after))
        for name, count in pending_replace:
            if not place_request(name, count, "replace", batches):
                report.replace_failed += count
        pending_replace.clear()
        for name in families:
            report.clones_requested += batch
            if not place_request(name, batch, "batch", batches):
                report.clones_failed += batch
        # COW-touch the clones placed at the previous barrier. The page
        # counts are drawn unconditionally so the workload stream does
        # not depend on which hosts happen to be alive.
        for name, index, domid in last_placed:
            pages = wrng.randint(1, 4)
            if index in alive:
                batches[index].append(("touch", domid, pages))
        # Destroy one live clone per family per epoch.
        for name in families:
            flat = [(i, domid)
                    for i in sorted(placements[name])
                    for domid in placements[name][i]]
            if not flat:
                continue
            index, domid = flat[wrng.randint(0, len(flat) - 1)]
            batches[index].append(("destroy", domid))
            placements[name][index].remove(domid)
        # A victim whose epoch batch allocates nothing would never trip
        # its armed ``frames.alloc`` fault: fail-stop it at the barrier
        # instead, so the kill schedule always lands.
        for victim, _after in kill_epochs.get(epoch, []):
            if victim in alive and not any(
                    cmd[0] in ("boot", "clone", "touch")
                    for cmd in batches[victim]):
                batches[victim].append(("kill",))
        for i in range(hosts):
            batches[i].append(("status",))
        process_results(batches, barrier(batches))
        target_ms = (epoch + 1) * epoch_window_ms
        if fleet_clock.now < target_ms:
            fleet_clock.advance_to(target_ms)

    # Drain epoch: one deferred re-placement attempt for children lost
    # at the final barrier; leftovers are accounted failed.
    if pending_replace:
        epoch_forwards.clear()
        batches = {i: [("advance", round(fleet_clock.now, 6))]
                   for i in sorted(alive)}
        for name, count in pending_replace:
            if not place_request(name, count, "replace", batches):
                report.replace_failed += count
        pending_replace.clear()
        for i in range(hosts):
            batches.setdefault(i, []).append(("status",))
        process_results(batches, barrier(batches))
        for name, count in pending_replace:
            report.replace_failed += count
        pending_replace.clear()

    # Teardown: destroy every surviving clone and replica, then audit
    # every host — dead ones included; power-off must have left them
    # clean.
    teardown: dict[int, list[tuple]] = {}
    for name in families:
        for index in sorted(placements[name]):
            if index not in alive:
                continue
            for domid in placements[name][index]:
                teardown.setdefault(index, []).append(("destroy", domid))
    for (name, index), domid in sorted(replica_domids.items(),
                                       key=lambda kv: (kv[0][1], kv[1])):
        if index in alive:
            teardown.setdefault(index, []).append(("destroy", domid))
    for i in range(hosts):
        teardown.setdefault(i, []).append(("audit",))
        teardown[i].append(("status",))
    results = barrier(teardown)
    for index in sorted(results):
        for command, result in zip(teardown[index], results[index]):
            if result[0] == "audit":
                report.violations.extend(
                    f"{specs[index].name}: {v}" for v in result[1])
    process_results(teardown, results)

    for index in sorted(snapshots):
        snap = snapshots[index]
        if snap.alive and snap.guests:
            report.violations.append(
                f"{snap.name}: {snap.guests} guests survived teardown")
        report.per_host.append({
            "host": snap.name, "alive": snap.alive,
            "guests": snap.guests, "free_frames": snap.free_frames,
            "clock_ms": snap.clock_ms})
    report.violations.extend(audit_parallel_report(report))
    report.clock_ms = round(fleet_clock.now, 6)

    payload = report.to_dict()
    payload.pop("fingerprint")
    payload.pop("workers")
    report.fingerprint = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()
    return report
