"""Fleet chaos: host-kill storms + the fleet-wide leak oracle.

``run_fleet_chaos`` drives a clone workload across N hosts while a
deterministic kill plan takes hosts down — some mid-batch (exercising
the whole-batch rollback on the dying host), some between batches
(exercising heartbeat-timeout detection) — then quiesces the fleet and
audits every host, dead or alive, for leaked frames, grants, event
endpoints and Xenstore nodes. The report fingerprint covers every
deterministic output, so two runs at the same (seed, plan, policy) must
be byte-identical: the property the ``fleet-chaos-smoke`` CI job pins.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError
from repro.faults.chaos import audit_platform
from repro.faults.plan import FaultPlan, FaultSpec
from repro.fleet.fleet import Fleet, FleetConfig, HostState
from repro.sim import DeterministicRNG
from repro.sim.units import MIB


@dataclass
class FleetChaosReport:
    """The deterministic outcome of one fleet chaos run."""

    seed: int
    hosts: int
    policy: str
    plan_name: str
    fingerprint: str = ""
    clones_requested: int = 0
    clones_placed: int = 0
    clones_failed: int = 0
    hosts_killed: int = 0
    replacements: int = 0
    violations: list[str] = field(default_factory=list)
    fleet_stats: dict[str, Any] = field(default_factory=dict)
    clock_ms: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (what the CLI prints with --json)."""
        return {
            "seed": self.seed,
            "hosts": self.hosts,
            "policy": self.policy,
            "plan": self.plan_name,
            "fingerprint": self.fingerprint,
            "clones_requested": self.clones_requested,
            "clones_placed": self.clones_placed,
            "clones_failed": self.clones_failed,
            "hosts_killed": self.hosts_killed,
            "replacements": self.replacements,
            "violations": list(self.violations),
            "fleet_stats": self.fleet_stats,
            "clock_ms": self.clock_ms,
        }


def audit_fleet(fleet: Fleet, frontdoor: Any = None) -> list[str]:
    """Fleet-wide leak oracle: every violation, as strings.

    Runs the single-host oracle (:func:`audit_platform`) on every
    member — *including dead hosts*, whose power-off accounting must
    have released every frame, grant, endpoint and store node — then
    checks the control plane's own bookkeeping: family records must
    reference only live hosts and live domains, and the child-count
    conservation laws must hold (no clone silently dropped, no lost
    clone unaccounted). Warm migrations add a page ledger
    (:func:`repro.fleet.migration.audit_migrations`): pages queued ==
    streamed + aborted + pending for every record — no page lost in
    flight, none double-owned — and every planned migration ends done,
    failed, or still streaming.

    Pass the fleet's :class:`~repro.frontdoor.dispatch.FrontDoor` as
    ``frontdoor`` to additionally check the request-dispatch
    conservation laws: every request and every clone copy ends in
    exactly one terminal state, and the service work the replica
    servers delivered equals the work charged to copies — request
    cloning with cancellation must never double-count service work.
    """
    violations: list[str] = []
    for host in fleet.hosts:
        for violation in audit_platform(host.platform):
            violations.append(f"{host.name}: {violation}")
        if host.state is HostState.DEAD:
            guests = host.platform.guest_count()
            if guests:
                violations.append(
                    f"{host.name}: dead host still runs {guests} guests")
            if host.platform.cloneop._pending:
                violations.append(
                    f"{host.name}: dead host has pending second stages")

    for family in fleet.families.values():
        for host_name, domid in family.replicas.items():
            host = fleet.host(host_name)
            if host.state is HostState.DEAD:
                violations.append(
                    f"family {family.name}: replica on dead {host_name}")
            elif domid not in host.platform.hypervisor.domains:
                violations.append(
                    f"family {family.name}: replica domid {domid} "
                    f"not live on {host_name}")
        for host_name, domids in family.clones.items():
            host = fleet.host(host_name)
            if host.state is HostState.DEAD:
                violations.append(
                    f"family {family.name}: clones on dead {host_name}")
                continue
            for domid in domids:
                if domid not in host.platform.hypervisor.domains:
                    violations.append(
                        f"family {family.name}: clone domid {domid} "
                        f"not live on {host_name}")

    stats = fleet.stats
    if (stats["children_requested"]
            != stats["children_placed"] + stats["children_failed"]):
        violations.append(
            f"clone conservation broken: requested "
            f"{stats['children_requested']} != placed "
            f"{stats['children_placed']} + failed "
            f"{stats['children_failed']}")
    if (stats["children_lost"]
            != stats["children_replaced"] + stats["replace_failed"]):
        violations.append(
            f"failover conservation broken: lost {stats['children_lost']} "
            f"!= replaced {stats['children_replaced']} + replace-failed "
            f"{stats['replace_failed']}")
    if fleet.migrations:
        from repro.fleet.migration import audit_migrations
        violations.extend(audit_migrations(fleet))
    if frontdoor is not None:
        violations.extend(audit_frontdoor(frontdoor))
    return violations


def audit_frontdoor(frontdoor: Any) -> list[str]:
    """The front-door work-conservation laws, as violation strings.

    Five invariants, all exact counts except the float work ledger:

    - every first try accounted at admission:
      ``offered == admitted (requests) + shed`` — admission control
      never silently drops a request, and shed requests never leak
      into the admitted ledger;
    - every request resolved exactly once:
      ``requests == completed + failed + timed_out + in-flight``;
    - every copy ended exactly once:
      ``copies == won + cancelled + lost + timed_out + in-flight``;
    - no double-counted service: the work the replica servers delivered
      (live pools plus retired servers) equals the work charged to
      copies (ended plus in-flight partial service), and the useful
      work never exceeds the served work;
    - retries within budget: granted retries never exceed the
      configured fraction of first-try traffic plus the burst
      allowance (checked through the live resilience state when one
      is armed).
    """
    violations: list[str] = []
    stats = frontdoor.stats
    inflight = frontdoor.inflight_copies()
    if stats["offered"] != stats["requests"] + stats["shed"]:
        violations.append(
            f"frontdoor admission conservation broken: "
            f"{stats['offered']} offered != {stats['requests']} admitted "
            f"+ {stats['shed']} shed")
    resolved = (stats["completed"] + stats["failed"] + stats["timed_out"])
    if stats["requests"] < resolved:
        violations.append(
            f"frontdoor request conservation broken: {stats['requests']} "
            f"requests < {resolved} resolved")
    ended = (stats["copies_won"] + stats["copies_cancelled"]
             + stats["copies_lost"] + stats["copies_timed_out"])
    if stats["copies"] != ended + inflight:
        violations.append(
            f"frontdoor copy conservation broken: {stats['copies']} copies "
            f"!= {ended} ended + {inflight} in flight")
    delivered = frontdoor.live_work_ms() + frontdoor.retired_work_ms
    charged = stats["work_served_ms"] + frontdoor.inflight_consumed_ms()
    tolerance = 1e-6 * max(1.0, delivered)
    if abs(delivered - charged) > tolerance:
        violations.append(
            f"frontdoor work conservation broken: servers delivered "
            f"{delivered:.6f} work-ms, copies charged {charged:.6f}")
    if stats["work_useful_ms"] > stats["work_served_ms"] + tolerance:
        violations.append(
            f"frontdoor useful work {stats['work_useful_ms']:.6f} exceeds "
            f"served work {stats['work_served_ms']:.6f}")
    res = getattr(frontdoor, "_res", None)
    if res is not None:
        violations.extend(res.audit())
        if stats["retries"] < res.budget.granted:
            violations.append(
                f"frontdoor retry ledger broken: stats count "
                f"{stats['retries']} retries < {res.budget.granted} "
                f"granted by the budget")
    return violations


def kill_plan(seed: int, hosts: int, kills: int,
              degrade: bool = True) -> FaultPlan:
    """A deterministic host-kill schedule for ``kills`` of ``hosts``.

    Kills alternate between mid-batch crashes (``op="clone"`` context:
    the spec fires while a clone request is being routed, so whichever
    host is serving it dies inside the batch, forcing the whole-batch
    rollback) and heartbeat-time crashes/partitions (``op="heartbeat"``:
    detection waits for the timeout). Specs match on operation, not on
    a host name, so every kill is guaranteed to land on a host that is
    actually alive and in use. With ``kills < hosts`` at least one host
    survives to take re-placements; ``kills == hosts`` is the
    total-loss storm — every placement after the last kill simply
    fails, conservation still holds, and the report still fingerprints.
    The ``after`` floors leave earlier rounds intact so there are
    placed clones to fail over. With ``degrade``, one survivor
    additionally goes grey during the run.
    """
    if kills > hosts:
        raise ReproError(
            f"cannot kill {kills} of only {hosts} hosts")
    rng = DeterministicRNG(seed).fork("fleet-kill-plan")
    specs: list[FaultSpec] = []
    for kill in range(kills):
        if kill % 2 == 0:
            specs.append(FaultSpec(
                site="host.crash", match={"op": "clone"},
                after=rng.randint(2, 6), count=1))
        else:
            site = "host.partition" if rng.random() < 0.5 else "host.crash"
            specs.append(FaultSpec(
                site=site, match={"op": "heartbeat"},
                after=rng.randint(4, 10), count=1))
    if degrade:
        specs.append(FaultSpec(
            site="host.degraded", match={"op": "heartbeat"},
            after=rng.randint(8, 16), count=1))
    return FaultPlan(specs=specs, name=f"fleet-kill-{seed:#x}-{kills}")


def run_fleet_chaos(seed: int = 0xC10E, hosts: int = 4, kills: int = 2,
                    parents: int = 2, batch: int = 3,
                    rounds: int = 8, policy: str = "round-robin",
                    plan: FaultPlan | None = None,
                    host_memory_mb: int = 192,
                    ) -> FleetChaosReport:
    """One fleet chaos run: storm, quiesce, audit, fingerprint.

    Hosts are deliberately small (``host_memory_mb``) so capacity
    pressure — and with it cross-host forwarding — shows up at
    clone-batch scale, not only after thousands of instances.
    """
    from repro.apps.udp_server import UdpServerApp
    from repro.toolstack.config import DomainConfig, VifConfig

    if plan is None:
        plan = kill_plan(seed, hosts, kills)
    config = FleetConfig(hosts=hosts, seed=seed, policy=policy,
                         host_memory_bytes=host_memory_mb * MIB,
                         host_dom0_bytes=(host_memory_mb // 3) * MIB)
    fleet = Fleet(config, plan=plan)
    report = FleetChaosReport(seed=seed, hosts=hosts, policy=policy,
                              plan_name=plan.name)
    rng = fleet.rng.fork("fleet-chaos-workload")

    # Boot the parent families with host-fault polling disarmed: the
    # storm targets the clone/failover paths, not initial placement.
    if fleet.faults.enabled:
        fleet.faults.active = False
    families: list[str] = []
    for i in range(parents):
        domain_config = DomainConfig(
            name=f"fam{i}", memory_mb=4,
            vifs=[VifConfig(ip=f"10.1.{i + 1}.1")], max_clones=1024)
        fleet.create_family(domain_config, app_factory=UdpServerApp)
        families.append(domain_config.name)
    if fleet.faults.enabled:
        fleet.faults.active = True

    for round_index in range(rounds):
        for name in families:
            result = fleet.clone_family(name, count=batch)
            report.clones_requested += result.requested
            report.clones_placed += len(result.placed)
            report.clones_failed += result.failed

            # Touch clone memory on its host: COW writes must behave
            # identically whether or not the fleet is mid-failover.
            for host_name, domid in result.placed:
                host = fleet.host(host_name)
                child = host.platform.hypervisor.domains.get(domid)
                if child is None or not child.memory.segments:
                    continue
                try:
                    child.memory.write_range(
                        child.memory.segments[0].pfn_start,
                        rng.randint(1, 4))
                except ReproError:
                    pass

            # Destroy one placed clone per round: interleaved teardown
            # must not confuse the failover bookkeeping either.
            if result.placed:
                host_name, domid = result.placed[
                    rng.randint(0, len(result.placed) - 1)]
                host = fleet.host(host_name)
                if (host.alive
                        and domid in host.platform.hypervisor.domains):
                    host.platform.xl.destroy(domid)
                    clones = fleet.families[name].clones.get(host_name, [])
                    if domid in clones:
                        clones.remove(domid)
        # One heartbeat round per workload round: timeout-based
        # detection interleaves deterministically with placement.
        fleet.tick()

    # Quiesce: enough extra beats to push any still-undetected failure
    # over the timeout, then heal grey hosts and tear everything down.
    fleet.run_heartbeats(fleet.config.heartbeat_timeout_beats + 1)
    for host in fleet.hosts:
        if host.state is HostState.DEGRADED:
            fleet.repair_host(host.name)
    fleet.shutdown()

    report.hosts_killed = (fleet.stats["hosts_crashed"]
                           + fleet.stats["hosts_fenced"])
    report.replacements = fleet.stats["children_replaced"]
    report.violations = audit_fleet(fleet)
    report.fleet_stats = fleet.report()["stats"]
    report.clock_ms = round(fleet.clock.now, 6)
    payload = report.to_dict()
    payload.pop("fingerprint")
    report.fingerprint = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()
    return report
