"""A KVM virtual machine: a VMM process with an in-kernel VM fd."""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any

from repro.sim.units import MIB, pages_of
from repro.xen.errors import XenInvalidError
from repro.xen.memory import GuestMemory
from repro.xen.paging import build_paging
from repro.xen.vcpu import VCPU

if TYPE_CHECKING:  # pragma: no cover
    from repro.kvm.host import KvmHost
    from repro.kvm.virtio import Virtio9p, VirtioNet


class VmState(enum.Enum):
    """Lifecycle states of a KVM VM."""

    CREATED = "created"
    RUNNING = "running"
    PAUSED = "paused"
    DEAD = "dead"


#: Resident overhead of the VMM process itself (QEMU-lite).
VMM_RESIDENT_BYTES = 12 * MIB


class KvmVm:
    """One VM: VMM process + kvm vm-fd + guest memory + virtio devices."""

    def __init__(self, host: "KvmHost", name: str, memory_bytes: int,
                 vcpus: int = 1) -> None:
        if memory_bytes < host.costs.xen_min_domain_bytes:
            # KVM has no hard 4 MB floor, but we keep guests comparable.
            raise XenInvalidError(
                f"guest below the experiment minimum: {memory_bytes}")
        self.host = host
        self.name = name
        self.pid = host.allocate_pid()
        self.memory_bytes = memory_bytes
        self.state = VmState.CREATED
        self.vcpus = [VCPU(i) for i in range(vcpus)]
        # Guest memory is anonymous VMM-process memory; page accounting
        # reuses the shared machinery (owner = the VMM pid).
        self.memory = GuestMemory(self.pid, host.frames)
        guest_pages = pages_of(memory_bytes)
        self.memory.populate(guest_pages, label="guest-ram")
        # EPT/shadow structures: same order of magnitude as PV paging.
        self.paging = build_paging(host.frames, self.pid, guest_pages,
                                   label=name)
        # The VMM process's own resident memory.
        self.vmm_extent = host.frames.alloc(
            self.pid, pages_of(VMM_RESIDENT_BYTES), label=f"vmm:{name}")
        host.clock.charge(host.costs.hyp_domain_create
                          + host.costs.hyp_vcpu_init * vcpus
                          + host.costs.page_alloc * guest_pages
                          + host.costs.pt_entry_build * guest_pages)

        self.net: "VirtioNet | None" = None
        self.p9: "Virtio9p | None" = None
        self.parent_pid: int | None = None
        self.children: list[int] = []
        self.max_clones = 0
        self.clones_created = 0
        #: Guest application object (same protocol as the Xen guests).
        self.app: Any = None
        #: tinyalloc heap over the guest RAM (pfn range).
        self.heap_base_pfn = 0
        self.heap_npages = guest_pages
        self.heap_cursor = 0
        self.console_output: list[str] = []
        self.udp_handlers: dict[int, Any] = {}
        self._api = None
        host.register(self)

    @property
    def api(self):
        """The guest API handle (same app protocol as the Xen guests)."""
        if self._api is None:
            from repro.kvm.guest_api import KvmGuestAPI

            self._api = KvmGuestAPI(self)
        return self._api

    def dispatch_packet(self, packet) -> None:
        """virtio-net RX: route a datagram to the bound UDP handler."""
        handler = self.udp_handlers.get(packet.flow.dst_port)
        if handler is not None:
            handler(packet)

    # ------------------------------------------------------------------
    @property
    def is_clone(self) -> bool:
        return self.parent_pid is not None

    def enable_cloning(self, max_clones: int) -> None:
        """Set the clone budget (0 disables cloning)."""
        if max_clones < 0:
            raise XenInvalidError(f"negative max_clones: {max_clones}")
        self.max_clones = max_clones

    def may_clone(self, count: int = 1) -> bool:
        """Does the clone budget allow ``count`` more children?"""
        return self.clones_created + count <= self.max_clones

    def boot(self) -> None:
        """Run the guest kernel up to its application."""
        self.host.clock.charge(self.host.costs.guest_boot_fixed)
        self.state = VmState.RUNNING

    def destroy(self) -> None:
        """Kill the VMM process; release memory, EPT and devices."""
        if self.net is not None:
            # The tap goes away with the VMM: unplug it from the bridge
            # and from the family bond so neither keeps a dead slave.
            self.host.detach_port(self.net.port)
        freed = self.memory.release()
        from repro.xen.paging import release_paging

        freed += release_paging(self.host.frames, self.paging)
        freed += self.host.frames.free_extent(self.vmm_extent)
        self.host.clock.charge(self.host.costs.hyp_domain_destroy
                               + self.host.costs.page_free * freed)
        if self.parent_pid is not None:
            parent = self.host.vms.get(self.parent_pid)
            if parent is not None and self.pid in parent.children:
                parent.children.remove(self.pid)
        self.state = VmState.DEAD
        self.host.unregister(self.pid)

    def machine_pages(self) -> int:
        """Host frames attributable to this VM (private + EPT + VMM)."""
        total = self.memory.private_pages()
        total += self.paging.pt_pages + self.paging.p2m_pages
        total += self.vmm_extent.live_pages
        return total
