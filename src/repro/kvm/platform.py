"""KVM platform facade, mirroring :class:`repro.platform.Platform`."""

from __future__ import annotations

from repro.devices.hostfs import HostFS
from repro.faults.injector import NULL_INJECTOR, FaultInjector
from repro.faults.plan import FaultPlan
from repro.kvm.clone import KvmCloned, KvmCloneOp
from repro.kvm.host import KvmHost
from repro.kvm.vm import KvmVm
from repro.kvm.virtio import Virtio9p, VirtioNet
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim import CostModel, DeterministicRNG, VirtualClock
from repro.sim.units import GIB


class KvmPlatform:
    """A Linux/KVM host with Nephele's cloning extensions ported."""

    def __init__(self, memory_bytes: int = 16 * GIB, cpus: int = 4,
                 costs: CostModel | None = None, seed: int = 0xC10E,
                 fault_plan: FaultPlan | None = None,
                 trace: bool = False) -> None:
        self.clock = VirtualClock()
        self.costs = costs if costs is not None else CostModel()
        self.rng = DeterministicRNG(seed)
        #: Same off-path contract as the Xen platform: NULL_INJECTOR
        #: unless a non-empty plan was configured.
        self.faults = (FaultInjector(fault_plan, clock=self.clock,
                                     rng=self.rng.fork("faults"))
                       if fault_plan is not None and fault_plan.specs
                       else NULL_INJECTOR)
        #: Same off-path contract for observability: NULL_TRACER unless
        #: tracing was requested, so benchmarks stay unaffected.
        self.tracer = (Tracer(self.clock, host="kvm") if trace
                       else NULL_TRACER)
        self.host = KvmHost(memory_bytes, cpus=cpus, clock=self.clock,
                            costs=self.costs, faults=self.faults,
                            tracer=self.tracer)
        self.hostfs = HostFS()
        self.hostfs.mkdir("/srv")
        self.kvmcloned = KvmCloned(self.host)
        self.cloneop = KvmCloneOp(self.host, self.kvmcloned)
        self.host.cloneop = self.cloneop

    @property
    def now(self) -> float:
        return self.clock.now

    # ------------------------------------------------------------------
    def create_vm(self, name: str, memory_bytes: int, vcpus: int = 1,
                  ip: str = "", p9_export: str = "",
                  max_clones: int = 0, app=None) -> KvmVm:
        """Launch a VMM process with the requested devices and boot it."""
        vm = KvmVm(self.host, name, memory_bytes, vcpus)
        if ip:
            net = VirtioNet(vm, mac=f"52:54:00:00:{vm.pid % 256:02x}:00",
                            ip=ip)
            self.host.bridge.attach(net.port)
            net.attach(self.host.bridge)
            self.clock.charge(self.costs.switch_attach)
        if p9_export:
            Virtio9p(vm, p9_export, self.hostfs)
        vm.enable_cloning(max_clones)
        vm.app = app
        if vm.net is not None:
            vm.net.rx_handler = vm.dispatch_packet
        vm.boot()
        if app is not None:
            app.main(vm.api)
        return vm

    def clone(self, pid: int, count: int = 1) -> list[int]:
        """KVM_CLONE_VM: clone a VM ``count`` times."""
        return self.cloneop.clone(pid, count=count)

    def destroy(self, pid: int) -> None:
        """Kill a VMM process and release its memory."""
        self.host.get_vm(pid).destroy()

    def free_bytes(self) -> int:
        """Host memory still free."""
        return self.host.free_bytes

    def check_invariants(self) -> None:
        """Frame-conservation check."""
        self.host.frames.check_invariants()
