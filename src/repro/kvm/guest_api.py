"""Guest API adapter for KVM VMs.

The same :class:`~repro.guest.app.GuestApp` protocol the Xen guests use
(``main``/``on_cloned``/``clone_for_child``) works on the KVM port: this
adapter exposes the API surface the apps consume — tinyalloc heap,
touch/COW, fork(), virtio-net UDP, virtio-9p files, console — backed by
the KVM objects. Porting an application between the platforms is a
config change, which is the §5.3 "supporting new guests" goal.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.guest.api import Region
from repro.net.packets import Flow, Packet
from repro.sim.units import pages_of
from repro.xen.errors import XenInvalidError, XenNoMemoryError

if TYPE_CHECKING:  # pragma: no cover
    from repro.kvm.vm import KvmVm


class KvmGuestAPI:
    """Per-VM handle passed to application code on the KVM port."""

    def __init__(self, vm: "KvmVm") -> None:
        self._vm = vm
        self.host = vm.host

    # ------------------------------------------------------------------
    @property
    def domid(self) -> int:
        """The VMM pid plays the domid role on KVM."""
        return self._vm.pid

    @property
    def now(self) -> float:
        return self.host.clock.now

    def console(self, line: str) -> None:
        """Print to the VM's console buffer."""
        self._vm.console_output.append(line)

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    def alloc(self, nbytes: int, touch: bool = True) -> Region:
        """Allocate from the guest heap (same semantics as on Xen)."""
        vm = self._vm
        npages = pages_of(nbytes)
        if vm.heap_cursor + npages > vm.heap_npages:
            raise XenNoMemoryError(
                f"VM {vm.pid} heap exhausted: need {npages} pages, "
                f"{vm.heap_npages - vm.heap_cursor} left")
        region = Region(vm.heap_cursor, npages, nbytes)
        vm.heap_cursor += npages
        if touch:
            self.touch(region)
        return region

    def touch(self, region: Region, npages: int | None = None,
              offset_pages: int = 0):
        """Write a region; fork-shared pages COW-fault."""
        count = region.npages - offset_pages if npages is None else npages
        if count <= 0 or offset_pages + count > region.npages:
            raise XenInvalidError(
                f"touch outside region: offset={offset_pages} count={count}")
        stats = self._vm.memory.write_range(
            region.pfn_start + offset_pages, count)
        costs = self.host.costs
        self.host.clock.charge(costs.guest_touch_page * count
                               + costs.cow_fault * stats.copied
                               + costs.cow_adopt * stats.adopted)
        return stats

    # ------------------------------------------------------------------
    # fork
    # ------------------------------------------------------------------
    def fork(self, count: int = 1) -> list[int]:
        """KVM_CLONE_VM; returns the children's VMM pids."""
        if self.host.cloneop is None:
            raise XenInvalidError("no KVM_CLONE_VM handler installed")
        return self.host.cloneop.clone(self._vm.pid, count=count)

    # ------------------------------------------------------------------
    # network (virtio-net UDP)
    # ------------------------------------------------------------------
    def udp_bind(self, port: int, handler: Callable[[Packet], None]) -> None:
        """Listen for UDP datagrams on ``port``."""
        self._vm.udp_handlers[port] = handler

    def udp_unbind(self, port: int) -> None:
        """Stop listening on ``port``."""
        self._vm.udp_handlers.pop(port, None)

    def udp_send(self, dst_ip: str, dst_port: int, payload: Any = None,
                 src_port: int = 9000, size: int = 64) -> None:
        """Send a UDP datagram through virtio-net."""
        net = self._vm.net
        if net is None:
            raise XenInvalidError(f"VM {self._vm.pid} has no virtio-net")
        flow = Flow(src_ip=net.ip, dst_ip=dst_ip, src_port=src_port,
                    dst_port=dst_port, proto="udp")
        net.transmit(Packet(src_mac=net.mac, dst_mac="ff:ff:ff:ff:ff:ff",
                            flow=flow, payload=payload, size=size))

    def reply(self, request: Packet, payload: Any = None,
              size: int = 64) -> None:
        """Answer a received packet (swap the flow around)."""
        net = self._vm.net
        if net is None:
            raise XenInvalidError(f"VM {self._vm.pid} has no virtio-net")
        flow = Flow(src_ip=request.flow.dst_ip, dst_ip=request.flow.src_ip,
                    src_port=request.flow.dst_port,
                    dst_port=request.flow.src_port, proto=request.flow.proto)
        net.transmit(Packet(src_mac=net.mac, dst_mac=request.src_mac,
                            flow=flow, payload=payload, size=size))

    # ------------------------------------------------------------------
    # files (virtio-9p)
    # ------------------------------------------------------------------
    def _p9(self):
        if self._vm.p9 is None:
            raise XenInvalidError(f"VM {self._vm.pid} has no virtio-9p")
        return self._vm.p9

    def open(self, path: str, mode: str = "rw", create: bool = False) -> int:
        """Open a file on the virtio-9p export; returns a fid."""
        return self._p9().open(path, mode, create)

    def write_file(self, fid: int, nbytes: int) -> int:
        """Write ``nbytes`` at the fid's offset."""
        return self._p9().write(fid, nbytes)

    def close_file(self, fid: int) -> None:
        """Close a fid."""
        self._p9().close(fid)
