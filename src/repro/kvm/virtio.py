"""Virtio devices for the KVM port.

virtio-net (tap + vhost queues) plays netfront/netback's role;
virtio-9p lives inside the VMM process, so its fid table is duplicated
*naturally* by fork() — the property that made the Xen 9pfs backend
need QMP surgery comes for free here.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.devices.hostfs import HostFS
from repro.net.packets import Packet, Port

if TYPE_CHECKING:  # pragma: no cover
    from repro.kvm.vm import KvmVm

PacketHandler = Callable[[Packet], None]

#: vhost queue backing (descriptor rings + buffers).
QUEUE_PAGES = 64


class VirtioNet:
    """virtio-net: guest queues + a host tap device."""

    _tap_ids = itertools.count()

    def __init__(self, vm: "KvmVm", mac: str, ip: str) -> None:
        self.vm = vm
        self.mac = mac
        self.ip = ip
        self.tap_name = f"tap{next(VirtioNet._tap_ids)}"
        # Queue memory is guest memory pinned for vhost; on clone these
        # pages must be copied (same reason as the Xen rings).
        self.queues = vm.memory.populate(QUEUE_PAGES, label="virtio-queues")
        self.rx_handler: PacketHandler | None = None
        self.port = Port(self.tap_name, mac, self._to_guest)
        self.switch = None
        vm.net = self

    def attach(self, switch) -> None:
        """Set the host switch used for outbound traffic."""
        self.switch = switch

    def transmit(self, packet: Packet) -> None:
        """Guest TX through vhost into the host fabric."""
        if self.switch is None:
            raise RuntimeError(f"{self.tap_name} has no switch attached")
        self.vm.host.clock.charge(self.vm.host.costs.net_tx_packet)
        self.switch.forward(packet, ingress=self.port)

    def _to_guest(self, packet: Packet) -> None:
        if self.rx_handler is not None:
            self.rx_handler(packet)

    def clone_for(self, child: "KvmVm") -> "VirtioNet":
        """Clone-side device: fresh tap (kvmcloned creates it), queue
        pages copied, same MAC and IP."""
        clone = VirtioNet(child, self.mac, self.ip)
        child.host.clock.charge(
            child.host.costs.page_copy * QUEUE_PAGES)
        return clone


@dataclass
class VirtioFid:
    fid: int
    path: str
    mode: str = "rw"
    offset: int = 0


class Virtio9p:
    """virtio-9p: the fid table lives in the VMM process."""

    def __init__(self, vm: "KvmVm", export_root: str, hostfs: HostFS) -> None:
        self.vm = vm
        self.export_root = export_root
        self.hostfs = hostfs
        self.fids: dict[int, VirtioFid] = {}
        self._next_fid = itertools.count(1)
        if not hostfs.is_dir(export_root):
            hostfs.mkdir(export_root)
        vm.p9 = self

    def _charge(self, nbytes: int = 0) -> None:
        costs = self.vm.host.costs
        self.vm.host.clock.charge(costs.p9_request_base
                                  + costs.p9_write_per_byte * nbytes)

    def open(self, path: str, mode: str = "rw", create: bool = False) -> int:
        """Open a file on the export; returns a fid."""
        self._charge()
        full = f"{self.export_root}{path}"
        if not self.hostfs.exists(full):
            if not create:
                raise FileNotFoundError(path)
            self.hostfs.create(full)
        fid = next(self._next_fid)
        self.fids[fid] = VirtioFid(fid=fid, path=full, mode=mode)
        return fid

    def write(self, fid: int, nbytes: int) -> int:
        """Write at the fid's offset; returns the new file size."""
        self._charge(nbytes)
        entry = self.fids[fid]
        entry.offset += nbytes
        return self.hostfs.write(entry.path, nbytes)

    def close(self, fid: int) -> None:
        """Clunk a fid."""
        self._charge()
        self.fids.pop(fid, None)

    def clone_for(self, child: "KvmVm") -> "Virtio9p":
        """fork() duplicates the VMM's file descriptors: the clone's fid
        table is inherited with offsets intact, no QMP needed."""
        clone = Virtio9p(child, self.export_root, self.hostfs)
        for fid, entry in self.fids.items():
            clone.fids[fid] = VirtioFid(fid=entry.fid, path=entry.path,
                                        mode=entry.mode, offset=entry.offset)
        if self.fids:
            clone._next_fid = itertools.count(max(self.fids) + 1)
        return clone
