"""KVM cloning: the ``KVM_CLONE_VM`` ioctl and the ``kvmcloned`` daemon.

First stage (host kernel): the VMM process forks, so the guest's
anonymous memory becomes COW-shared by Linux MM ("KVM already supports
page sharing between parent and child domains", paper §5.3); the ioctl
copies the vCPU state (with the same rax fixup as on Xen), rebuilds the
EPT structures and pins fresh virtio queue pages.

Second stage (userspace): ``kvmcloned`` — the xencloned analogue —
creates a tap device for the clone, enslaves it (and, the first time,
the parent's tap) to the family bond, and reconnects vhost. virtio-9p
needs nothing: fork duplicated the fid table's file descriptors.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.kvm.host import KvmHost
from repro.kvm.vm import KvmVm, VmState
from repro.xen.paging import build_paging


class KvmCloneError(ReproError):
    """KVM_CLONE_VM failure (policy violation)."""


class KvmCloned:
    """The coordination daemon (xencloned's role on KVM)."""

    def __init__(self, host: KvmHost) -> None:
        self.host = host
        self.clones_completed = 0

    def second_stage(self, parent: KvmVm, child: KvmVm) -> None:
        """Userspace re-plumbing: name, tap + bond, vhost reconnect."""
        costs = self.host.costs
        # The kvmcloned wake-up: same site as the Xen notification ring,
        # so one chaos plan storms either backend's clone-notify path.
        if self.host.faults.enabled:
            self.host.faults.fire("notify.ring", parent=parent.pid,
                                  child=child.pid)
        with self.host.tracer.span("clone.second_stage", parent=parent.pid,
                                   child=child.pid):
            child.name = f"{parent.name}-c{child.pid}"
            if parent.net is not None and child.net is not None:
                if self.host.faults.enabled:
                    self.host.faults.fire("device.attach", device="tap",
                                          parent=parent.pid, child=child.pid)
                # Fresh tap for the clone; family aggregation behind a
                # bond.
                ip = parent.net.ip
                first_time = ip not in self.host._family_switch
                bond = self.host.family_bond(ip)
                if first_time:
                    self.host.bridge.detach(parent.net.port)
                    bond.enslave(parent.net.port)
                    parent.net.attach(self.host.bridge)
                bond.enslave(child.net.port)
                child.net.attach(self.host.bridge)
                self.host.clock.charge(costs.switch_attach
                                       + costs.udev_dispatch)
            # virtio-9p: nothing to do (fork inherited the fids).
            self.clones_completed += 1


class KvmCloneOp:
    """The KVM_CLONE_VM ioctl handler."""

    def __init__(self, host: KvmHost, daemon: KvmCloned | None = None) -> None:
        self.host = host
        self.daemon = daemon if daemon is not None else KvmCloned(host)
        self.stats = {"clones": 0, "rollbacks": 0}

    def clone(self, parent_pid: int, count: int = 1) -> list[int]:
        """Clone a VM ``count`` times; returns the children's pids.

        All-or-nothing, matching the Xen CLONEOP semantics: a failure
        on child k (including an injected fault) destroys the k-1
        children already built, restores the parent's clone budget and
        run state, and re-raises — nothing leaks.
        """
        if count < 1:
            raise KvmCloneError(f"non-positive clone count: {count}")
        parent = self.host.get_vm(parent_pid)
        if not parent.may_clone(count):
            raise KvmCloneError(
                f"VM {parent_pid} may not create {count} more clones "
                f"(max {parent.max_clones}, created {parent.clones_created})")
        parent_state = parent.state
        parent.state = VmState.PAUSED
        children = []
        with self.host.tracer.span("clone.op", caller=parent_pid,
                                   count=count):
            try:
                for _ in range(count):
                    children.append(self._clone_one(parent))
                    parent.clones_created += 1
                    self.stats["clones"] += 1
            except ReproError:
                for child in reversed(children):
                    child.destroy()
                    parent.clones_created -= 1
                    self.stats["clones"] -= 1
                self.stats["rollbacks"] += 1
                parent.state = parent_state
                raise
            parent.state = parent_state
            for vcpu in parent.vcpus:
                vcpu.registers["rax"] = 0
            with self.host.tracer.span("clone.resume",
                                       count=len(children)):
                for child in children:
                    child.state = VmState.RUNNING
                    if child.app is not None:
                        rax = child.vcpus[0].registers["rax"]
                        child.app.on_cloned(child.api, rax - 1)
        return [child.pid for child in children]

    def _clone_one(self, parent: KvmVm) -> KvmVm:
        host = self.host
        costs = host.costs

        child = KvmVm.__new__(KvmVm)
        child.host = host
        child.name = ""
        child.pid = host.allocate_pid()
        child.memory_bytes = parent.memory_bytes
        child.state = VmState.PAUSED
        child.net = None
        child.p9 = None
        child.children = []
        child.max_clones = parent.max_clones
        child.clones_created = 0
        child.app = None
        child.heap_base_pfn = parent.heap_base_pfn
        child.heap_npages = parent.heap_npages
        child.heap_cursor = parent.heap_cursor
        child.console_output = []
        child.udp_handlers = dict(parent.udp_handlers)
        child._api = None

        # fork(): COW-share the parent's anonymous guest memory. Linux
        # copies the page tables of the resident set (the same
        # ON-DEMAND-FORK cost structure as the process baseline).
        from repro.xen.memory import GuestMemory

        child.memory = GuestMemory(child.pid, host.frames)
        child.paging = None
        child.vmm_extent = None
        tracer = host.tracer
        try:
            with tracer.span("clone.first_stage", parent=parent.pid,
                             child=child.pid) as span:
                shared_pages = 0
                newly_shared = 0
                for segment in parent.memory.shareable_segments():
                    extent = segment.extent
                    if not extent.shared:
                        host.frames.share_to_cow(extent)
                        newly_shared += segment.npages
                    host.frames.add_sharer(extent)
                    child.memory.adopt_segment(segment.pfn_start, extent,
                                               segment.extent_offset,
                                               segment.npages,
                                               label=segment.label)
                    shared_pages += segment.npages
                host.clock.charge(costs.fork_base
                                  + costs.fork_pte_copy * shared_pages
                                  + costs.fork_cow_mark * newly_shared)
                span.set(shared_pages=shared_pages)

                # vCPU fds are recreated, their state copied (rax fixup).
                index = parent.clones_created
                child.vcpus = [vcpu.clone_for_child(index)
                               for vcpu in parent.vcpus]
                host.clock.charge(costs.hyp_vcpu_init * len(child.vcpus))

                # EPT / shadow structures are rebuilt for the child fd.
                from repro.sim.units import pages_of

                guest_pages = pages_of(parent.memory_bytes)
                if host.faults.enabled:
                    host.faults.fire("paging.build", domid=child.pid,
                                     pages=guest_pages)
                child.paging = build_paging(host.frames, child.pid,
                                            guest_pages,
                                            label=child.name or "kvm-clone")
                host.clock.charge((costs.pt_entry_clone
                                   + costs.p2m_entry_clone) * guest_pages)

                # VMM process resident memory: fork shares it COW too,
                # but the runtime dirties most of it immediately;
                # account it private.
                child.vmm_extent = host.frames.alloc(
                    child.pid, parent.vmm_extent.count,
                    label=f"vmm:{child.pid}")

                # Devices.
                if parent.net is not None:
                    parent.net.clone_for(child)
                    if child.net is not None:
                        child.net.rx_handler = child.dispatch_packet
                if parent.p9 is not None:
                    parent.p9.clone_for(child)

                # App state.
                if parent.app is not None and hasattr(parent.app,
                                                      "clone_for_child"):
                    child.app = parent.app.clone_for_child()

                child.parent_pid = parent.pid
                parent.children.append(child.pid)
                host.register(child)
            with tracer.span("clone.handoff", parent=parent.pid,
                             child=child.pid):
                self.daemon.second_stage(parent, child)
        except ReproError:
            self._unwind_partial(parent, child)
            raise
        return child

    def _unwind_partial(self, parent: KvmVm, child: KvmVm) -> None:
        """Release everything a half-built child acquired.

        Mirrors the Xen first-stage unwind: COW sharer references,
        EPT frames, the VMM extent, the tap and the registration are
        each released only if the failed step reached them.
        """
        host = self.host
        if child.net is not None:
            host.detach_port(child.net.port)
        if child.vmm_extent is not None:
            host.frames.free_extent(child.vmm_extent)
        if child.paging is not None:
            from repro.xen.paging import release_paging

            release_paging(host.frames, child.paging)
        child.memory.release()
        if child.pid in parent.children:
            parent.children.remove(child.pid)
        host.unregister(child.pid)
        child.state = VmState.DEAD
