"""The KVM host: a Linux kernel with the kvm module.

Reuses the frame-table and guest-memory machinery from
:mod:`repro.xen`: page ownership, COW refcounting and adoption are
host-kernel MM semantics either way. The "owner" of shared pages here
is the host page cache / COW machinery rather than a dom_cow
pseudo-domain, but the accounting is identical.
"""

from __future__ import annotations

import itertools

from repro.faults.injector import NULL_INJECTOR
from repro.net.bond import BondInterface
from repro.net.bridge import Bridge
from repro.obs.tracer import NULL_TRACER
from repro.sim import CostModel, VirtualClock, pages_of
from repro.xen.errors import XenInvalidError, XenNoEntryError
from repro.xen.frames import FrameTable


class KvmHost:
    """One Linux host running KVM VMs."""

    def __init__(self, memory_bytes: int, cpus: int = 4,
                 clock: VirtualClock | None = None,
                 costs: CostModel | None = None,
                 faults=NULL_INJECTOR, tracer=NULL_TRACER) -> None:
        if cpus < 1:
            raise XenInvalidError(f"need at least one CPU: {cpus}")
        self.clock = clock if clock is not None else VirtualClock()
        self.costs = costs if costs is not None else CostModel()
        self.cpus = cpus
        #: Fault-injection hooks (repro.faults): the same registry sites
        #: the Xen backend fires, threaded through KVM_CLONE_VM so one
        #: chaos plan can storm either backend.
        self.faults = faults
        #: Tracing probes (repro.obs): the same clone-path span
        #: vocabulary the Xen backend records, so per-stage breakdown
        #: tables diff across backends.
        self.tracer = tracer
        self.frames = FrameTable(pages_of(memory_bytes))
        self.frames.faults = faults
        self.vms: dict[int, "object"] = {}
        self._pids = itertools.count(2000)
        # Host networking: a default bridge plus per-family bonds,
        # exactly like Dom0's switching fabric.
        self.bridge = Bridge("br0")
        self.bonds: dict[str, BondInterface] = {}
        self._family_switch: dict[str, BondInterface] = {}
        #: Host-side UDP listeners (port -> handler) behind an uplink.
        from repro.net.packets import Port

        self._listeners: dict[int, object] = {}
        self.host_ip = "10.0.0.1"
        self.host_port = Port("eth0", "52:54:00:00:00:01",
                              self._host_deliver)
        self.bridge.attach(self.host_port)
        #: The KVM_CLONE_VM handler (set by KvmPlatform).
        self.cloneop = None

    def allocate_pid(self) -> int:
        """Hand out the next VMM process id."""
        return next(self._pids)

    def register(self, vm) -> None:
        """Track a new VM."""
        self.vms[vm.pid] = vm

    def get_vm(self, pid: int):
        """The VM whose VMM has ``pid`` (ENOENT if absent)."""
        vm = self.vms.get(pid)
        if vm is None:
            raise XenNoEntryError(f"no VM with pid {pid}")
        return vm

    def unregister(self, pid: int) -> None:
        """Forget a (destroyed) VM."""
        self.vms.pop(pid, None)

    def listen(self, port: int, handler) -> None:
        """Bind a host-side UDP listener."""
        self._listeners[port] = handler

    def unlisten(self, port: int) -> None:
        """Unbind a host-side listener."""
        self._listeners.pop(port, None)

    def _host_deliver(self, packet) -> None:
        if packet.flow.dst_ip != self.host_ip:
            return
        handler = self._listeners.get(packet.flow.dst_port)
        if handler is not None:
            handler(packet)

    def send_to_guest(self, dst_ip: str, dst_port: int, payload=None,
                      src_port: int = 40000) -> None:
        """Send a packet towards a guest IP (bond-aware for families)."""
        from repro.net.packets import Flow, Packet

        flow = Flow(src_ip=self.host_ip, dst_ip=dst_ip, src_port=src_port,
                    dst_port=dst_port, proto="udp")
        packet = Packet(src_mac="52:54:00:00:00:01",
                        dst_mac="ff:ff:ff:ff:ff:ff", flow=flow,
                        payload=payload)
        switch = self._family_switch.get(dst_ip, self.bridge)
        switch.forward(packet, ingress=self.host_port)

    def family_bond(self, ip: str) -> BondInterface:
        """The bond aggregating the clone family that owns ``ip``."""
        bond = self._family_switch.get(ip)
        if bond is None:
            bond = BondInterface(f"bond-{len(self.bonds)}")
            self.bonds[bond.name] = bond
            self._family_switch[ip] = bond
        return bond

    def detach_port(self, port) -> None:
        """Unplug a tap from the bridge and from any family bond.

        Safe to call for ports that were never attached (both the
        bridge and the bonding driver treat unknown ports as no-ops),
        which keeps VM teardown idempotent under fault unwinding.
        """
        self.bridge.detach(port)
        for bond in self.bonds.values():
            bond.release(port)

    @property
    def free_bytes(self) -> int:
        from repro.sim.units import PAGE_SIZE

        return self.frames.free_frames * PAGE_SIZE

    def descendants(self, pid: int) -> frozenset[int]:
        """All live descendants of a VM (the family check)."""
        result: set[int] = set()
        stack = list(self.get_vm(pid).children)
        while stack:
            child = stack.pop()
            if child in result or child not in self.vms:
                continue
            result.add(child)
            stack.extend(self.vms[child].children)
        return frozenset(result)
