"""The KVM port of Nephele (paper §5.3 "Porting to new platforms" and
§9: "In future work we intend to port Nephele to KVM").

The paper's porting guidance, followed here:

- "KVM already supports page sharing between parent and child domains"
  — on KVM a VM is a VMM process, so cloning rides on Linux ``fork()``:
  guest memory becomes COW-shared by the host kernel for free.
- "it needs hypervisor interface extensions (for both clone operations
  and IDC)" — the ``KVM_CLONE_VM`` ioctl (:mod:`repro.kvm.clone`) plus
  memfd-based family shared memory.
- "and I/O cloning support (a central daemon like xencloned for
  coordination and backend drivers modifications)" — the ``kvmcloned``
  daemon re-plumbs virtio devices: fresh tap for the clone enslaved to
  the family bond, vhost queues copied, virtio-9p fids inherited
  naturally across fork (they are file descriptors).
"""

from repro.kvm.clone import KvmCloned, KvmCloneOp
from repro.kvm.host import KvmHost
from repro.kvm.platform import KvmPlatform
from repro.kvm.virtio import Virtio9p, VirtioNet
from repro.kvm.vm import KvmVm, VmState

__all__ = [
    "KvmHost",
    "KvmVm",
    "VmState",
    "VirtioNet",
    "Virtio9p",
    "KvmCloneOp",
    "KvmCloned",
    "KvmPlatform",
]
