"""The Nephele platform: one physical host, fully wired.

This is the main entry point of the library:

    from repro import Platform, DomainConfig, VifConfig

    platform = Platform.create()
    config = DomainConfig(name="udp0", memory_mb=4,
                          vifs=[VifConfig(ip="10.0.1.1")], max_clones=8)
    domain = platform.xl.create(config, app=MyApp())
    children = platform.cloneop.clone(domain.domid, count=4)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cloneop import CloneOp
from repro.core.xencloned import CloneSwitchMode, Xencloned
from repro.devices.p9 import P9BackendPolicy
from repro.faults.injector import NULL_INJECTOR, FaultInjector
from repro.faults.plan import FaultPlan
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.sim import CostModel, DeterministicRNG, Engine, VirtualClock
from repro.sim.units import GIB
from repro.toolstack.dom0 import Dom0
from repro.toolstack.xl import XL
from repro.xen.domctl import DomCtl
from repro.xen.hypervisor import Hypervisor
from repro.xenstore.store import XenstoreDaemon


@dataclass
class PlatformConfig:
    """Host configuration (defaults: the paper's testbed, §6)."""

    total_memory_bytes: int = 16 * GIB
    dom0_memory_bytes: int = 4 * GIB
    cpus: int = 4
    seed: int = 0xC10E
    #: Nephele vs pre-Nephele Xenstore cloning (Fig 4 ablation).
    use_xs_clone: bool = True
    #: Clone vif aggregation: bond (default) or OVS groups.
    switch_mode: CloneSwitchMode = CloneSwitchMode.BOND
    #: 9pfs backend cloning policy.
    p9_policy: P9BackendPolicy = P9BackendPolicy.SHARED_PROCESS
    #: oxenstored access logging (its rotation causes the Fig 4 spikes).
    xenstore_log: bool = True
    #: xl name-uniqueness check (the LightVM superlinear effect).
    xl_check_names: bool = False
    #: Clone-path tracing (repro.obs). Off by default: benchmarks run
    #: untraced; sessions and the CLI shell enable it.
    trace: bool = False
    #: Span ring capacity when tracing is enabled.
    trace_capacity: int = 16384
    #: Deterministic fault injection (repro.faults). None or an empty
    #: plan keeps every hook a no-op (the golden series stay
    #: byte-identical).
    fault_plan: FaultPlan | None = None
    #: Host identity when this platform is one member of a
    #: :class:`repro.fleet.Fleet`; stamped on every exported span and
    #: trace report for per-host attribution. Empty for a standalone
    #: host.
    host_name: str = ""

    @property
    def guest_pool_bytes(self) -> int:
        return self.total_memory_bytes - self.dom0_memory_bytes


class Platform:
    """A host running Xen + Nephele."""

    def __init__(self, config: PlatformConfig | None = None,
                 costs: CostModel | None = None) -> None:
        self.config = config if config is not None else PlatformConfig()
        self.costs = costs if costs is not None else CostModel()
        self.clock = VirtualClock()
        self.tracer = (Tracer(self.clock, capacity=self.config.trace_capacity,
                              host=self.config.host_name)
                       if self.config.trace else NULL_TRACER)
        self.engine = Engine(self.clock)
        self.engine.tracer = self.tracer
        self.rng = DeterministicRNG(self.config.seed)
        plan = self.config.fault_plan
        #: The platform's injector: NULL_INJECTOR unless a non-empty
        #: fault plan was configured. The RNG stream is forked so fault
        #: draws never shift any other component's sequence.
        self.faults = (FaultInjector(plan, clock=self.clock,
                                     rng=self.rng.fork("faults"),
                                     tracer=self.tracer)
                       if plan is not None and plan.specs else NULL_INJECTOR)

        self.hypervisor = Hypervisor(
            self.config.guest_pool_bytes, cpus=self.config.cpus,
            clock=self.clock, costs=self.costs, tracer=self.tracer,
            faults=self.faults)
        self.xenstore = XenstoreDaemon(
            self.clock, self.costs, log_enabled=self.config.xenstore_log,
            tracer=self.tracer, faults=self.faults)
        self.dom0 = Dom0(self.hypervisor, self.xenstore,
                         self.config.dom0_memory_bytes,
                         p9_policy=self.config.p9_policy)
        self.domctl = DomCtl(self.hypervisor)
        self.cloneop = CloneOp(self.hypervisor)
        self.xencloned = Xencloned(
            self.hypervisor, self.dom0, self.cloneop,
            use_xs_clone=self.config.use_xs_clone,
            switch_mode=self.config.switch_mode)
        self.xl = XL(self, check_names=self.config.xl_check_names)

    @classmethod
    def create(cls, **overrides) -> "Platform":
        """Build a platform, overriding :class:`PlatformConfig` fields."""
        costs = overrides.pop("costs", None)
        return cls(PlatformConfig(**overrides), costs=costs)

    def attach_faults(self, plan: FaultPlan) -> FaultInjector:
        """Arm (or re-arm) fault injection after construction.

        Threads a fresh injector through every component that holds
        one (hypervisor, frame table, xenstored). The fleet layer uses
        this to give every member host a live injector — even with an
        empty plan — so host-kill chaos can arm per-operation faults
        on a dying host at runtime (:meth:`FaultInjector.arm`).
        """
        injector = FaultInjector(plan, clock=self.clock,
                                 rng=self.rng.fork("faults"),
                                 tracer=self.tracer)
        self.faults = injector
        self.hypervisor.faults = injector
        self.hypervisor.frames.faults = injector
        self.xenstore.faults = injector
        return injector

    # ------------------------------------------------------------------
    # convenience metrics
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.clock.now

    def free_hypervisor_bytes(self) -> int:
        """Guest-pool memory still free (Fig 5 "Hyp free")."""
        return self.hypervisor.free_bytes

    def free_dom0_bytes(self) -> int:
        """Dom0 memory still free (Fig 5 "Dom0 free")."""
        return self.dom0.free_bytes

    def guest_count(self) -> int:
        """Number of live guest domains."""
        return len(self.hypervisor.domains)

    def check_invariants(self) -> None:
        """Frame-conservation and family-tree sanity checks."""
        self.hypervisor.frames.check_invariants()
        for domain in self.hypervisor.domains.values():
            if domain.parent_id is not None:
                parent = self.hypervisor.domains.get(domain.parent_id)
                if parent is not None and domain.domid not in parent.children:
                    raise AssertionError(
                        f"family link broken: {domain.domid} not in "
                        f"children of {domain.parent_id}")
        for child_domid in self.cloneop._pending:
            if child_domid not in self.hypervisor.domains:
                raise AssertionError(
                    f"pending second stage for dead domain {child_domid}")
        for child_domid in self.cloneop._failed:
            if child_domid in self.hypervisor.domains:
                raise AssertionError(
                    f"failure report for live domain {child_domid}")
