"""An xl-style command shell for a simulated Nephele host.

Because the host is a simulation, the shell owns the platform for the
duration of the session; commands mirror the xl verbs plus the Nephele
additions:

    create <file.cfg>          boot a guest from an xl-style config
    clone <name|domid> [n]     clone a guest n times (Nephele)
    destroy <name|domid>       tear a guest down
    save <name|domid> <tag>    save to an in-session image
    restore <tag> [newname]    restore from an image
    list                       xl list
    info <name|domid>          domain info (incl. clone family state)
    console <name|domid>       dump a guest's console output
    pause/unpause <name|domid> domctl pause control
    vcpu-pin <dom> <v> <cpus>  pin a vCPU to physical CPUs
    stats                      full platform snapshot (memory, families)
    faults [sites]             fault-injection counters / site registry
    fleet storm [hosts kills]  multi-host host-kill storm (repro.fleet)
    fleet policies             placement policy registry
    frontdoor [reqs [d]]       request-cloning dispatch smoke (repro.frontdoor)
    frontdoor storm [faults]   overload-resilience chaos smoke (shed/retry/breaker)
    trace [summary]            per-stage virtual-time breakdown table
    trace spans [kind]         recorded spans (optionally one kind)
    trace export <file.json>   write the machine-readable run report
    trace reset                drop recorded spans and metrics
    mem                        free memory (hypervisor + Dom0)
    clock                      current virtual time
    help / quit

Run interactively (``python -m repro.cli``) or scripted
(``python -m repro.cli script.xlsh`` / piped stdin).
"""

from __future__ import annotations

import shlex
import sys
from typing import Callable, TextIO

from repro.errors import ReproError
from repro.platform import Platform
from repro.sim.units import MIB
from repro.toolstack.config import parse_xl_config
from repro.toolstack.xl import SavedImage


class CliError(ReproError):
    """Command rejected (bad syntax or unknown domain/image)."""


class XlShell:
    """Command interpreter over one Platform."""

    def __init__(self, platform: Platform | None = None,
                 out: TextIO | None = None) -> None:
        # The shell's own platform is traced so `trace` has data; an
        # injected platform keeps whatever the caller configured.
        self.platform = (platform if platform is not None
                         else Platform.create(trace=True))
        self.out = out if out is not None else sys.stdout
        self.images: dict[str, SavedImage] = {}
        self._commands: dict[str, Callable[[list[str]], None]] = {
            "create": self.cmd_create,
            "clone": self.cmd_clone,
            "destroy": self.cmd_destroy,
            "save": self.cmd_save,
            "restore": self.cmd_restore,
            "list": self.cmd_list,
            "info": self.cmd_info,
            "mem": self.cmd_mem,
            "clock": self.cmd_clock,
            "console": self.cmd_console,
            "pause": self.cmd_pause,
            "unpause": self.cmd_unpause,
            "vcpu-pin": self.cmd_vcpu_pin,
            "stats": self.cmd_stats,
            "faults": self.cmd_faults,
            "fleet": self.cmd_fleet,
            "frontdoor": self.cmd_frontdoor,
            "trace": self.cmd_trace,
            "help": self.cmd_help,
        }

    # ------------------------------------------------------------------
    def _print(self, text: str = "") -> None:
        print(text, file=self.out)

    def _resolve(self, ref: str) -> int:
        """A domain by domid or by name."""
        if ref.isdigit():
            domid = int(ref)
            if domid in self.platform.hypervisor.domains:
                return domid
            raise CliError(f"no such domid: {domid}")
        for domain in self.platform.hypervisor.domains.values():
            if domain.name == ref:
                return domain.domid
        raise CliError(f"no such domain: {ref!r}")

    def execute(self, line: str) -> bool:
        """Run one command line; returns False on quit/exit."""
        words = shlex.split(line, comments=True)
        if not words:
            return True
        verb, args = words[0], words[1:]
        if verb in ("quit", "exit"):
            return False
        handler = self._commands.get(verb)
        if handler is None:
            raise CliError(f"unknown command: {verb!r} (try 'help')")
        handler(args)
        return True

    def run(self, source: TextIO, interactive: bool = False) -> int:
        """Execute commands from ``source``; returns an exit status."""
        status = 0
        while True:
            if interactive:
                self.out.write("xl> ")
                self.out.flush()
            line = source.readline()
            if not line:
                break
            try:
                if not self.execute(line):
                    break
            except CliError as error:
                self._print(f"error: {error}")
                status = 1
            except Exception as error:  # toolstack/hypervisor errors
                self._print(f"error: {type(error).__name__}: {error}")
                status = 1
        return status

    # ------------------------------------------------------------------
    # commands
    # ------------------------------------------------------------------
    def cmd_create(self, args: list[str]) -> None:
        """create <file.cfg>"""
        if len(args) != 1:
            raise CliError("usage: create <file.cfg>")
        try:
            with open(args[0]) as handle:
                text = handle.read()
        except OSError as error:
            raise CliError(f"cannot read {args[0]!r}: {error}") from error
        config = parse_xl_config(text)
        t0 = self.platform.now
        domain = self.platform.xl.create(config)
        self._print(f"created {domain.name!r} (domid {domain.domid}) "
                    f"in {self.platform.now - t0:.1f} ms")

    def cmd_clone(self, args: list[str]) -> None:
        """clone <name|domid> [count]"""
        if not 1 <= len(args) <= 2:
            raise CliError("usage: clone <name|domid> [count]")
        domid = self._resolve(args[0])
        count = int(args[1]) if len(args) == 2 else 1
        t0 = self.platform.now
        children = self.platform.xl.clone(domid, count=count)
        elapsed = self.platform.now - t0
        names = [self.platform.hypervisor.get_domain(c).name
                 for c in children]
        self._print(f"cloned {count}x in {elapsed:.1f} ms: "
                    + ", ".join(f"{n} ({c})" for n, c in zip(names, children)))

    def cmd_destroy(self, args: list[str]) -> None:
        """destroy <name|domid>"""
        if len(args) != 1:
            raise CliError("usage: destroy <name|domid>")
        domid = self._resolve(args[0])
        self.platform.xl.destroy(domid)
        self._print(f"destroyed domid {domid}")

    def cmd_save(self, args: list[str]) -> None:
        """save <name|domid> <image-tag>"""
        if len(args) != 2:
            raise CliError("usage: save <name|domid> <image-tag>")
        domid = self._resolve(args[0])
        self.images[args[1]] = self.platform.xl.save(domid)
        self._print(f"saved domid {domid} as {args[1]!r}")

    def cmd_restore(self, args: list[str]) -> None:
        """restore <image-tag> [new-name]"""
        if not 1 <= len(args) <= 2:
            raise CliError("usage: restore <image-tag> [new-name]")
        image = self.images.get(args[0])
        if image is None:
            raise CliError(f"no such image: {args[0]!r}")
        name = args[1] if len(args) == 2 else None
        domain = self.platform.xl.restore(image, name=name)
        self._print(f"restored {domain.name!r} (domid {domain.domid})")

    def cmd_list(self, args: list[str]) -> None:
        """list: like ``xl list``, plus the clone counter."""
        self._print(f"{'ID':>4}  {'Name':<24} {'Mem(MB)':>8} {'State':<8} "
                    f"{'Clones':>6}")
        for domid, name, state in self.platform.xl.list_domains():
            domain = self.platform.hypervisor.get_domain(domid)
            self._print(f"{domid:>4}  {name:<24} "
                        f"{domain.memory_bytes // MIB:>8} {state:<8} "
                        f"{domain.clones_created:>6}")

    def cmd_info(self, args: list[str]) -> None:
        """info <name|domid>"""
        if len(args) != 1:
            raise CliError("usage: info <name|domid>")
        domid = self._resolve(args[0])
        info = self.platform.domctl.getdomaininfo(0, domid)
        domain = self.platform.hypervisor.get_domain(domid)
        self._print(f"domid          {info.domid}")
        self._print(f"name           {info.name}")
        self._print(f"state          {info.state}")
        self._print(f"memory         {info.memory_bytes // MIB} MB")
        self._print(f"vcpus          {info.vcpus}")
        self._print(f"cloning        "
                    f"{'enabled' if info.cloning_enabled else 'disabled'} "
                    f"(max {info.max_clones}, created {info.clones_created})")
        self._print(f"parent         {info.parent_domid}")
        self._print(f"children       {list(info.children)}")
        self._print(f"shared pages   {domain.memory.shared_pages()}")
        self._print(f"private pages  {domain.memory.private_pages()}")

    def cmd_mem(self, args: list[str]) -> None:
        """mem: free memory on both budgets."""
        self._print(f"hypervisor free: "
                    f"{self.platform.free_hypervisor_bytes() // MIB} MB")
        self._print(f"dom0 free:       "
                    f"{self.platform.free_dom0_bytes() // MIB} MB")

    def cmd_clock(self, args: list[str]) -> None:
        """clock: current virtual time."""
        self._print(f"virtual time: {self.platform.now:.3f} ms")

    def cmd_pause(self, args: list[str]) -> None:
        """pause <name|domid>"""
        if len(args) != 1:
            raise CliError("usage: pause <name|domid>")
        domid = self._resolve(args[0])
        self.platform.domctl.pause(0, domid)
        self._print(f"paused domid {domid}")

    def cmd_unpause(self, args: list[str]) -> None:
        """unpause <name|domid>"""
        if len(args) != 1:
            raise CliError("usage: unpause <name|domid>")
        domid = self._resolve(args[0])
        self.platform.domctl.unpause(0, domid)
        self._print(f"unpaused domid {domid}")

    def cmd_vcpu_pin(self, args: list[str]) -> None:
        """vcpu-pin <name|domid> <vcpu> <cpu[,cpu..]>"""
        if len(args) != 3:
            raise CliError("usage: vcpu-pin <name|domid> <vcpu> <cpu[,cpu..]>")
        domid = self._resolve(args[0])
        try:
            vcpu = int(args[1])
            cpus = {int(c) for c in args[2].split(",")}
        except ValueError as error:
            raise CliError(f"bad vcpu/cpu list: {error}") from error
        self.platform.domctl.set_vcpu_affinity(0, domid, vcpu, cpus)
        self._print(f"pinned domid {domid} vcpu {vcpu} to {sorted(cpus)}")

    def cmd_console(self, args: list[str]) -> None:
        """console <name|domid>: dump the guest's console ring."""
        if len(args) != 1:
            raise CliError("usage: console <name|domid>")
        domid = self._resolve(args[0])
        domain = self.platform.hypervisor.get_domain(domid)
        consoles = domain.frontends.get("console", [])
        if not consoles:
            raise CliError(f"domain {domid} has no console")
        for line in consoles[0].output:
            self._print(line)

    def cmd_stats(self, args: list[str]) -> None:
        """stats: full platform snapshot."""
        from repro.metrics import snapshot

        self._print(snapshot(self.platform).format())

    def cmd_faults(self, args: list[str]) -> None:
        """faults [sites]: injection counters, or the site registry."""
        if args and args[0] == "sites":
            from repro.faults import SITES

            self._print(f"{'site':<22} {'mode':<6} {'kinds':<24} analogue")
            for name, site in sorted(SITES.items()):
                kinds = ",".join(sorted(k.value for k in site.allowed_kinds))
                self._print(f"{name:<22} {site.mode.value:<6} {kinds:<24} "
                            f"{site.analogue}")
            return
        if args:
            raise CliError("usage: faults [sites]")
        faults = self.platform.faults
        if not faults.enabled:
            self._print("fault injection disabled "
                        "(create the platform with a fault_plan)")
            return
        self._print(faults.format_report())

    def cmd_fleet(self, args: list[str]) -> None:
        """fleet storm [hosts kills] | fleet policies"""
        sub = args[0] if args else "storm"
        if sub == "policies":
            from repro.fleet import POLICIES

            for name in sorted(POLICIES):
                self._print(name)
            return
        if sub != "storm" or len(args) > 3:
            raise CliError("usage: fleet storm [hosts kills] | fleet policies")
        from repro.fleet import run_fleet_chaos

        try:
            hosts = int(args[1]) if len(args) >= 2 else 4
            kills = int(args[2]) if len(args) >= 3 else 2
        except ValueError as error:
            raise CliError(f"bad hosts/kills: {error}") from error
        # The storm runs on its own fleet (own hosts, own clock); the
        # shell's single-host platform is untouched.
        report = run_fleet_chaos(hosts=hosts, kills=kills)
        self._print(f"fleet chaos seed={report.seed:#x} "
                    f"hosts={report.hosts} policy={report.policy}")
        self._print(f"  clones: requested={report.clones_requested} "
                    f"placed={report.clones_placed} "
                    f"failed={report.clones_failed}")
        self._print(f"  hosts killed: {report.hosts_killed}  "
                    f"replacements: {report.replacements}")
        self._print(f"  fingerprint: {report.fingerprint}")
        if report.violations:
            self._print(f"  VIOLATIONS ({len(report.violations)}):")
            for violation in report.violations:
                self._print(f"    - {violation}")
        else:
            self._print("  leak audit: clean (fleet-wide)")

    def cmd_frontdoor(self, args: list[str]) -> None:
        """frontdoor [requests [clone-factor]] | frontdoor storm [faults]"""
        if args and args[0] == "storm":
            return self._frontdoor_storm(args[1:])
        if len(args) > 2:
            raise CliError("usage: frontdoor [requests [clone-factor]] "
                           "| frontdoor storm [faults]")
        try:
            requests = int(args[0]) if args else 2000
            clone_factor = int(args[1]) if len(args) >= 2 else 2
        except ValueError as error:
            raise CliError(f"bad requests/clone-factor: {error}") from error
        from repro.frontdoor import FleetSession

        # Like `fleet storm`, the smoke run owns its own fleet; the
        # shell's single-host platform is untouched.
        with FleetSession(hosts=2) as session:
            session.create_family("front", ip="10.9.0.1")
            session.clone("front", count=2 * clone_factor)
            result = session.dispatch(
                "front", "faas", requests=requests, arrival_rps=300.0,
                clone_factor=clone_factor)
        self._print(f"frontdoor d={result.clone_factor} "
                    f"requests={result.requests} "
                    f"completed={result.completed}")
        self._print(f"  latency ms: p50={result.latency_p50_ms:.3f} "
                    f"p99={result.latency_p99_ms:.3f} "
                    f"max={result.latency_max_ms:.3f}")
        self._print(f"  waste fraction: {result.waste_fraction:.4f}")
        self._print(f"  fingerprint: {result.fingerprint}")

    def _frontdoor_storm(self, args: list[str]) -> None:
        """frontdoor storm [faults]: the overload-resilience smoke."""
        if len(args) > 1:
            raise CliError("usage: frontdoor storm [faults]")
        try:
            faults = int(args[0]) if args else 30
        except ValueError as error:
            raise CliError(f"bad faults: {error}") from error
        from repro.frontdoor.resilience import (
            format_storm_report,
            run_overload_storm,
        )

        # The storm owns its own fleet (own clock, own tracer); fold
        # its shed/retry/breaker counters into the shell tracer so
        # `trace summary` surfaces them alongside the datapath counts.
        report = run_overload_storm(faults=faults)
        self._print(format_storm_report(report))
        if self.platform.tracer.enabled:
            stats = report.stats
            for key, counter in (("shed", "frontdoor.requests_shed"),
                                 ("retries", "frontdoor.retries"),
                                 ("breaker_trips",
                                  "frontdoor.breaker_trips")):
                if stats.get(key):
                    self.platform.tracer.count(counter, stats[key])

    def cmd_trace(self, args: list[str]) -> None:
        """trace [summary | spans [kind] | export <file> | reset]"""
        tracer = self.platform.tracer
        if not tracer.enabled:
            self._print("tracing disabled "
                        "(create the platform with trace=True)")
            return
        sub = args[0] if args else "summary"
        if sub == "summary":
            self._print(tracer.format_summary())
            counters = tracer.registry.to_dict()["counters"]
            if counters:
                from repro.obs.report import format_counters

                self._print("")
                self._print(format_counters(counters))
        elif sub == "spans":
            kind = args[1] if len(args) >= 2 else None
            spans = tracer.spans(kind)
            if not spans:
                self._print("(no spans recorded)")
                return
            for span in spans:
                indent = "  " * span.depth
                self._print(f"{span.start_ms:>12.4f}  {indent}{span.kind}  "
                            f"{span.duration_ms:.4f} ms")
        elif sub == "export":
            if len(args) != 2:
                raise CliError("usage: trace export <file.json>")
            import json

            report = tracer.export()
            try:
                with open(args[1], "w", encoding="utf-8") as handle:
                    json.dump(report, handle, indent=2, sort_keys=True)
                    handle.write("\n")
            except OSError as error:
                raise CliError(f"cannot write {args[1]!r}: {error}") from error
            self._print(f"wrote {len(report['spans'])} spans to {args[1]!r}")
        elif sub == "reset":
            tracer.reset()
            self._print("trace cleared")
        else:
            raise CliError(
                "usage: trace [summary | spans [kind] | export <file> | reset]")

    def cmd_help(self, args: list[str]) -> None:
        """help: the command reference."""
        self._print(__doc__.strip())


def main(argv: list[str] | None = None) -> int:
    """Entry point: interactive on a TTY, scripted otherwise."""
    argv = sys.argv[1:] if argv is None else argv
    shell = XlShell()
    try:
        if argv:
            with open(argv[0]) as source:
                return shell.run(source)
        interactive = sys.stdin.isatty()
        return shell.run(sys.stdin, interactive=interactive)
    except BrokenPipeError:
        # Output consumer went away (e.g. piped through head).
        return 0


if __name__ == "__main__":
    sys.exit(main())
