"""The session API: one instrumented front door to a Nephele host.

:class:`NepheleSession` wires a full platform (hypervisor, Xenstore,
Dom0, CLONEOP, xencloned, xl) behind a handful of verbs, with tracing
on by default::

    from repro import NepheleSession

    with NepheleSession() as session:
        web = session.boot("web0", memory_mb=8, ip="10.0.1.1",
                           max_clones=64)
        session.clone(web, count=16)
        print(session.trace_report())

Domains are addressed by name or domid interchangeably. The session is
a context manager: a clean exit runs the platform's frame-conservation
and family-tree invariant checks, so tests and examples get end-of-run
validation for free.
"""

from __future__ import annotations

import json
from typing import Any

from repro.errors import ReproError
from repro.metrics import PlatformSnapshot, snapshot
from repro.platform import Platform
from repro.toolstack.config import DomainConfig, P9Config, VifConfig
from repro.toolstack.xl import SavedImage
from repro.xen.domain import Domain


class SessionError(ReproError):
    """Session misuse (unknown domain name, closed session, ...)."""


class NepheleSession:
    """A fully wired Nephele host with tracing and lifecycle verbs.

    Keyword arguments are forwarded to
    :class:`~repro.platform.PlatformConfig` (plus ``costs``), so every
    platform knob — ``use_xs_clone``, ``switch_mode``, ``xenstore_log``,
    seeds and memory splits — is available here too. ``trace`` defaults
    to True (the raw ``Platform`` defaults to untraced).
    """

    def __init__(self, **overrides: Any) -> None:
        overrides.setdefault("trace", True)
        self.platform = Platform.create(**overrides)
        self._closed = False

    @staticmethod
    def fleet(**config_kwargs: Any) -> Any:
        """A :class:`~repro.frontdoor.session.FleetSession`: the
        multi-host session (fleet + control plane + request-cloning
        front door). Keyword arguments mirror
        :class:`~repro.fleet.fleet.FleetConfig`, plus ``plan`` for a
        host-level fault plan::

            with NepheleSession.fleet(hosts=4) as session:
                session.create_family("web", ip="10.1.1.1")
                session.dispatch("web", "faas", requests=10_000,
                                 arrival_rps=500.0, clone_factor=2)
        """
        from repro.frontdoor.session import FleetSession

        return FleetSession(**config_kwargs)

    # ------------------------------------------------------------------
    # context manager
    # ------------------------------------------------------------------
    def __enter__(self) -> "NepheleSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close(check=exc_type is None)
        return False

    def close(self, check: bool = True) -> None:
        """End the session; optionally verify platform invariants."""
        if self._closed:
            return
        self._closed = True
        if check:
            self.platform.check_invariants()

    # ------------------------------------------------------------------
    # passthrough accessors
    # ------------------------------------------------------------------
    @property
    def hypervisor(self):
        """The :class:`~repro.xen.hypervisor.Hypervisor`."""
        return self.platform.hypervisor

    @property
    def dom0(self):
        """The privileged host domain (:class:`~repro.toolstack.dom0.Dom0`)."""
        return self.platform.dom0

    @property
    def xl(self):
        """The toolstack (:class:`~repro.toolstack.xl.XL`)."""
        return self.platform.xl

    @property
    def xenstore(self):
        """The Xenstore daemon."""
        return self.platform.xenstore

    @property
    def cloneop(self):
        """The CLONEOP hypercall implementation."""
        return self.platform.cloneop

    @property
    def xencloned(self):
        """The second-stage daemon."""
        return self.platform.xencloned

    @property
    def domctl(self):
        """The domctl interface."""
        return self.platform.domctl

    @property
    def engine(self):
        """The discrete-event engine."""
        return self.platform.engine

    @property
    def rng(self):
        """The session's deterministic RNG."""
        return self.platform.rng

    @property
    def clock(self):
        """The virtual clock all simulated costs are charged to."""
        return self.platform.clock

    @property
    def costs(self):
        """The cost model driving the virtual clock."""
        return self.platform.costs

    @property
    def config(self):
        """The :class:`~repro.platform.PlatformConfig` in effect."""
        return self.platform.config

    @property
    def tracer(self):
        """The session tracer (a no-op tracer when ``trace=False``)."""
        return self.platform.tracer

    @property
    def faults(self):
        """The fault injector (the no-op NULL_INJECTOR unless the
        session was built with a non-empty ``fault_plan``)."""
        return self.platform.faults

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self.platform.now

    # ------------------------------------------------------------------
    # domain addressing
    # ------------------------------------------------------------------
    def domain(self, ref: "int | str | Domain") -> Domain:
        """Resolve a domain by domid, name, or identity."""
        if isinstance(ref, Domain):
            return ref
        if isinstance(ref, int):
            return self.hypervisor.get_domain(ref)
        for candidate in self.hypervisor.domains.values():
            if candidate.name == ref:
                return candidate
        raise SessionError(f"no domain named {ref!r}")

    def domains(self) -> list[Domain]:
        """All live domains, sorted by domid."""
        return sorted(self.hypervisor.domains.values(),
                      key=lambda d: d.domid)

    # ------------------------------------------------------------------
    # lifecycle verbs
    # ------------------------------------------------------------------
    def boot(self, name_or_config: "str | DomainConfig", *,
             memory_mb: int = 4, vcpus: int = 1, ip: str | None = None,
             vifs: list[VifConfig] | None = None,
             p9fs: list[P9Config] | None = None, max_clones: int = 0,
             app: Any = None, **config_kwargs: Any) -> Domain:
        """Boot a guest and return the running domain.

        Pass a ready :class:`DomainConfig`, or a name plus keyword
        shorthand (``ip=`` builds a single-vif config).
        """
        if isinstance(name_or_config, DomainConfig):
            config = name_or_config
        else:
            if vifs is None:
                vifs = [VifConfig(ip=ip)] if ip is not None else []
            config = DomainConfig(
                name=name_or_config, memory_mb=memory_mb, vcpus=vcpus,
                vifs=vifs, p9fs=p9fs if p9fs is not None else [],
                max_clones=max_clones, **config_kwargs)
        return self.xl.create(config, app=app)

    def clone(self, ref: "int | str | Domain", count: int = 1,
              from_guest: bool = False) -> list[int]:
        """Clone a guest ``count`` times; returns the children's domids.

        By default the clone is driven from Dom0 (``xl clone``); pass
        ``from_guest=True`` to model the guest cloning itself via the
        CLONEOP hypercall (sys_fork-style, paper §5.2.2).
        """
        domain = self.domain(ref)
        if from_guest:
            return self.cloneop.clone(domain.domid, count=count)
        return self.xl.clone(domain.domid, count=count)

    def destroy(self, ref: "int | str | Domain") -> None:
        """Tear a guest down (``xl destroy``)."""
        self.xl.destroy(self.domain(ref).domid)

    def save(self, ref: "int | str | Domain",
             destroy: bool = True) -> SavedImage:
        """``xl save``: dump the guest to an image."""
        return self.xl.save(self.domain(ref).domid, destroy=destroy)

    def restore(self, image: SavedImage,
                name: str | None = None) -> Domain:
        """``xl restore``: rebuild a guest from a save image."""
        return self.xl.restore(image, name=name)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def snapshot(self) -> PlatformSnapshot:
        """One structured snapshot of host state (memory, families...)."""
        return snapshot(self.platform)

    def trace_report(self) -> str:
        """The per-stage virtual-time breakdown table, as text."""
        tracer = self.tracer
        if not tracer.enabled:
            return "(tracing disabled: pass trace=True to NepheleSession)"
        return tracer.format_summary()

    def trace_export(self, path: str | None = None,
                     **meta: Any) -> dict[str, Any]:
        """The machine-readable run report; optionally written as JSON.

        ``meta`` entries (experiment name, parameters...) are embedded
        in the report so diffs identify their runs.
        """
        tracer = self.tracer
        if not tracer.enabled:
            raise SessionError(
                "tracing disabled: pass trace=True to NepheleSession")
        report = tracer.export(**meta)
        if path is not None:
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(report, fh, indent=2, sort_keys=True)
                fh.write("\n")
        return report
