"""xl: the Xen command-line toolstack.

Implements the instantiation path of paper §3 (hypervisor calls,
Xenstore registration, device setup and negotiation, guest boot),
save/restore, destroy, and the Nephele domctl extension that enables
cloning per domain. The optional name-uniqueness check reproduces the
superlinear instantiation growth LightVM reported; the paper disables
it for the Fig 4 baseline, and so do the benchmarks here.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError
from repro.devices.console import write_console_entries
from repro.devices.vif import write_vif_entries
from repro.devices.xenbus import XenbusState
from repro.guest.app import GuestApp
from repro.guest.unikernel import UnikernelVM, default_mac
from repro.toolstack.config import DomainConfig
from repro.xen.domain import Domain, DomainState
from repro.xenstore.client import XsHandle


class ToolstackError(ReproError):
    """xl/libxl failure (bad config, duplicate name, ...)."""


_image_ids = itertools.count(1)


@dataclass
class SavedImage:
    """An xl save image: full memory plus config."""

    config: DomainConfig
    n_pages: int
    app: GuestApp | None
    image_id: int = field(default_factory=lambda: next(_image_ids))
    #: Where the image lives on the Dom0 ramdisk.
    path: str = ""

    @property
    def size_bytes(self) -> int:
        from repro.sim.units import PAGE_SIZE

        return self.n_pages * PAGE_SIZE


class XL:
    """The xl CLI + libxl, as one object."""

    def __init__(self, platform: Any, check_names: bool = True) -> None:
        self.platform = platform
        self.hypervisor = platform.hypervisor
        self.dom0 = platform.dom0
        self.check_names = check_names
        self.handle = XsHandle(platform.xenstore, client="xl")
        #: Domains preserved after a crash (on_crash = "preserve").
        self.preserved: list[int] = []
        from repro.xen.events import VIRQ_DOM_EXC

        self.hypervisor.register_virq_handler(VIRQ_DOM_EXC, self._on_dom_exc)

    # ------------------------------------------------------------------
    # guest-exit handling (VIRQ_DOM_EXC)
    # ------------------------------------------------------------------
    def _on_dom_exc(self, virq: int) -> None:
        while self.hypervisor.pending_exits:
            domid, crashed = self.hypervisor.pending_exits.pop(0)
            domain = self.hypervisor.domains.get(domid)
            if domain is None:
                continue
            config = domain.config
            policy = "destroy"
            if config is not None:
                policy = config.on_crash if crashed else config.on_poweroff
            if policy == "preserve":
                self.preserved.append(domid)
                continue
            app = domain.guest.app if domain.guest is not None else None
            self.destroy(domid)
            if policy == "restart" and config is not None:
                self.create(config, app=app)

    @property
    def _clock(self):
        return self.hypervisor.clock

    @property
    def _costs(self):
        return self.hypervisor.costs

    # ------------------------------------------------------------------
    # create
    # ------------------------------------------------------------------
    def create(self, config: DomainConfig, app: GuestApp | None = None) -> Domain:
        """Boot a new guest; returns the running domain."""
        tracer = self.hypervisor.tracer
        with tracer.span("boot.xl_create", name=config.name):
            config.validate()
            self._clock.charge(self._costs.xl_create_fixed)
            with tracer.span("boot.name_check"):
                self._check_name(config.name)

            with tracer.span("boot.domain_create"):
                domain = self.hypervisor.create_domain(
                    config.name, config.memory_bytes, vcpus=config.vcpus)
                domain.config = config

            try:
                with tracer.span("boot.xenstore_entries"):
                    self.handle.introduce_domain(domain.domid)
                    self._write_base_entries(domain, config)

                with tracer.span("boot.guest_load"):
                    guest = UnikernelVM.from_config(self.platform, domain, app)
                    guest.load()

                with tracer.span("boot.devices"):
                    self._setup_devices(domain, config)
                if config.max_clones:
                    # Nephele domctl: enable cloning for this domain (§5.1).
                    self.platform.domctl.enable_cloning(0, domain.domid,
                                                        config.max_clones)

                with tracer.span("boot.guest_start"):
                    guest.start()
            except Exception:
                # Roll the half-created guest back (e.g. ENOMEM while
                # populating RAM): registry entries, backends, frames.
                self.destroy(domain.domid)
                raise
        tracer.count("boot.creates")
        return domain

    def _check_name(self, name: str) -> None:
        """Vanilla xl iterates all running VM names (paper §6.1)."""
        existing = [d for d in self.hypervisor.domains.values()]
        if self.check_names:
            self._clock.charge(
                self._costs.xl_name_check_per_domain * len(existing))
            if any(d.name == name for d in existing):
                raise ToolstackError(f"domain name already in use: {name!r}")

    def _write_base_entries(self, domain: Domain, config: DomainConfig) -> None:
        base = domain.store_path
        self.handle.write(f"{base}/name", config.name)
        self.handle.write(f"{base}/domid", str(domain.domid))
        self.handle.write(f"{base}/vm", f"/vm/{domain.domid}")
        self.handle.write(f"{base}/memory/target",
                          str(config.memory_bytes // 1024))
        self.handle.write(f"{base}/memory/static-max",
                          str(config.memory_bytes // 1024))
        self.handle.write(f"{base}/cpu/0/availability", "online")
        self.handle.write(f"{base}/control/platform-feature-xs_reset_watches", "1")
        self.handle.write(f"{base}/control/shutdown", "")
        self.handle.write(f"{base}/store/port", "1")
        self.handle.write(f"{base}/store/ring-ref",
                          str(domain.special["xenstore"].extent_id))

    def _setup_devices(self, domain: Domain, config: DomainConfig) -> None:
        write_console_entries(self.handle, domain.domid)
        for index, vif in enumerate(config.vifs):
            mac = vif.mac or default_mac(domain.domid, index)
            write_vif_entries(self.handle, domain.domid, index, mac, vif.ip,
                              XenbusState.INITIALISING, bridge=vif.bridge)
        for p9 in config.p9fs:
            self.dom0.p9.boot_setup(domain, p9.tag, p9.export_root,
                                    p9.mount_point)

    # ------------------------------------------------------------------
    # destroy
    # ------------------------------------------------------------------
    def destroy(self, domid: int) -> None:
        """``xl destroy``: registry entries, backends, then the domain."""
        with self.hypervisor.tracer.span("xl.destroy", domid=domid):
            domain = self.hypervisor.get_domain(domid)
            cloneop = getattr(self.platform, "cloneop", None)
            if cloneop is not None:
                cloneop.release_baseline(domid)
            # Remove registry entries and backend state.
            for path in (domain.store_path,
                         f"/local/domain/0/backend/vif/{domid}",
                         f"/local/domain/0/backend/console/{domid}",
                         f"/local/domain/0/backend/9pfs/{domid}"):
                if self.handle.daemon.exists(path):
                    self.handle.rm(path)
            self.dom0.netback.remove(domid)
            self.dom0.console_daemon.remove(domid)
            self.dom0.p9.remove(domid)
            self.handle.release_domain(domid)
            self.hypervisor.destroy_domain(domid)

    # ------------------------------------------------------------------
    # save / restore
    # ------------------------------------------------------------------
    def save(self, domid: int, destroy: bool = True) -> SavedImage:
        """xl save: dump the full memory image, then (by default) tear
        the domain down."""
        with self.hypervisor.tracer.span("xl.save", domid=domid):
            domain = self.hypervisor.get_domain(domid)
            n_pages = domain.ram_budget_pages
            self._clock.charge(self._costs.save_per_page * n_pages)
            app = domain.guest.app if domain.guest is not None else None
            config = domain.config
            if config is None:
                raise ToolstackError(f"domain {domid} has no config to save")
            if destroy:
                self.destroy(domid)
            image = SavedImage(config=config, n_pages=n_pages, app=app)
            # The image occupies space on the Dom0 ramdisk.
            hostfs = self.dom0.hostfs
            if not hostfs.is_dir("/srv/images"):
                hostfs.mkdir("/srv/images")
            image.path = f"/srv/images/{config.name}-{image.image_id}.img"
            hostfs.write(image.path, image.size_bytes, append=False)
            return image

    def discard_image(self, image: SavedImage) -> None:
        """Delete a save image from the Dom0 ramdisk."""
        if image.path and self.dom0.hostfs.exists(image.path):
            self.dom0.hostfs.unlink(image.path)

    def restore(self, image: SavedImage, name: str | None = None) -> Domain:
        """xl restore: rebuild the domain and copy every allocated page
        back from the image, then resume."""
        with self.hypervisor.tracer.span("xl.restore"):
            config = (image.config if name is None
                      else image.config.for_clone(name))
            config.validate()
            self._clock.charge(self._costs.xl_create_fixed)
            self._check_name(config.name)

            domain = self.hypervisor.create_domain(
                config.name, config.memory_bytes, vcpus=config.vcpus)
            domain.config = config
            self.handle.introduce_domain(domain.domid)
            self._write_base_entries(domain, config)

            import copy

            app = copy.copy(image.app) if image.app is not None else None
            guest = UnikernelVM.from_config(self.platform, domain, app)
            guest.load(restored=True)
            # "The entire allocated VM memory is copied back from the image
            # ... regardless of the amount of memory that is actually used".
            self._clock.charge(self._costs.restore_fixed
                               + self._costs.restore_per_page * image.n_pages)

            self._setup_devices(domain, config)
            if config.max_clones:
                self.platform.domctl.enable_cloning(0, domain.domid,
                                                    config.max_clones)

            self._clock.charge(self._costs.restore_resume_fixed)
            domain.state = DomainState.RUNNING
            guest.on_resumed_after_restore()
            return domain

    # ------------------------------------------------------------------
    # misc commands
    # ------------------------------------------------------------------
    def clone(self, domid: int, count: int = 1) -> list[int]:
        """``xl clone``: trigger cloning from Dom0 (e.g. for fuzzing);
        passes the target domid explicitly (paper §5.1)."""
        return self.platform.cloneop.clone(0, count=count, target_domid=domid)

    def list_domains(self) -> list[tuple[int, str, str]]:
        """(domid, name, state) of all domains, like ``xl list``."""
        return [(d.domid, d.name, d.state.value)
                for d in sorted(self.hypervisor.domains.values(),
                                key=lambda d: d.domid)]

    def info_free_memory(self) -> int:
        """``xl info``: hypervisor free memory in bytes."""
        return self.hypervisor.free_bytes
