"""The Xen toolstack: xl, Dom0 and domain configuration.

The toolstack resides in Dom0 and manages VM instantiation (paper §3).
Nephele leaves cloning *configuration* entirely to the toolstack: a
guest may only clone itself if its xl config sets a non-zero maximum
clone count (paper §5.1).
"""

from repro.toolstack.config import DomainConfig, P9Config, VifConfig, parse_xl_config
from repro.toolstack.dom0 import Dom0
from repro.toolstack.xl import XL, SavedImage, ToolstackError

__all__ = [
    "DomainConfig",
    "VifConfig",
    "P9Config",
    "parse_xl_config",
    "Dom0",
    "XL",
    "SavedImage",
    "ToolstackError",
]
