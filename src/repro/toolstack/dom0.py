"""Dom0: the privileged host domain.

Owns the device backends, the software switches, udev and the host
side of the network. Its memory budget is tracked separately from the
hypervisor's guest pool, mirroring the paper's 4 GB Dom0 / 12 GB
hypervisor split (§6.2), and Fig 5 reports both "Dom0 free" and
"Hyp free" series.
"""

from __future__ import annotations

from typing import Callable

from repro.devices.console import ConsoleBackendDaemon
from repro.devices.hostfs import HostFS
from repro.devices.p9 import P9BackendPolicy, P9Service
from repro.devices.udev import UdevBus, UdevEvent
from repro.devices.vif import NetBackendDriver
from repro.net.bond import BondInterface
from repro.net.bridge import Bridge
from repro.net.ovs import OvsGroup
from repro.net.packets import Flow, Packet, Port
from repro.sim.units import MIB
from repro.xen.hypervisor import Hypervisor
from repro.xenstore.client import XsHandle
from repro.xenstore.store import XenstoreDaemon

#: Dom0 kernel + base userspace (Alpine, Xen services) resident set.
BASE_SERVICES_BYTES = 600 * MIB

HOST_MAC = "00:16:3e:00:00:01"
HOST_IP = "10.0.0.1"

HostListener = Callable[[Packet], None]


class Dom0:
    """The host domain and its userspace."""

    def __init__(self, hypervisor: Hypervisor, xenstore: XenstoreDaemon,
                 memory_bytes: int,
                 p9_policy: P9BackendPolicy = P9BackendPolicy.SHARED_PROCESS) -> None:
        self.hypervisor = hypervisor
        self.xenstore = xenstore
        self.memory_bytes = memory_bytes
        clock, costs = hypervisor.clock, hypervisor.costs
        self.clock = clock
        self.costs = costs

        self.handle = XsHandle(xenstore, client="dom0")
        self.udev = UdevBus()
        self.hostfs = HostFS()
        self.hostfs.mkdir("/srv")

        # Switching fabric.
        self.bridges: dict[str, Bridge] = {
            "xenbr0": Bridge("xenbr0", tracer=hypervisor.tracer)}
        self.bonds: dict[str, BondInterface] = {}
        self.ovs_groups: dict[int, OvsGroup] = {}
        #: Guest IP -> aggregation switch for clone families.
        self._family_switch: dict[str, object] = {}

        # Host network endpoint (the "uplink" the experiments talk to).
        self._listeners: dict[int, HostListener] = {}
        self.host_port = Port("eth0", HOST_MAC, self._host_deliver,
                              accepts=self._host_accepts)
        self.bridges["xenbr0"].attach(self.host_port)

        # Backend drivers.
        self.netback = NetBackendDriver(
            self.handle, clock, costs, self.udev, hypervisor.get_domain,
            tracer=hypervisor.tracer)
        self.console_daemon = ConsoleBackendDaemon(
            self.handle, clock, costs, hostfs=self.hostfs,
            domain_resolver=hypervisor.get_domain)
        self.p9 = P9Service(self.handle, clock, costs, self.hostfs,
                            policy=p9_policy, tracer=hypervisor.tracer)

        # Default hotplug: booted (non-clone) vifs join their bridge.
        self.udev.subscribe(self._hotplug)

    # ------------------------------------------------------------------
    # udev hotplug for regular boots
    # ------------------------------------------------------------------
    def _hotplug(self, event: UdevEvent) -> None:
        if event.subsystem != "net":
            return
        if event.action == "remove":
            self._unplug(event)
            return
        if event.action != "add":
            return
        if event.properties.get("cloned"):
            return  # xencloned owns clone vifs
        key = (event.properties["domid"], event.properties["index"])
        backend = self.netback.backends.get(key)
        if backend is None:
            return
        bridge_name = self._vif_bridge(*key)
        bridge = self.bridges.get(bridge_name)
        if bridge is None:
            bridge = self.bridges[bridge_name] = Bridge(
                bridge_name, tracer=self.hypervisor.tracer)
        bridge.attach(backend.port)
        backend.attach_switch(bridge)
        self.clock.charge(self.costs.switch_attach)

    def _unplug(self, event: UdevEvent) -> None:
        """Release a dead vif's port from its clone-family aggregation
        switch (bond slave / OVS bucket). Bridge detach is handled by
        the netback driver itself; both release paths are idempotent."""
        ip = event.properties.get("ip")
        port = event.properties.get("port")
        if ip is None or port is None:
            return
        switch = self._family_switch.get(ip)
        if isinstance(switch, BondInterface):
            switch.release(port)
        elif isinstance(switch, OvsGroup):
            switch.remove_bucket(port)

    def _vif_bridge(self, domid: int, index: int) -> str:
        path = f"/local/domain/0/backend/vif/{domid}/{index}/bridge"
        try:
            return self.xenstore.read_node(path)
        except Exception:
            return "xenbr0"

    # ------------------------------------------------------------------
    # clone-family switching (bond / OVS)
    # ------------------------------------------------------------------
    def family_bond(self, ip: str) -> BondInterface:
        """The bond aggregating the clone family that owns ``ip``."""
        switch = self._family_switch.get(ip)
        if isinstance(switch, BondInterface):
            return switch
        bond = BondInterface(f"bond-{len(self.bonds)}")
        self.bonds[bond.name] = bond
        self._family_switch[ip] = bond
        return bond

    def family_ovs_group(self, ip: str) -> OvsGroup:
        """The OVS group aggregating the clone family that owns ``ip``."""
        switch = self._family_switch.get(ip)
        if isinstance(switch, OvsGroup):
            return switch
        group = OvsGroup(group_id=len(self.ovs_groups) + 1)
        self.ovs_groups[group.group_id] = group
        self._family_switch[ip] = group
        return group

    # ------------------------------------------------------------------
    # host network endpoint
    # ------------------------------------------------------------------
    def listen(self, port: int, handler: HostListener) -> None:
        """Bind a host-side UDP/TCP listener."""
        self._listeners[port] = handler
        self.host_port.touch()

    def unlisten(self, port: int) -> None:
        """Unbind a host-side listener."""
        self._listeners.pop(port, None)
        self.host_port.touch()

    def _host_deliver(self, packet: Packet) -> None:
        if packet.flow.dst_ip != HOST_IP:
            return
        handler = self._listeners.get(packet.flow.dst_port)
        if handler is not None:
            handler(packet)

    def _host_accepts(self, packet: Packet) -> bool:
        """Flood pre-filter: mirrors :meth:`_host_deliver`'s drop path."""
        return (packet.flow.dst_ip == HOST_IP
                and packet.flow.dst_port in self._listeners)

    def send_to_guest(self, dst_ip: str, dst_port: int, payload,
                      src_port: int = 40000, proto: str = "udp",
                      size: int = 64) -> None:
        """Send a packet from the host towards a guest IP.

        Clone families (aggregated behind a bond or OVS group) are
        selected by flow hash; everything else floods the bridge.
        """
        flow = Flow(src_ip=HOST_IP, dst_ip=dst_ip, src_port=src_port,
                    dst_port=dst_port, proto=proto)
        packet = Packet(src_mac=HOST_MAC, dst_mac="ff:ff:ff:ff:ff:ff",
                        flow=flow, payload=payload, size=size)
        switch = self._family_switch.get(dst_ip)
        if switch is not None:
            switch.forward(packet, ingress=self.host_port)
        else:
            self.bridges["xenbr0"].forward(packet, ingress=self.host_port)

    # ------------------------------------------------------------------
    # memory accounting (Fig 5 "Dom0 free")
    # ------------------------------------------------------------------
    @property
    def guest_count(self) -> int:
        return self.hypervisor.guest_count

    def used_bytes(self) -> int:
        """Dom0 resident memory (services + oxenstored + backends)."""
        used = BASE_SERVICES_BYTES
        used += self.xenstore.resident_bytes()
        used += self.costs.dom0_backend_bytes_per_guest * self.guest_count
        used += self.p9.dom0_resident_bytes()
        return used

    @property
    def free_bytes(self) -> int:
        return max(0, self.memory_bytes - self.used_bytes())
