"""Domain configuration (the xl.cfg of a guest).

Includes the Nephele addition: ``max_clones`` ("A guest can be cloned
only if its xl configuration file specifies a non-zero value for the
maximum number of clones", paper §5.1) and whether fresh clones resume
or stay paused (paper §5: "The child domains are either resumed or left
in paused state, depending on how they are configured").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.sim.units import MIB


class ConfigError(ReproError):
    """Malformed domain configuration."""


@dataclass
class VifConfig:
    mac: str = ""
    ip: str = ""
    bridge: str = "xenbr0"


@dataclass
class P9Config:
    tag: str = "rootfs"
    export_root: str = "/srv/share"
    mount_point: str = "/"


@dataclass
class DomainConfig:
    name: str
    memory_mb: int = 4
    vcpus: int = 1
    kernel: str = "minios"
    vifs: list[VifConfig] = field(default_factory=list)
    p9fs: list[P9Config] = field(default_factory=list)
    #: Nephele: maximum number of clones (0 disables cloning).
    max_clones: int = 0
    #: Nephele: leave fresh clones paused instead of resuming them.
    start_clones_paused: bool = False
    #: Nephele: clone the I/O devices during the second stage. The Fig 6
    #: microbenchmark disables this to keep "only the mandatory
    #: operations of the second stage" (paper §6.2); Fig 8 uses the
    #: per-device optimization of cloning only what the clones need.
    clone_io_devices: bool = True
    #: What xl does when the guest crashes: "destroy", "restart" or
    #: "preserve" (leave it for debugging).
    on_crash: str = "destroy"
    #: What xl does on a clean guest poweroff.
    on_poweroff: str = "destroy"

    @property
    def memory_bytes(self) -> int:
        return self.memory_mb * MIB

    def validate(self) -> None:
        """Reject malformed configurations (raises ConfigError)."""
        if not self.name:
            raise ConfigError("domain needs a name")
        if self.memory_mb <= 0:
            raise ConfigError(f"non-positive memory: {self.memory_mb} MB")
        if self.vcpus <= 0:
            raise ConfigError(f"non-positive vcpus: {self.vcpus}")
        if self.max_clones < 0:
            raise ConfigError(f"negative max_clones: {self.max_clones}")
        for policy in (self.on_crash, self.on_poweroff):
            if policy not in ("destroy", "restart", "preserve"):
                raise ConfigError(f"unknown exit policy: {policy!r}")

    def for_clone(self, clone_name: str) -> "DomainConfig":
        """The config a clone inherits (same resources, new name)."""
        return DomainConfig(
            name=clone_name,
            memory_mb=self.memory_mb,
            vcpus=self.vcpus,
            kernel=self.kernel,
            vifs=[VifConfig(v.mac, v.ip, v.bridge) for v in self.vifs],
            p9fs=[P9Config(p.tag, p.export_root, p.mount_point) for p in self.p9fs],
            max_clones=self.max_clones,
            start_clones_paused=self.start_clones_paused,
            clone_io_devices=self.clone_io_devices,
            on_crash=self.on_crash,
            on_poweroff=self.on_poweroff,
        )


def parse_xl_config(text: str) -> DomainConfig:
    """Parse a minimal xl.cfg-style file.

    Supported keys: ``name``, ``memory``, ``vcpus``, ``kernel``,
    ``vif`` (list of 'mac=..,ip=..,bridge=..' strings), ``p9``
    (list of 'tag=..,path=..,mount=..'), ``max_clones``,
    ``start_clones_paused``.
    """
    values: dict[str, object] = {}
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if "=" not in line:
            raise ConfigError(f"malformed line: {raw_line!r}")
        key, _, value = line.partition("=")
        values[key.strip()] = _parse_value(value.strip())

    config = DomainConfig(name=str(values.get("name", "")))
    if "memory" in values:
        config.memory_mb = int(values["memory"])  # type: ignore[arg-type]
    if "vcpus" in values:
        config.vcpus = int(values["vcpus"])  # type: ignore[arg-type]
    if "kernel" in values:
        config.kernel = str(values["kernel"])
    if "max_clones" in values:
        config.max_clones = int(values["max_clones"])  # type: ignore[arg-type]
    if "start_clones_paused" in values:
        config.start_clones_paused = bool(int(values["start_clones_paused"]))  # type: ignore[arg-type]
    for spec in values.get("vif", []) or []:
        config.vifs.append(_parse_vif(str(spec)))
    for spec in values.get("p9", []) or []:
        config.p9fs.append(_parse_p9(str(spec)))
    config.validate()
    return config


def _parse_value(value: str):
    if value.startswith("[") and value.endswith("]"):
        inner = value[1:-1].strip()
        if not inner:
            return []
        return [_strip_quotes(part.strip()) for part in inner.split("','")]
    return _strip_quotes(value)


def _strip_quotes(value: str) -> str:
    return value.strip().strip("'\"")


def _kv_pairs(spec: str) -> dict[str, str]:
    pairs: dict[str, str] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ConfigError(f"malformed device spec: {spec!r}")
        key, _, value = part.partition("=")
        pairs[key.strip()] = value.strip()
    return pairs


def _parse_vif(spec: str) -> VifConfig:
    pairs = _kv_pairs(spec)
    return VifConfig(
        mac=pairs.get("mac", ""),
        ip=pairs.get("ip", ""),
        bridge=pairs.get("bridge", "xenbr0"),
    )


def _parse_p9(spec: str) -> P9Config:
    pairs = _kv_pairs(spec)
    return P9Config(
        tag=pairs.get("tag", "rootfs"),
        export_root=pairs.get("path", "/srv/share"),
        mount_point=pairs.get("mount", "/"),
    )
