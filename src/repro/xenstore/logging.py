"""Xenstore access logging.

oxenstored logs every incoming request to an access log and rotates it
when it grows past a threshold. LightVM and the paper both observe that
these rotations show up as latency spikes in instantiation experiments
(paper §6.1: with xs_clone "the number of spikes drops to only 2").
"""

from __future__ import annotations

from repro.obs.tracer import NULL_TRACER
from repro.sim import CostModel, VirtualClock


class AccessLog:
    """Size-triggered rotating access log."""

    def __init__(self, clock: VirtualClock, costs: CostModel,
                 enabled: bool = True, tracer=None) -> None:
        self.clock = clock
        self.costs = costs
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.enabled = enabled
        self.bytes_written = 0
        self.current_bytes = 0
        self.rotations = 0
        #: Virtual times at which rotations happened (for spike analysis).
        self.rotation_times: list[float] = []

    def record_request(self) -> bool:
        """Log one request; returns True when this triggered a rotation."""
        if not self.enabled:
            return False
        size = self.costs.xs_log_bytes_per_request
        self.bytes_written += size
        self.current_bytes += size
        if self.current_bytes >= self.costs.xs_log_rotate_bytes:
            self._rotate()
            return True
        return False

    def _rotate(self) -> None:
        with self.tracer.span("xenstore.log_rotation",
                              rotation=self.rotations + 1):
            self.clock.charge(self.costs.xs_log_rotate_cost)
        self.rotations += 1
        self.rotation_times.append(self.clock.now)
        self.current_bytes = 0
        self.tracer.count("xenstore.log_rotations")
