"""The ``xs_clone`` Xenstore request (paper Fig. 2 and Fig. 3).

Clones the entries under ``parent_path`` into a new ``child_path``
directory in a single server-side request. Depending on the op it
either performs a plain in-depth copy or applies per-device heuristics
that rewrite entries referencing the owning guest ID — the only kind of
Xenstore information that has to change for most device types (paper
§5.2.1). This cuts the number of Xenstore requests per clone from one
per node to one per directory, which is what separates the two clone
series in Fig 4.
"""

from __future__ import annotations

import enum

from repro.xenstore.store import Node, XenstoreDaemon, XenstoreError


class XsCloneOp(enum.Enum):
    """Figure 3 of the paper."""

    BASIC = "xs_clone_op_basic"
    DEV_CONSOLE = "xs_clone_op_dev_console"
    DEV_VIF = "xs_clone_op_dev_vif"
    DEV_9PFS = "xs_clone_op_dev_9pfs"


#: Ops that apply the device heuristics (domid rewriting).
_DEVICE_OPS = frozenset({XsCloneOp.DEV_CONSOLE, XsCloneOp.DEV_VIF,
                         XsCloneOp.DEV_9PFS})


#: Keys whose value is a bare domid reference.
DOMID_KEYS = frozenset({"frontend-id", "backend-id", "domid"})

#: Path schema: a component is a domid iff it directly follows
#: ``domain`` (guest directories) or a device class under ``backend``
#: (backend directories are keyed by the owning guest ID).
_DEVICE_CLASSES = frozenset({"vif", "console", "9pfs", "vbd"})


def _is_domid_position(parts: list[str], index: int) -> bool:
    if index == 0:
        return False
    if parts[index - 1] == "domain":
        return True
    return (index >= 2
            and parts[index - 1] in _DEVICE_CLASSES
            and parts[index - 2] == "backend")


def _rewrite_value(key: str, value: str, parent_domid: int,
                   child_domid: int) -> str:
    """Rewrite guest-ID references inside a value.

    Heuristics (paper §5.2.1: "such keys (and values referencing them)
    must be rewritten to reference the new clone ID"):

    - known domid-reference keys (``frontend-id``, ``backend-id``, ...)
      whose value is the parent domid become the child domid;
    - path-shaped values have their *domid-position* components rewritten
      (e.g. ``backend = /local/domain/0/backend/vif/5/0`` -> ``.../9/0``),
      where a component is a domid only if it follows ``domain/`` or a
      device class under ``backend/`` - a device *index* that happens to
      equal the parent's domid is left alone.

    Other numeric values (states, ports, ring refs) are never touched.
    """
    parent = str(parent_domid)
    child = str(child_domid)
    if key in DOMID_KEYS and value == parent:
        return child
    if "/" in value:
        parts = value.split("/")
        rewritten = [
            child if part == parent and _is_domid_position(parts, i) else part
            for i, part in enumerate(parts)
        ]
        return "/".join(rewritten)
    return value


def xs_clone(daemon: XenstoreDaemon, parent_domid: int, child_domid: int,
             op: XsCloneOp, parent_path: str, child_path: str) -> int:
    """Serve one xs_clone request; returns the number of nodes created.

    Mirrors the client API of paper Fig. 2 (the transaction handle is
    implicit; the simulation applies the copy atomically). The caller
    (XsHandle) accounts the request; this function performs the
    server-side work and charges the per-node copy cost.
    """
    if not daemon.exists(parent_path):
        raise XenstoreError(f"xs_clone: ENOENT {parent_path!r}")
    if daemon.exists(child_path):
        raise XenstoreError(f"xs_clone: EEXIST {child_path!r}")
    rewrite = op in _DEVICE_OPS
    source = daemon._lookup(parent_path)
    key = parent_path.rstrip("/").rsplit("/", 1)[-1]
    created = _copy_subtree(daemon, key, source, child_path, parent_domid,
                            child_domid, rewrite)
    daemon.clock.charge(daemon.costs.xs_clone_per_node * created)
    daemon.stats["clones"] += 1
    # One notification for the new directory (backends watch the class
    # directory, not every node).
    daemon.fire_watches(child_path)
    return created


def xs_clone_txn(daemon: XenstoreDaemon, transaction, parent_domid: int,
                 child_domid: int, op: XsCloneOp, parent_path: str,
                 child_path: str) -> int:
    """Transactional xs_clone: buffer the copied nodes into an open
    transaction (the paper's Fig. 2 signature takes ``xs_transaction_t``).
    Applied atomically at commit."""
    if not daemon.exists(parent_path):
        raise XenstoreError(f"xs_clone: ENOENT {parent_path!r}")
    if daemon.exists(child_path):
        raise XenstoreError(f"xs_clone: EEXIST {child_path!r}")
    rewrite = op in _DEVICE_OPS
    manager = daemon.transactions
    created = 0
    for path, value in daemon.walk(parent_path):
        suffix = path[len(parent_path):]
        key = path.rstrip("/").rsplit("/", 1)[-1] or parent_path
        if rewrite and value:
            value = _rewrite_value(key, value, parent_domid, child_domid)
        manager.write(transaction, child_path + suffix, value)
        created += 1
    daemon.clock.charge(daemon.costs.xs_clone_per_node * created)
    daemon.stats["clones"] += 1
    return created


def _copy_subtree(daemon: XenstoreDaemon, key: str, source: Node,
                  dest_path: str, parent_domid: int, child_domid: int,
                  rewrite: bool) -> int:
    """Server-side bulk copy: build the destination subtree directly and
    graft it in one attach, instead of one root-walking ``write_node``
    per node (the dominant cost of large clone fleets). Write stats and
    transaction conflict generations are maintained per copied node
    exactly as the per-node writes did."""
    stats = daemon.stats
    record = daemon.transactions.record_external_write

    def build(key: str, source: Node, dest_path: str) -> Node:
        value = source.value
        if rewrite and value:
            value = _rewrite_value(key, value, parent_domid, child_domid)
        copy = Node(value)
        stats["writes"] += 1
        record(dest_path)
        count = 1
        children = copy.children
        for name, child in source.children.items():
            # Node names under a device directory are indices, never
            # domids (the domid sits in the cloned root, chosen by the
            # caller).
            grandchild = build(name, child, f"{dest_path}/{name}")
            children[name] = grandchild
            count += grandchild.count
        copy.count = count
        return copy

    return daemon.graft(dest_path, build(key, source, dest_path))
