"""The ``xs_clone`` Xenstore request (paper Fig. 2 and Fig. 3).

Clones the entries under ``parent_path`` into a new ``child_path``
directory in a single server-side request. Depending on the op it
either performs a plain in-depth copy or applies per-device heuristics
that rewrite entries referencing the owning guest ID — the only kind of
Xenstore information that has to change for most device types (paper
§5.2.1). This cuts the number of Xenstore requests per clone from one
per node to one per directory, which is what separates the two clone
series in Fig 4.
"""

from __future__ import annotations

import enum

from repro.xenstore.store import Node, XenstoreDaemon, XenstoreError


class XsCloneOp(enum.Enum):
    """Figure 3 of the paper."""

    BASIC = "xs_clone_op_basic"
    DEV_CONSOLE = "xs_clone_op_dev_console"
    DEV_VIF = "xs_clone_op_dev_vif"
    DEV_9PFS = "xs_clone_op_dev_9pfs"


#: Ops that apply the device heuristics (domid rewriting).
_DEVICE_OPS = frozenset({XsCloneOp.DEV_CONSOLE, XsCloneOp.DEV_VIF,
                         XsCloneOp.DEV_9PFS})

#: ``site_cache`` miss sentinel (``None`` is a valid cached value: it
#: means the scan found no rewrite sites).
_UNSCANNED = object()


#: Keys whose value is a bare domid reference.
DOMID_KEYS = frozenset({"frontend-id", "backend-id", "domid"})

#: Path schema: a component is a domid iff it directly follows
#: ``domain`` (guest directories) or a device class under ``backend``
#: (backend directories are keyed by the owning guest ID).
_DEVICE_CLASSES = frozenset({"vif", "console", "9pfs", "vbd"})


def _is_domid_position(parts: list[str], index: int) -> bool:
    if index == 0:
        return False
    if parts[index - 1] == "domain":
        return True
    return (index >= 2
            and parts[index - 1] in _DEVICE_CLASSES
            and parts[index - 2] == "backend")


def _rewrite_value(key: str, value: str, parent_domid: int,
                   child_domid: int) -> str:
    """Rewrite guest-ID references inside a value.

    Heuristics (paper §5.2.1: "such keys (and values referencing them)
    must be rewritten to reference the new clone ID"):

    - known domid-reference keys (``frontend-id``, ``backend-id``, ...)
      whose value is the parent domid become the child domid;
    - path-shaped values have their *domid-position* components rewritten
      (e.g. ``backend = /local/domain/0/backend/vif/5/0`` -> ``.../9/0``),
      where a component is a domid only if it follows ``domain/`` or a
      device class under ``backend/`` - a device *index* that happens to
      equal the parent's domid is left alone.

    Other numeric values (states, ports, ring refs) are never touched.
    """
    parent = str(parent_domid)
    child = str(child_domid)
    if key in DOMID_KEYS and value == parent:
        return child
    if "/" in value:
        parts = value.split("/")
        rewritten = [
            child if part == parent and _is_domid_position(parts, i) else part
            for i, part in enumerate(parts)
        ]
        return "/".join(rewritten)
    return value


def xs_clone(daemon: XenstoreDaemon, parent_domid: int, child_domid: int,
             op: XsCloneOp, parent_path: str, child_path: str) -> int:
    """Serve one xs_clone request; returns the number of nodes created.

    Mirrors the client API of paper Fig. 2 (the transaction handle is
    implicit; the simulation applies the copy atomically). The caller
    (XsHandle) accounts the request; this function performs the
    server-side work and charges the per-node copy cost.

    The copy is structural sharing, not a deep copy: the parent subtree
    is grafted into the child by reference and marked shared, so the
    host-side work is O(#rewrite sites), not O(subtree). For device ops
    the few values the domid heuristics actually change are found once
    per clone source (cached on the source node — shared subtrees are
    immutable, so the scan cannot go stale) and only those paths are
    materialized per child. Virtual cost and store accounting are
    unchanged: the request still charges ``xs_clone_per_node`` per
    logical node, and write stats / conflict generations advance by the
    full subtree size exactly as the per-node copy did.
    """
    if not daemon.exists(parent_path):
        raise XenstoreError(f"xs_clone: ENOENT {parent_path!r}")
    if daemon.exists(child_path):
        raise XenstoreError(f"xs_clone: EEXIST {child_path!r}")
    # Injection after validation, before any mutation: a failing
    # xs_clone request leaves the store untouched.
    if daemon.faults.enabled:
        daemon.faults.fire("xenstore.xs_clone", parent=parent_domid,
                           child=child_domid, path=parent_path)
    source = daemon._lookup(parent_path)
    created = source.count
    key = parent_path.rstrip("/").rsplit("/", 1)[-1]
    graft_root = source
    if op in _DEVICE_OPS:
        cache = source.site_cache
        if cache is None:
            cache = source.site_cache = {}
        cache_key = (parent_domid, key)
        sites = cache.get(cache_key, _UNSCANNED)
        if sites is _UNSCANNED:
            sites = cache[cache_key] = _scan_sites(key, source, parent_domid)
        if sites is not None:
            graft_root = _materialize(source, key, sites, parent_domid,
                                      child_domid)
    parent_norm = parent_path.rstrip("/")
    child_norm = child_path.rstrip("/")
    if not parent_norm or child_norm.startswith(f"{parent_norm}/"):
        # Destination nested inside the source (or the source is the
        # root): sharing would create a cycle, so snapshot eagerly the
        # way the pre-sharing implementation did.
        graft_root = _copy_tree(graft_root)
    elif graft_root is source:
        source.shared = True
    daemon.graft(child_path, graft_root)
    daemon.stats["writes"] += created
    daemon.transactions.record_subtree_write(child_path, created)
    daemon.clock.charge(daemon.costs.xs_clone_per_node * created)
    daemon.stats["clones"] += 1
    # One notification for the new directory (backends watch the class
    # directory, not every node).
    daemon.fire_watches(child_path)
    return created


def xs_clone_txn(daemon: XenstoreDaemon, transaction, parent_domid: int,
                 child_domid: int, op: XsCloneOp, parent_path: str,
                 child_path: str) -> int:
    """Transactional xs_clone: buffer the copied nodes into an open
    transaction (the paper's Fig. 2 signature takes ``xs_transaction_t``).
    Applied atomically at commit."""
    if not daemon.exists(parent_path):
        raise XenstoreError(f"xs_clone: ENOENT {parent_path!r}")
    if daemon.exists(child_path):
        raise XenstoreError(f"xs_clone: EEXIST {child_path!r}")
    if daemon.faults.enabled:
        daemon.faults.fire("xenstore.xs_clone", parent=parent_domid,
                           child=child_domid, path=parent_path)
    rewrite = op in _DEVICE_OPS
    manager = daemon.transactions
    created = 0
    for path, value in daemon.walk(parent_path):
        suffix = path[len(parent_path):]
        key = path.rstrip("/").rsplit("/", 1)[-1] or parent_path
        if rewrite and value:
            value = _rewrite_value(key, value, parent_domid, child_domid)
        manager.write(transaction, child_path + suffix, value)
        created += 1
    daemon.clock.charge(daemon.costs.xs_clone_per_node * created)
    daemon.stats["clones"] += 1
    return created


def _needs_rewrite(key: str, value: str, parent: str) -> bool:
    """Would ``_rewrite_value`` change this value for *any* child domid?

    The rewrite condition only compares against the parent domid, so
    the set of rewrite sites in a subtree is a property of the (source,
    parent) pair and can be cached across every clone taken from it.
    """
    if key in DOMID_KEYS and value == parent:
        return True
    if "/" in value:
        parts = value.split("/")
        for i, part in enumerate(parts):
            if part == parent and _is_domid_position(parts, i):
                return True
    return False


def _scan_sites(key: str, source: Node, parent_domid: int):
    """Site tree of ``source``: ``(is_site, {name: subtree})`` nesting
    that covers every node whose value the device heuristics rewrite.

    Returned pre-nested (rather than as flat relative paths) so
    :func:`_materialize` — which runs once per *clone*, while this scan
    runs once per clone *source* — never regroups paths per call. An
    empty tree is returned as ``None`` branches all the way down;
    callers treat a root of ``(False, {})`` as "no sites".
    """
    parent = str(parent_domid)
    value = source.value
    is_site = bool(value) and _needs_rewrite(key, value, parent)
    branches = {}
    for name, child in source.children.items():
        # Node names under a device directory are indices, never
        # domids (the domid sits in the cloned root, chosen by the
        # caller).
        sub = _scan_sites(name, child, parent_domid)
        if sub is not None:
            branches[name] = sub
    if not is_site and not branches:
        return None
    return (is_site, branches)


def _materialize(node: Node, key: str, site_tree, parent_domid: int,
                 child_domid: int) -> Node:
    """Copy ``node`` along the cached rewrite-site tree only.

    Site nodes get their value rewritten for this child; every subtree
    hanging off the copied spine is aliased by reference and marked
    shared (it is now reachable from both the source and the copy).
    """
    is_site, branches = site_tree
    value = node.value
    if is_site and value:
        value = _rewrite_value(key, value, parent_domid, child_domid)
    copy = Node(value)
    copy.count = node.count
    children = dict(node.children)
    copy.children = children
    for name, child in children.items():
        sub = branches.get(name)
        if sub is not None:
            children[name] = _materialize(child, name, sub,
                                          parent_domid, child_domid)
        else:
            child.shared = True
    return copy


def _copy_tree(node: Node) -> Node:
    """Eager private deep copy (the nested-destination slow path)."""
    copy = Node(node.value)
    copy.count = node.count
    copy.children = {name: _copy_tree(child)
                     for name, child in node.children.items()}
    return copy
