"""Simulated Xenstore.

Xenstore is Xen's device registry: a hierarchical key-value store with
watches, used by the toolstack and the split drivers to negotiate
devices (paper §3). Nephele extends it with the ``xs_clone`` request
(paper §5.2.1, figures 2 and 3), which clones a whole device directory
server-side instead of issuing one write per entry.
"""

from repro.xenstore.client import XsHandle
from repro.xenstore.clone import XsCloneOp
from repro.xenstore.logging import AccessLog
from repro.xenstore.store import XenstoreDaemon, XenstoreError

__all__ = [
    "XenstoreDaemon",
    "XenstoreError",
    "XsHandle",
    "XsCloneOp",
    "AccessLog",
]
