"""Xenstore transactions.

The xs_clone API of paper Fig. 2 takes an ``xs_transaction_t``; this
module provides them. Transactions buffer writes/removes and validate,
at commit time, that no node read or written inside the transaction was
modified concurrently (oxenstored's optimistic concurrency: conflicting
commits fail with EAGAIN and the client retries).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.xenstore.store import XenstoreDaemon, XenstoreError


class TransactionConflict(XenstoreError):
    """EAGAIN: the transaction raced with another commit."""


@dataclass
class _Op:
    kind: str  # "write" | "rm"
    path: str
    value: str = ""


@dataclass
class Transaction:
    tid: int
    #: Store generation when the transaction started.
    start_generation: int
    ops: list[_Op] = field(default_factory=list)
    #: Paths read or written (the conflict footprint).
    footprint: set[str] = field(default_factory=set)
    #: Local view of pending writes, for read-your-writes.
    pending: dict[str, str | None] = field(default_factory=dict)
    closed: bool = False


class TransactionManager:
    """Optimistic transactions over one Xenstore daemon."""

    def __init__(self, daemon: XenstoreDaemon) -> None:
        self.daemon = daemon
        self._tids = itertools.count(1)
        self._open: dict[int, Transaction] = {}
        #: Bumped on every committed mutation; per-path generations are
        #: tracked for precise conflict detection.
        self.generation = 0
        self._path_generation: dict[str, int] = {}
        #: Subtree-granularity generations: ``xs_clone`` records one
        #: entry for the grafted root instead of one per copied node;
        #: commits check each footprint path's prefixes against it.
        self._prefix_generation: dict[str, int] = {}
        self.stats = {"commits": 0, "aborts": 0, "conflicts": 0}

    # ------------------------------------------------------------------
    def start(self) -> Transaction:
        """Open a transaction pinned to the current store generation."""
        transaction = Transaction(tid=next(self._tids),
                                  start_generation=self.generation)
        self._open[transaction.tid] = transaction
        return transaction

    def get(self, tid: int) -> Transaction:
        """The open transaction ``tid`` (error if closed/unknown)."""
        transaction = self._open.get(tid)
        if transaction is None or transaction.closed:
            raise XenstoreError(f"no such transaction: {tid}")
        return transaction

    # ------------------------------------------------------------------
    # operations inside a transaction
    # ------------------------------------------------------------------
    def write(self, transaction: Transaction, path: str, value: str) -> None:
        """Buffer a write; applied at commit."""
        transaction.ops.append(_Op("write", path, value))
        transaction.footprint.add(path)
        transaction.pending[path] = value

    def remove(self, transaction: Transaction, path: str) -> None:
        """Buffer a removal; applied at commit."""
        transaction.ops.append(_Op("rm", path))
        transaction.footprint.add(path)
        transaction.pending[path] = None

    def read(self, transaction: Transaction, path: str) -> str:
        """Read-your-writes view over the committed store."""
        transaction.footprint.add(path)
        if path in transaction.pending:
            value = transaction.pending[path]
            if value is None:
                raise XenstoreError(f"ENOENT: {path!r} (removed in txn)")
            return value
        return self.daemon.read_node(path)

    # ------------------------------------------------------------------
    # commit / abort
    # ------------------------------------------------------------------
    def commit(self, transaction: Transaction) -> None:
        """Apply atomically; raises :class:`TransactionConflict` if any
        footprint path changed since the transaction started."""
        if transaction.closed:
            raise XenstoreError(f"transaction {transaction.tid} is closed")
        try:
            # An injected conflict follows the exact EAGAIN contract: it
            # counts as a conflict and closes the transaction, so the
            # client must restart it (which is what run_transaction's
            # bounded retry does).
            self.daemon.faults.fire("xenstore.txn_commit",
                                    tid=transaction.tid)
        except TransactionConflict:
            self.stats["conflicts"] += 1
            self._close(transaction)
            raise
        start = transaction.start_generation
        prefix_generation = self._prefix_generation
        for path in transaction.footprint:
            if self._path_generation.get(path, 0) > start:
                self.stats["conflicts"] += 1
                self._close(transaction)
                raise TransactionConflict(
                    f"EAGAIN: {path!r} changed during transaction "
                    f"{transaction.tid}")
            if prefix_generation:
                # A bulk subtree write conflicts with any footprint
                # path at or under the written root: walk the O(depth)
                # prefixes of the footprint path.
                prefix = path.rstrip("/") or "/"
                while True:
                    if prefix_generation.get(prefix, 0) > start:
                        self.stats["conflicts"] += 1
                        self._close(transaction)
                        raise TransactionConflict(
                            f"EAGAIN: {path!r} changed during transaction "
                            f"{transaction.tid}")
                    if prefix == "/":
                        break
                    cut = prefix.rfind("/")
                    prefix = prefix[:cut] or "/"
        for op in transaction.ops:
            self.generation += 1
            self._path_generation[op.path] = self.generation
            if op.kind == "write":
                self.daemon.write_node(op.path, op.value)
            else:
                if self.daemon.exists(op.path):
                    self.daemon.remove_node(op.path)
        self.stats["commits"] += 1
        self._close(transaction)

    def record_external_write(self, path: str) -> None:
        """Mark a non-transactional mutation (for conflict detection)."""
        self.generation += 1
        self._path_generation[path] = self.generation

    def record_subtree_write(self, path: str, nodes: int) -> None:
        """Mark a bulk subtree graft of ``nodes`` nodes rooted at
        ``path`` — one O(1) record equivalent to ``nodes`` individual
        :meth:`record_external_write` calls (the generation advances by
        the same amount, and any transaction whose footprint touches
        the subtree conflicts via the prefix check in :meth:`commit`)."""
        self.generation += nodes
        self._prefix_generation[path.rstrip("/") or "/"] = self.generation

    def abort(self, transaction: Transaction) -> None:
        """Discard the transaction's buffered operations."""
        self.stats["aborts"] += 1
        self._close(transaction)

    def _close(self, transaction: Transaction) -> None:
        transaction.closed = True
        self._open.pop(transaction.tid, None)

    @property
    def open_count(self) -> int:
        return len(self._open)
