"""Xenstore client handle (libxenstore's ``xs_handle``).

Every method is one request to the daemon and is charged accordingly;
this is what makes deep-copy cloning expensive and ``xs_clone`` cheap.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.xenstore.clone import XsCloneOp, xs_clone
from repro.xenstore.store import WatchCallback, XenstoreDaemon, XenstoreError


class XsHandle:
    """A client connection to the Xenstore daemon."""

    def __init__(self, daemon: XenstoreDaemon, client: str = "dom0") -> None:
        self.daemon = daemon
        self.client = client
        self.requests_issued = 0

    def _request(self, extra: float = 0.0) -> None:
        self.requests_issued += 1
        self.daemon.charge_request(extra)

    # ------------------------------------------------------------------
    # plain operations
    # ------------------------------------------------------------------
    def write(self, path: str, value: str) -> None:
        """XS_WRITE."""
        self._request()
        self.daemon.write_node(path, value)

    def read(self, path: str) -> str:
        """XS_READ (raises on ENOENT)."""
        self._request()
        return self.daemon.read_node(path)

    def read_maybe(self, path: str) -> str | None:
        """XS_READ returning None instead of raising."""
        self._request()
        try:
            return self.daemon.read_node(path)
        except Exception:
            return None

    def mkdir(self, path: str) -> None:
        """XS_MKDIR."""
        self._request()
        self.daemon.write_node(path, "")

    def rm(self, path: str) -> int:
        """XS_RM: remove a subtree; returns nodes removed."""
        self._request()
        return self.daemon.remove_node(path)

    def directory(self, path: str) -> list[str]:
        """XS_DIRECTORY."""
        self._request()
        return self.daemon.directory(path)

    def exists(self, path: str) -> bool:
        """Existence probe (one request)."""
        self._request()
        return self.daemon.exists(path)

    def watch(self, path: str, token: str, callback: WatchCallback) -> int:
        """XS_WATCH; returns the watch id."""
        self._request()
        return self.daemon.add_watch(path, token, callback)

    def unwatch(self, watch_id: int) -> None:
        """XS_UNWATCH."""
        self._request()
        self.daemon.remove_watch(watch_id)

    # ------------------------------------------------------------------
    # transactions (the xs_transaction_t of paper Fig. 2)
    # ------------------------------------------------------------------
    def transaction_start(self) -> int:
        """XS_TRANSACTION_START; returns the transaction id."""
        self._request()
        return self.daemon.transactions.start().tid

    def t_write(self, tid: int, path: str, value: str) -> None:
        """Buffered write inside transaction ``tid``."""
        self._request()
        manager = self.daemon.transactions
        manager.write(manager.get(tid), path, value)

    def t_read(self, tid: int, path: str) -> str:
        """Read inside ``tid`` (sees the transaction's own writes)."""
        self._request()
        manager = self.daemon.transactions
        return manager.read(manager.get(tid), path)

    def t_rm(self, tid: int, path: str) -> None:
        """Buffered removal inside transaction ``tid``."""
        self._request()
        manager = self.daemon.transactions
        manager.remove(manager.get(tid), path)

    def transaction_end(self, tid: int, commit: bool = True) -> None:
        """Commit (or abort). Raises TransactionConflict on EAGAIN."""
        self._request()
        manager = self.daemon.transactions
        transaction = manager.get(tid)
        if commit:
            manager.commit(transaction)
        else:
            manager.abort(transaction)

    def run_transaction(self, build: Callable[["XsHandle", int], Any],
                        max_attempts: int = 8) -> Any:
        """Run ``build(handle, tid)`` inside a transaction, retrying on
        EAGAIN with bounded exponential (virtual-time) backoff.

        This is how real libxenstore clients handle oxenstored's
        optimistic concurrency: a conflicting commit closes the
        transaction, the client backs off and replays its operations
        against a fresh one. Returns ``build``'s result; raises the
        final :class:`TransactionConflict` once ``max_attempts`` commits
        all conflicted.
        """
        from repro.xenstore.transactions import TransactionConflict

        faults = self.daemon.faults
        for attempt in range(max_attempts):
            if attempt:
                # Deterministic exponential backoff, charged to the
                # virtual clock (failure paths only).
                self.daemon.clock.charge(
                    self.daemon.costs.xs_txn_retry_backoff
                    * (2 ** (attempt - 1)))
            tid = self.transaction_start()
            try:
                result = build(self, tid)
                self.transaction_end(tid, commit=True)
            except TransactionConflict:
                if attempt + 1 >= max_attempts:
                    faults.aborted("xenstore.txn_commit")
                    raise
                continue
            except XenstoreError:
                # Non-conflict failure: abort the open transaction (the
                # commit conflict path closes it itself) and propagate.
                manager = self.daemon.transactions
                if tid in manager._open:
                    self.transaction_end(tid, commit=False)
                raise
            if attempt:
                faults.recovered("xenstore.txn_commit")
            return result
        raise AssertionError("unreachable")  # pragma: no cover

    # ------------------------------------------------------------------
    # domain management
    # ------------------------------------------------------------------
    def introduce_domain(self, domid: int, parent_domid: int | None = None) -> None:
        """XS_INTRODUCE, with Nephele's parent-ID augmentation."""
        self._request()
        self.daemon.introduce_domain(domid, parent_domid)

    def release_domain(self, domid: int) -> None:
        """XS_RELEASE."""
        self._request()
        self.daemon.release_domain(domid)

    # ------------------------------------------------------------------
    # Nephele extension
    # ------------------------------------------------------------------
    def clone(self, parent_domid: int, child_domid: int, op: XsCloneOp,
              parent_path: str, child_path: str, tid: int = 0) -> int:
        """The xs_clone request of paper Fig. 2; returns nodes created.

        ``tid`` is the transaction (0 = XBT_NULL, immediate apply).
        """
        with self.daemon.tracer.span("xenstore.xs_clone", op=op.value):
            self._request(extra=self.daemon.costs.xs_clone_base)
            if tid:
                from repro.xenstore.clone import xs_clone_txn

                manager = self.daemon.transactions
                return xs_clone_txn(self.daemon, manager.get(tid),
                                    parent_domid, child_domid, op,
                                    parent_path, child_path)
            return xs_clone(self.daemon, parent_domid, child_domid, op,
                            parent_path, child_path)

    def deep_copy(self, parent_domid: int, child_domid: int,
                  parent_path: str, child_path: str,
                  rewrite: bool = True) -> int:
        """Clone a directory the pre-Nephele way: one read of the parent
        subtree, then one write request per node (paper §6.1, the
        "clone + XS deep copy" series). Returns nodes written."""
        with self.daemon.tracer.span("xenstore.deep_copy") as span:
            self._request()  # the read of the parent subtree
            entries = self.daemon.walk(parent_path)
            # xencloned-side rewriting work, per node.
            self.daemon.clock.charge(
                self.daemon.costs.xencloned_deep_copy_per_node * len(entries))
            from repro.xenstore.clone import _rewrite_value

            written = 0
            for path, value in entries:
                suffix = path[len(parent_path):]
                if rewrite and value:
                    key = path.rstrip("/").rsplit("/", 1)[-1]
                    value = _rewrite_value(key, value, parent_domid,
                                           child_domid)
                self._request()
                self.daemon.write_node(child_path + suffix, value,
                                       fire=(written == 0))
                written += 1
            self.daemon.fire_watches(child_path)
            span.set(nodes=written)
        return written
