"""The Xenstore daemon: tree, watches, transactions, request accounting.

Request latency in oxenstored grows with the size of the store (its
working set and log handling scale with node count); the simulation
charges ``xs_request_base + xs_request_per_node * node_count`` per
request, which is what makes boot times in Fig 4 grow from 160 ms to
300 ms across 1000 instances.
"""

from __future__ import annotations

import itertools
from typing import Callable

from repro.errors import ReproError
from repro.faults.injector import NULL_INJECTOR
from repro.obs.tracer import NULL_TRACER
from repro.sim import CostModel, VirtualClock
from repro.xenstore.logging import AccessLog

WatchCallback = Callable[[str, str], None]  # (fired path, token)

#: Upper bound on the read-path memo in :meth:`XenstoreDaemon._lookup`;
#: reached, the memo is dropped wholesale (paths are cheap to re-walk).
_PATH_CACHE_MAX = 8192


class XenstoreError(ReproError):
    """Xenstore request failure (ENOENT and friends)."""


class Node:
    """One node of the store tree.

    ``count`` caches the size of the subtree rooted here (this node
    included). It is maintained incrementally by every tree mutation,
    so ``subtree_nodes`` and the per-request store-size costing never
    re-count trees.

    Nodes are copy-on-write: ``xs_clone`` grafts a parent subtree into
    the child by *reference* and marks it ``shared``. The invariant is
    that every path from the root to a multiply-referenced node passes
    through a node with ``shared`` set (usually the grafted subtree
    root); a shared node is immutable. Mutating walks un-share each
    shared node they descend through — copy the node, alias its child
    dict entries, and mark those children shared — so only the touched
    path is ever duplicated.

    ``site_cache`` memoizes, per clone-source root, where the device
    domid-rewrite heuristics actually change a value (keyed by parent
    domid); safe to cache precisely because shared subtrees never
    mutate in place. See :mod:`repro.xenstore.clone`.
    """

    __slots__ = ("value", "children", "count", "shared", "site_cache")

    def __init__(self, value: str = "") -> None:
        self.value = value
        self.children: dict[str, Node] = {}
        self.count = 1
        self.shared = False
        self.site_cache = None


def _split(path: str) -> list[str]:
    # Deliberately uncached: store paths are dominated by per-domain
    # one-shot strings (/local/domain/<domid>/...), so an lru_cache here
    # never amortizes — it just adds a hash probe + unbounded growth.
    if path[:1] != "/":
        raise XenstoreError(f"path must be absolute: {path!r}")
    return [part for part in path.split("/") if part]


class Watch:
    """A registered path-prefix watch."""

    __slots__ = ("path", "token", "callback")

    def __init__(self, path: str, token: str, callback: WatchCallback) -> None:
        self.path = path.rstrip("/") or "/"
        self.token = token
        self.callback = callback


class XenstoreDaemon:
    """oxenstored: the store, its watches and its access log."""

    def __init__(self, clock: VirtualClock, costs: CostModel,
                 log_enabled: bool = True, tracer=None,
                 faults=None) -> None:
        self.clock = clock
        self.costs = costs
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Fault-injection hooks (repro.faults): xs_clone and the
        #: transaction manager fire through this. No-op by default.
        self.faults = faults if faults is not None else NULL_INJECTOR
        self.root = Node()
        self.node_count = 0
        self.access_log = AccessLog(clock, costs, enabled=log_enabled,
                                    tracer=self.tracer)
        #: path -> resolved Node memo for the non-creating read path;
        #: see :meth:`_lookup` for the (narrow) invalidation contract.
        self._path_cache: dict[str, Node] = {}
        self._watches: dict[int, Watch] = {}
        #: Watch path -> {watch id -> watch}: firing a path consults its
        #: O(depth) prefixes instead of scanning every watch.
        self._watch_index: dict[str, dict[int, Watch]] = {}
        #: Lazily rebuilt [(path, "path/", bucket)] scan list used when
        #: the index is small enough that scanning beats prefix walking.
        self._watch_scan: list[tuple[str, str, dict[int, Watch]]] | None = None
        self._watch_ids = itertools.count(1)
        from repro.xenstore.transactions import TransactionManager

        self.transactions = TransactionManager(self)
        #: Domains introduced to the daemon (domid -> parent domid or None).
        self.introduced: dict[int, int | None] = {}
        self.stats = {"requests": 0, "writes": 0, "reads": 0, "clones": 0}

    # ------------------------------------------------------------------
    # request accounting
    # ------------------------------------------------------------------
    def charge_request(self, extra: float = 0.0) -> None:
        """Account one client request (cost + access log).

        This is the single hottest accounting call in the instantiation
        experiments, so it advances the clock directly (the summed cost
        is non-negative by construction: all cost constants are positive
        and callers only pass non-negative ``extra``) and skips the
        tracer/log calls when those sinks are disabled.
        """
        self.stats["requests"] += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.count("xenstore.requests")
        costs = self.costs
        self.clock._now += (costs.xs_request_base
                            + costs.xs_request_per_node * self.node_count
                            + extra)
        log = self.access_log
        if log.enabled:
            log.record_request()

    def resident_bytes(self) -> int:
        """Approximate oxenstored resident memory (Dom0 accounting)."""
        return self.node_count * self.costs.xs_node_resident_bytes

    # ------------------------------------------------------------------
    # tree primitives (no request accounting; used server-side)
    # ------------------------------------------------------------------
    def _lookup(self, path: str, create: bool = False) -> Node:
        if create:
            return self._lookup_create(path)
        cache = self._path_cache
        entry = cache.get(path)
        if entry is not None:
            return entry[0]
        node = self.root
        write_safe = True
        try:
            for part in _split(path):
                node = node.children[part]
                if node.shared:
                    write_safe = False
        except KeyError:
            raise XenstoreError(f"ENOENT: {path!r}") from None
        # Path memo: value writes mutate the resolved Node in place, so
        # a cached path -> Node mapping stays truthful until a node
        # object on some path is *replaced* or newly *shared* — un-share,
        # subtree removal, graft (every xs_clone grafts) — at which
        # point the whole memo is dropped (see ``_unshare`` /
        # ``remove_node`` / ``graft``). ``write_safe`` records whether
        # the walk crossed a shared node: only an all-private path may
        # satisfy a mutating lookup (see ``_lookup_create``).
        if len(cache) >= _PATH_CACHE_MAX:
            cache.clear()
        cache[path] = (node, write_safe)
        return node

    def _unshare(self, node: Node) -> Node:
        """Private copy of a shared node: alias its children (marking
        them shared so the laziness recurses) and return the copy. The
        caller re-links it into the (already private) parent."""
        if self._path_cache:
            self._path_cache.clear()
        copy = Node(node.value)
        copy.count = node.count
        children = dict(node.children)
        copy.children = children
        for child in children.values():
            child.shared = True
        return copy

    def _lookup_create(self, path: str) -> Node:
        cache = self._path_cache
        entry = cache.get(path)
        if entry is not None and entry[1]:
            # Write-safe hit: the whole path is private, so the node
            # may be handed out for mutation without re-walking (and
            # without any count/unshare bookkeeping — nothing changes).
            return entry[0]
        parts = _split(path)
        node = self.root
        trail = [node]
        for i, part in enumerate(parts):
            child = node.children.get(part)
            if child is None:
                # Everything from here on is new: create the chain and
                # bump the existing ancestors' subtree counts once.
                created = len(parts) - i
                for ancestor in trail:
                    ancestor.count += created
                for j in range(i, len(parts)):
                    child = Node()
                    child.count = len(parts) - j
                    node.children[parts[j]] = child
                    node = child
                self.node_count += created
                cache = self._path_cache  # _unshare may have cleared it
                if len(cache) >= _PATH_CACHE_MAX:
                    cache.clear()
                cache[path] = (node, True)
                return node
            if child.shared:
                child = self._unshare(child)
                node.children[part] = child
            trail.append(child)
            node = child
        # The walk above un-shared every node on the path: write-safe.
        cache = self._path_cache
        if len(cache) >= _PATH_CACHE_MAX:
            cache.clear()
        cache[path] = (node, True)
        return node

    def exists(self, path: str) -> bool:
        """Does ``path`` exist? (Non-raising: probing for absent nodes
        is the common case during device negotiation, so this walks
        with ``dict.get`` instead of paying exception dispatch.)"""
        if path in self._path_cache:
            return True
        node = self.root
        for part in _split(path):
            node = node.children.get(part)
            if node is None:
                return False
        return True

    def write_node(self, path: str, value: str, fire: bool = True) -> None:
        """Create/overwrite a node (creating intermediate directories)."""
        node = self._lookup(path, create=True)
        node.value = value
        self.stats["writes"] += 1
        self.transactions.record_external_write(path)
        if fire:
            self.fire_watches(path)

    def read_node(self, path: str) -> str:
        """The value at ``path`` (ENOENT if absent)."""
        self.stats["reads"] += 1
        return self._lookup(path).value

    def directory(self, path: str) -> list[str]:
        """Sorted child names of ``path``."""
        return sorted(self._lookup(path).children)

    def remove_node(self, path: str, fire: bool = True) -> int:
        """Remove a subtree; returns the number of nodes removed."""
        parts = _split(path)
        if not parts:
            raise XenstoreError("cannot remove the root")
        parent = self.root
        trail = [parent]
        for part in parts[:-1]:
            child = parent.children.get(part)
            if child is None:
                raise XenstoreError(f"ENOENT: {path!r}")
            if child.shared:
                child = self._unshare(child)
                parent.children[part] = child
            trail.append(child)
            parent = child
        target = parent.children.get(parts[-1])
        if target is None:
            raise XenstoreError(f"ENOENT: {path!r}")
        removed = target.count
        del parent.children[parts[-1]]
        if self._path_cache:
            self._path_cache.clear()
        for ancestor in trail:
            ancestor.count -= removed
        self.node_count -= removed
        self.transactions.record_external_write(path)
        if fire:
            self.fire_watches(path)
        return removed

    def _count_subtree(self, node: Node) -> int:
        """From-scratch recount (consistency checks; the live path uses
        the incrementally maintained ``Node.count``). Iterative, so it
        stays usable on trees deeper than the recursion limit."""
        total = 0
        stack = [node]
        while stack:
            current = stack.pop()
            total += 1
            stack.extend(current.children.values())
        return total

    def subtree_nodes(self, path: str) -> int:
        """Node count of the subtree rooted at ``path`` (O(depth))."""
        return self._lookup(path).count

    def graft(self, path: str, subtree: Node) -> int:
        """Attach a prebuilt subtree at ``path`` (server-side bulk
        create, the fast half of ``xs_clone``); returns the number of
        nodes added from ``subtree``. EEXIST if ``path`` is taken."""
        parts = _split(path)
        if not parts:
            raise XenstoreError("cannot graft at the root")
        node = self.root
        trail = [node]
        for part in parts[:-1]:
            child = node.children.get(part)
            if child is None:
                child = Node()
                node.children[part] = child
                self.node_count += 1
                for ancestor in trail:
                    ancestor.count += 1
            elif child.shared:
                child = self._unshare(child)
                node.children[part] = child
            trail.append(child)
            node = child
        if parts[-1] in node.children:
            raise XenstoreError(f"EEXIST: {path!r}")
        if self._path_cache:
            self._path_cache.clear()
        node.children[parts[-1]] = subtree
        added = subtree.count
        for ancestor in trail:
            ancestor.count += added
        self.node_count += added
        return added

    def walk(self, path: str) -> list[tuple[str, str]]:
        """All (path, value) pairs under ``path``, including it.

        Iterative pre-order with children in sorted name order (the
        same visit order the old recursive version produced), so it
        works on arbitrarily deep trees.
        """
        result: list[tuple[str, str]] = []
        stack = [(path.rstrip("/") or "/", self._lookup(path))]
        while stack:
            prefix, node = stack.pop()
            result.append((prefix, node.value))
            children = node.children
            if children:
                stack.extend((f"{prefix}/{name}", children[name])
                             for name in sorted(children, reverse=True))
        return result

    # ------------------------------------------------------------------
    # watches
    # ------------------------------------------------------------------
    def add_watch(self, path: str, token: str, callback: WatchCallback) -> int:
        """Register a watch; fires for writes at/under ``path``."""
        watch_id = next(self._watch_ids)
        watch = Watch(path, token, callback)
        self._watches[watch_id] = watch
        self._watch_index.setdefault(watch.path, {})[watch_id] = watch
        self._watch_scan = None
        return watch_id

    def remove_watch(self, watch_id: int) -> None:
        """Unregister a watch."""
        watch = self._watches.pop(watch_id, None)
        if watch is None:
            return
        bucket = self._watch_index.get(watch.path)
        if bucket is not None:
            bucket.pop(watch_id, None)
            if not bucket:
                del self._watch_index[watch.path]
                self._watch_scan = None

    def fire_watches(self, path: str) -> int:
        """Fire all watches whose path is a prefix of ``path``.

        Only the fired path's own prefixes can match, so this consults
        the watch index at each prefix (O(depth + matches)) rather than
        scanning every registered watch. Matches fire in registration
        order, and watches removed by an earlier callback still fire
        (the match list is snapshotted up front).
        """
        index = self._watch_index
        if not index:
            return 0
        normalized = path.rstrip("/") or "/"
        matched: list[tuple[int, Watch]] = []
        if normalized == "/":
            bucket = index.get("/")
            if bucket:
                matched.extend(bucket.items())
        elif len(index) <= 16:
            # Few distinct watch paths: scanning them directly is
            # cheaper than materializing every prefix of the fired path.
            scan = self._watch_scan
            if scan is None:
                scan = self._watch_scan = [
                    (wpath, "/" if wpath == "/" else f"{wpath}/", bucket)
                    for wpath, bucket in index.items()]
            for wpath, wprefix, bucket in scan:
                if normalized == wpath or (wpath != "/"
                                           and normalized.startswith(wprefix)):
                    matched.extend(bucket.items())
            if len(matched) > 1:
                matched.sort()
        else:
            prefix = ""
            for part in normalized[1:].split("/"):
                prefix = f"{prefix}/{part}"
                bucket = index.get(prefix)
                if bucket:
                    matched.extend(bucket.items())
            if len(matched) > 1:
                matched.sort()
        fired = 0
        for _watch_id, watch in matched:
            self.clock.charge(self.costs.xs_watch_fire)
            watch.callback(normalized, watch.token)
            fired += 1
        return fired

    # ------------------------------------------------------------------
    # domain introduction
    # ------------------------------------------------------------------
    def introduce_domain(self, domid: int, parent_domid: int | None = None) -> None:
        """Make the daemon aware of a domain.

        Nephele augments the introduction request with the parent ID
        (paper §5.2.1: "the introduction request being augmented with an
        additional parameter indicating the parent ID").
        """
        if domid in self.introduced:
            raise XenstoreError(f"domain {domid} already introduced")
        self.introduced[domid] = parent_domid

    def release_domain(self, domid: int) -> None:
        """Forget a (destroyed) domain."""
        self.introduced.pop(domid, None)
