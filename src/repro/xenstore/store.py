"""The Xenstore daemon: tree, watches, transactions, request accounting.

Request latency in oxenstored grows with the size of the store (its
working set and log handling scale with node count); the simulation
charges ``xs_request_base + xs_request_per_node * node_count`` per
request, which is what makes boot times in Fig 4 grow from 160 ms to
300 ms across 1000 instances.
"""

from __future__ import annotations

import functools
import itertools
from typing import Callable

from repro.errors import ReproError
from repro.faults.injector import NULL_INJECTOR
from repro.obs.tracer import NULL_TRACER
from repro.sim import CostModel, VirtualClock
from repro.xenstore.logging import AccessLog

WatchCallback = Callable[[str, str], None]  # (fired path, token)


class XenstoreError(ReproError):
    """Xenstore request failure (ENOENT and friends)."""


class Node:
    """One node of the store tree.

    ``count`` caches the size of the subtree rooted here (this node
    included). It is maintained incrementally by every tree mutation,
    so ``subtree_nodes`` and the per-request store-size costing never
    re-count trees.

    Nodes are copy-on-write: ``xs_clone`` grafts a parent subtree into
    the child by *reference* and marks it ``shared``. The invariant is
    that every path from the root to a multiply-referenced node passes
    through a node with ``shared`` set (usually the grafted subtree
    root); a shared node is immutable. Mutating walks un-share each
    shared node they descend through — copy the node, alias its child
    dict entries, and mark those children shared — so only the touched
    path is ever duplicated.

    ``site_cache`` memoizes, per clone-source root, where the device
    domid-rewrite heuristics actually change a value (keyed by parent
    domid); safe to cache precisely because shared subtrees never
    mutate in place. See :mod:`repro.xenstore.clone`.
    """

    __slots__ = ("value", "children", "count", "shared", "site_cache")

    def __init__(self, value: str = "") -> None:
        self.value = value
        self.children: dict[str, Node] = {}
        self.count = 1
        self.shared = False
        self.site_cache = None


@functools.lru_cache(maxsize=None)
def _split(path: str) -> tuple[str, ...]:
    if not path.startswith("/"):
        raise XenstoreError(f"path must be absolute: {path!r}")
    return tuple(filter(None, path.split("/")))


class Watch:
    """A registered path-prefix watch."""

    __slots__ = ("path", "token", "callback")

    def __init__(self, path: str, token: str, callback: WatchCallback) -> None:
        self.path = path.rstrip("/") or "/"
        self.token = token
        self.callback = callback


class XenstoreDaemon:
    """oxenstored: the store, its watches and its access log."""

    def __init__(self, clock: VirtualClock, costs: CostModel,
                 log_enabled: bool = True, tracer=None,
                 faults=None) -> None:
        self.clock = clock
        self.costs = costs
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Fault-injection hooks (repro.faults): xs_clone and the
        #: transaction manager fire through this. No-op by default.
        self.faults = faults if faults is not None else NULL_INJECTOR
        self.root = Node()
        self.node_count = 0
        self.access_log = AccessLog(clock, costs, enabled=log_enabled,
                                    tracer=self.tracer)
        self._watches: dict[int, Watch] = {}
        #: Watch path -> {watch id -> watch}: firing a path consults its
        #: O(depth) prefixes instead of scanning every watch.
        self._watch_index: dict[str, dict[int, Watch]] = {}
        #: Lazily rebuilt [(path, "path/", bucket)] scan list used when
        #: the index is small enough that scanning beats prefix walking.
        self._watch_scan: list[tuple[str, str, dict[int, Watch]]] | None = None
        self._watch_ids = itertools.count(1)
        from repro.xenstore.transactions import TransactionManager

        self.transactions = TransactionManager(self)
        #: Domains introduced to the daemon (domid -> parent domid or None).
        self.introduced: dict[int, int | None] = {}
        self.stats = {"requests": 0, "writes": 0, "reads": 0, "clones": 0}

    # ------------------------------------------------------------------
    # request accounting
    # ------------------------------------------------------------------
    def charge_request(self, extra: float = 0.0) -> None:
        """Account one client request (cost + access log)."""
        self.stats["requests"] += 1
        self.tracer.count("xenstore.requests")
        self.clock.charge(
            self.costs.xs_request_base
            + self.costs.xs_request_per_node * self.node_count
            + extra
        )
        self.access_log.record_request()

    def resident_bytes(self) -> int:
        """Approximate oxenstored resident memory (Dom0 accounting)."""
        return self.node_count * self.costs.xs_node_resident_bytes

    # ------------------------------------------------------------------
    # tree primitives (no request accounting; used server-side)
    # ------------------------------------------------------------------
    def _lookup(self, path: str, create: bool = False) -> Node:
        if create:
            return self._lookup_create(path)
        node = self.root
        try:
            for part in _split(path):
                node = node.children[part]
        except KeyError:
            raise XenstoreError(f"ENOENT: {path!r}") from None
        return node

    @staticmethod
    def _unshare(node: Node) -> Node:
        """Private copy of a shared node: alias its children (marking
        them shared so the laziness recurses) and return the copy. The
        caller re-links it into the (already private) parent."""
        copy = Node(node.value)
        copy.count = node.count
        children = dict(node.children)
        copy.children = children
        for child in children.values():
            child.shared = True
        return copy

    def _lookup_create(self, path: str) -> Node:
        parts = _split(path)
        node = self.root
        trail = [node]
        for i, part in enumerate(parts):
            child = node.children.get(part)
            if child is None:
                # Everything from here on is new: create the chain and
                # bump the existing ancestors' subtree counts once.
                created = len(parts) - i
                for ancestor in trail:
                    ancestor.count += created
                for j in range(i, len(parts)):
                    child = Node()
                    child.count = len(parts) - j
                    node.children[parts[j]] = child
                    node = child
                self.node_count += created
                return node
            if child.shared:
                child = self._unshare(child)
                node.children[part] = child
            trail.append(child)
            node = child
        return node

    def exists(self, path: str) -> bool:
        """Does ``path`` exist?"""
        try:
            self._lookup(path)
            return True
        except XenstoreError:
            return False

    def write_node(self, path: str, value: str, fire: bool = True) -> None:
        """Create/overwrite a node (creating intermediate directories)."""
        node = self._lookup(path, create=True)
        node.value = value
        self.stats["writes"] += 1
        self.transactions.record_external_write(path)
        if fire:
            self.fire_watches(path)

    def read_node(self, path: str) -> str:
        """The value at ``path`` (ENOENT if absent)."""
        self.stats["reads"] += 1
        return self._lookup(path).value

    def directory(self, path: str) -> list[str]:
        """Sorted child names of ``path``."""
        return sorted(self._lookup(path).children)

    def remove_node(self, path: str, fire: bool = True) -> int:
        """Remove a subtree; returns the number of nodes removed."""
        parts = _split(path)
        if not parts:
            raise XenstoreError("cannot remove the root")
        parent = self.root
        trail = [parent]
        for part in parts[:-1]:
            child = parent.children.get(part)
            if child is None:
                raise XenstoreError(f"ENOENT: {path!r}")
            if child.shared:
                child = self._unshare(child)
                parent.children[part] = child
            trail.append(child)
            parent = child
        target = parent.children.get(parts[-1])
        if target is None:
            raise XenstoreError(f"ENOENT: {path!r}")
        removed = target.count
        del parent.children[parts[-1]]
        for ancestor in trail:
            ancestor.count -= removed
        self.node_count -= removed
        self.transactions.record_external_write(path)
        if fire:
            self.fire_watches(path)
        return removed

    def _count_subtree(self, node: Node) -> int:
        """From-scratch recount (consistency checks; the live path uses
        the incrementally maintained ``Node.count``). Iterative, so it
        stays usable on trees deeper than the recursion limit."""
        total = 0
        stack = [node]
        while stack:
            current = stack.pop()
            total += 1
            stack.extend(current.children.values())
        return total

    def subtree_nodes(self, path: str) -> int:
        """Node count of the subtree rooted at ``path`` (O(depth))."""
        return self._lookup(path).count

    def graft(self, path: str, subtree: Node) -> int:
        """Attach a prebuilt subtree at ``path`` (server-side bulk
        create, the fast half of ``xs_clone``); returns the number of
        nodes added from ``subtree``. EEXIST if ``path`` is taken."""
        parts = _split(path)
        if not parts:
            raise XenstoreError("cannot graft at the root")
        node = self.root
        trail = [node]
        for part in parts[:-1]:
            child = node.children.get(part)
            if child is None:
                child = Node()
                node.children[part] = child
                self.node_count += 1
                for ancestor in trail:
                    ancestor.count += 1
            elif child.shared:
                child = self._unshare(child)
                node.children[part] = child
            trail.append(child)
            node = child
        if parts[-1] in node.children:
            raise XenstoreError(f"EEXIST: {path!r}")
        node.children[parts[-1]] = subtree
        added = subtree.count
        for ancestor in trail:
            ancestor.count += added
        self.node_count += added
        return added

    def walk(self, path: str) -> list[tuple[str, str]]:
        """All (path, value) pairs under ``path``, including it.

        Iterative pre-order with children in sorted name order (the
        same visit order the old recursive version produced), so it
        works on arbitrarily deep trees.
        """
        result: list[tuple[str, str]] = []
        stack = [(path.rstrip("/") or "/", self._lookup(path))]
        while stack:
            prefix, node = stack.pop()
            result.append((prefix, node.value))
            children = node.children
            if children:
                stack.extend((f"{prefix}/{name}", children[name])
                             for name in sorted(children, reverse=True))
        return result

    # ------------------------------------------------------------------
    # watches
    # ------------------------------------------------------------------
    def add_watch(self, path: str, token: str, callback: WatchCallback) -> int:
        """Register a watch; fires for writes at/under ``path``."""
        watch_id = next(self._watch_ids)
        watch = Watch(path, token, callback)
        self._watches[watch_id] = watch
        self._watch_index.setdefault(watch.path, {})[watch_id] = watch
        self._watch_scan = None
        return watch_id

    def remove_watch(self, watch_id: int) -> None:
        """Unregister a watch."""
        watch = self._watches.pop(watch_id, None)
        if watch is None:
            return
        bucket = self._watch_index.get(watch.path)
        if bucket is not None:
            bucket.pop(watch_id, None)
            if not bucket:
                del self._watch_index[watch.path]
                self._watch_scan = None

    def fire_watches(self, path: str) -> int:
        """Fire all watches whose path is a prefix of ``path``.

        Only the fired path's own prefixes can match, so this consults
        the watch index at each prefix (O(depth + matches)) rather than
        scanning every registered watch. Matches fire in registration
        order, and watches removed by an earlier callback still fire
        (the match list is snapshotted up front).
        """
        index = self._watch_index
        if not index:
            return 0
        normalized = path.rstrip("/") or "/"
        matched: list[tuple[int, Watch]] = []
        if normalized == "/":
            bucket = index.get("/")
            if bucket:
                matched.extend(bucket.items())
        elif len(index) <= 16:
            # Few distinct watch paths: scanning them directly is
            # cheaper than materializing every prefix of the fired path.
            scan = self._watch_scan
            if scan is None:
                scan = self._watch_scan = [
                    (wpath, "/" if wpath == "/" else f"{wpath}/", bucket)
                    for wpath, bucket in index.items()]
            for wpath, wprefix, bucket in scan:
                if normalized == wpath or (wpath != "/"
                                           and normalized.startswith(wprefix)):
                    matched.extend(bucket.items())
            if len(matched) > 1:
                matched.sort()
        else:
            prefix = ""
            for part in normalized[1:].split("/"):
                prefix = f"{prefix}/{part}"
                bucket = index.get(prefix)
                if bucket:
                    matched.extend(bucket.items())
            if len(matched) > 1:
                matched.sort()
        fired = 0
        for _watch_id, watch in matched:
            self.clock.charge(self.costs.xs_watch_fire)
            watch.callback(normalized, watch.token)
            fired += 1
        return fired

    # ------------------------------------------------------------------
    # domain introduction
    # ------------------------------------------------------------------
    def introduce_domain(self, domid: int, parent_domid: int | None = None) -> None:
        """Make the daemon aware of a domain.

        Nephele augments the introduction request with the parent ID
        (paper §5.2.1: "the introduction request being augmented with an
        additional parameter indicating the parent ID").
        """
        if domid in self.introduced:
            raise XenstoreError(f"domain {domid} already introduced")
        self.introduced[domid] = parent_domid

    def release_domain(self, domid: int) -> None:
        """Forget a (destroyed) domain."""
        self.introduced.pop(domid, None)
