"""The Xenstore daemon: tree, watches, transactions, request accounting.

Request latency in oxenstored grows with the size of the store (its
working set and log handling scale with node count); the simulation
charges ``xs_request_base + xs_request_per_node * node_count`` per
request, which is what makes boot times in Fig 4 grow from 160 ms to
300 ms across 1000 instances.
"""

from __future__ import annotations

import itertools
from typing import Callable

from repro.errors import ReproError
from repro.obs.tracer import NULL_TRACER
from repro.sim import CostModel, VirtualClock
from repro.xenstore.logging import AccessLog

WatchCallback = Callable[[str, str], None]  # (fired path, token)


class XenstoreError(ReproError):
    """Xenstore request failure (ENOENT and friends)."""


class Node:
    """One node of the store tree."""

    __slots__ = ("value", "children")

    def __init__(self, value: str = "") -> None:
        self.value = value
        self.children: dict[str, Node] = {}


def _split(path: str) -> list[str]:
    if not path.startswith("/"):
        raise XenstoreError(f"path must be absolute: {path!r}")
    return [part for part in path.split("/") if part]


class Watch:
    """A registered path-prefix watch."""

    __slots__ = ("path", "token", "callback")

    def __init__(self, path: str, token: str, callback: WatchCallback) -> None:
        self.path = path.rstrip("/") or "/"
        self.token = token
        self.callback = callback


class XenstoreDaemon:
    """oxenstored: the store, its watches and its access log."""

    def __init__(self, clock: VirtualClock, costs: CostModel,
                 log_enabled: bool = True, tracer=None) -> None:
        self.clock = clock
        self.costs = costs
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.root = Node()
        self.node_count = 0
        self.access_log = AccessLog(clock, costs, enabled=log_enabled,
                                    tracer=self.tracer)
        self._watches: dict[int, Watch] = {}
        self._watch_ids = itertools.count(1)
        from repro.xenstore.transactions import TransactionManager

        self.transactions = TransactionManager(self)
        #: Domains introduced to the daemon (domid -> parent domid or None).
        self.introduced: dict[int, int | None] = {}
        self.stats = {"requests": 0, "writes": 0, "reads": 0, "clones": 0}

    # ------------------------------------------------------------------
    # request accounting
    # ------------------------------------------------------------------
    def charge_request(self, extra: float = 0.0) -> None:
        """Account one client request (cost + access log)."""
        self.stats["requests"] += 1
        self.tracer.count("xenstore.requests")
        self.clock.charge(
            self.costs.xs_request_base
            + self.costs.xs_request_per_node * self.node_count
            + extra
        )
        self.access_log.record_request()

    def resident_bytes(self) -> int:
        """Approximate oxenstored resident memory (Dom0 accounting)."""
        return self.node_count * self.costs.xs_node_resident_bytes

    # ------------------------------------------------------------------
    # tree primitives (no request accounting; used server-side)
    # ------------------------------------------------------------------
    def _lookup(self, path: str, create: bool = False) -> Node:
        node = self.root
        for part in _split(path):
            child = node.children.get(part)
            if child is None:
                if not create:
                    raise XenstoreError(f"ENOENT: {path!r}")
                child = Node()
                node.children[part] = child
                self.node_count += 1
            node = child
        return node

    def exists(self, path: str) -> bool:
        """Does ``path`` exist?"""
        try:
            self._lookup(path)
            return True
        except XenstoreError:
            return False

    def write_node(self, path: str, value: str, fire: bool = True) -> None:
        """Create/overwrite a node (creating intermediate directories)."""
        node = self._lookup(path, create=True)
        node.value = value
        self.stats["writes"] += 1
        self.transactions.record_external_write(path)
        if fire:
            self.fire_watches(path)

    def read_node(self, path: str) -> str:
        """The value at ``path`` (ENOENT if absent)."""
        self.stats["reads"] += 1
        return self._lookup(path).value

    def directory(self, path: str) -> list[str]:
        """Sorted child names of ``path``."""
        return sorted(self._lookup(path).children)

    def remove_node(self, path: str, fire: bool = True) -> int:
        """Remove a subtree; returns the number of nodes removed."""
        parts = _split(path)
        if not parts:
            raise XenstoreError("cannot remove the root")
        parent = self.root
        for part in parts[:-1]:
            child = parent.children.get(part)
            if child is None:
                raise XenstoreError(f"ENOENT: {path!r}")
            parent = child
        target = parent.children.get(parts[-1])
        if target is None:
            raise XenstoreError(f"ENOENT: {path!r}")
        removed = self._count_subtree(target)
        del parent.children[parts[-1]]
        self.node_count -= removed
        self.transactions.record_external_write(path)
        if fire:
            self.fire_watches(path)
        return removed

    def _count_subtree(self, node: Node) -> int:
        total = 1
        for child in node.children.values():
            total += self._count_subtree(child)
        return total

    def subtree_nodes(self, path: str) -> int:
        """Node count of the subtree rooted at ``path``."""
        return self._count_subtree(self._lookup(path))

    def walk(self, path: str) -> list[tuple[str, str]]:
        """All (path, value) pairs under ``path``, including it."""
        result: list[tuple[str, str]] = []

        def visit(prefix: str, node: Node) -> None:
            result.append((prefix, node.value))
            for name, child in sorted(node.children.items()):
                visit(f"{prefix}/{name}", child)

        visit(path.rstrip("/") or "/", self._lookup(path))
        return result

    # ------------------------------------------------------------------
    # watches
    # ------------------------------------------------------------------
    def add_watch(self, path: str, token: str, callback: WatchCallback) -> int:
        """Register a watch; fires for writes at/under ``path``."""
        watch_id = next(self._watch_ids)
        self._watches[watch_id] = Watch(path, token, callback)
        return watch_id

    def remove_watch(self, watch_id: int) -> None:
        """Unregister a watch."""
        self._watches.pop(watch_id, None)

    def fire_watches(self, path: str) -> int:
        """Fire all watches whose path is a prefix of ``path``."""
        fired = 0
        normalized = path.rstrip("/") or "/"
        for watch in list(self._watches.values()):
            if normalized == watch.path or normalized.startswith(watch.path + "/"):
                self.clock.charge(self.costs.xs_watch_fire)
                watch.callback(normalized, watch.token)
                fired += 1
        return fired

    # ------------------------------------------------------------------
    # domain introduction
    # ------------------------------------------------------------------
    def introduce_domain(self, domid: int, parent_domid: int | None = None) -> None:
        """Make the daemon aware of a domain.

        Nephele augments the introduction request with the parent ID
        (paper §5.2.1: "the introduction request being augmented with an
        additional parameter indicating the parent ID").
        """
        if domid in self.introduced:
            raise XenstoreError(f"domain {domid} already introduced")
        self.introduced[domid] = parent_domid

    def release_domain(self, domid: int) -> None:
        """Forget a (destroyed) domain."""
        self.introduced.pop(domid, None)
