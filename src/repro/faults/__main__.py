"""``python -m repro.faults`` — the chaos-run entry point."""

import sys

from repro.faults.cli import main

if __name__ == "__main__":
    sys.exit(main())
