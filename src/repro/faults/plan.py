"""Fault plans: declarative, deterministic failure schedules.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries, each
arming one injection site with a trigger (skip the first N hits, fire
the next M, optionally with probability p drawn from the platform's
forked RNG, optionally only after a virtual-clock instant, optionally
only when the call context matches). Plans are plain data: they
round-trip through JSON, so the chaos CLI and CI can pin them to files,
and two runs of the same plan at the same seed inject the exact same
faults at the exact same virtual times.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ReproError
from repro.faults.sites import SITES, FaultKind, raise_sites
from repro.sim.rng import DeterministicRNG


class FaultPlanError(ReproError):
    """Malformed fault plan (unknown site, bad kind, bad trigger)."""


@dataclass
class FaultSpec:
    """One armed fault: site + trigger + error kind.

    Trigger semantics, evaluated per matching hook hit:

    - ``match`` filters on the hook's context kwargs (equality);
      non-matching hits are invisible to this spec.
    - ``predicate`` is an optional callable over the context dict for
      triggers ``match`` cannot express (not JSON-serializable).
    - ``after_ms`` gates the spec on the virtual clock.
    - ``after`` skips that many matching hits before arming.
    - ``count`` bounds total injections (None = unlimited).
    - ``probability`` < 1.0 draws from the injector's forked RNG on
      each armed hit.
    """

    site: str
    kind: FaultKind | None = None
    after: int = 0
    count: int | None = 1
    probability: float = 1.0
    after_ms: float = 0.0
    match: dict[str, Any] = field(default_factory=dict)
    predicate: Callable[[dict[str, Any]], bool] | None = None

    def __post_init__(self) -> None:
        """Validate the spec against the site registry."""
        site = SITES.get(self.site)
        if site is None:
            raise FaultPlanError(
                f"unknown injection site {self.site!r} "
                f"(see repro.faults.sites.SITES)")
        if isinstance(self.kind, str):
            self.kind = FaultKind(self.kind)
        if self.kind is not None and self.kind not in site.allowed_kinds:
            raise FaultPlanError(
                f"site {self.site!r} does not support kind "
                f"{self.kind.value!r} (allowed: "
                f"{sorted(k.value for k in site.allowed_kinds)})")
        if self.after < 0:
            raise FaultPlanError(f"negative 'after': {self.after}")
        if self.count is not None and self.count < 1:
            raise FaultPlanError(f"non-positive 'count': {self.count}")
        if not (0.0 < self.probability <= 1.0):
            raise FaultPlanError(
                f"probability must be in (0, 1]: {self.probability}")

    @property
    def resolved_kind(self) -> FaultKind:
        """The error kind injected: explicit, or the site's default."""
        if self.kind is not None:
            return self.kind
        return SITES[self.site].default_kind

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (predicates cannot be serialized)."""
        if self.predicate is not None:
            raise FaultPlanError(
                "cannot serialize a spec with a predicate callable")
        payload: dict[str, Any] = {"site": self.site}
        if self.kind is not None:
            payload["kind"] = self.kind.value
        if self.after:
            payload["after"] = self.after
        if self.count != 1:
            payload["count"] = self.count
        if self.probability != 1.0:
            payload["probability"] = self.probability
        if self.after_ms:
            payload["after_ms"] = self.after_ms
        if self.match:
            payload["match"] = dict(self.match)
        return payload

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FaultSpec":
        """Inverse of :meth:`to_dict`."""
        known = {"site", "kind", "after", "count", "probability",
                 "after_ms", "match"}
        unknown = set(payload) - known
        if unknown:
            raise FaultPlanError(f"unknown FaultSpec fields: {sorted(unknown)}")
        return cls(**payload)


@dataclass
class FaultPlan:
    """A named, ordered collection of fault specs."""

    specs: list[FaultSpec] = field(default_factory=list)
    name: str = ""

    def __post_init__(self) -> None:
        """Coerce dict entries (e.g. parsed JSON) into FaultSpecs."""
        self.specs = [spec if isinstance(spec, FaultSpec)
                      else FaultSpec.from_dict(spec) for spec in self.specs]

    @property
    def empty(self) -> bool:
        """True when the plan arms nothing (injection is a no-op)."""
        return not self.specs

    def budget(self) -> int | None:
        """Total injections this plan can produce (None = unbounded)."""
        total = 0
        for spec in self.specs:
            if spec.count is None:
                return None
            total += spec.count
        return total

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form."""
        return {"name": self.name,
                "specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        return cls(name=payload.get("name", ""),
                   specs=[FaultSpec.from_dict(entry)
                          for entry in payload.get("specs", [])])

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize the plan to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    @classmethod
    def randomized(cls, seed: int, faults: int = 100,
                   sites: list[str] | None = None,
                   include_drops: bool = True) -> "FaultPlan":
        """A chaos plan with a total injection budget of ``faults``.

        Sites, triggers, and probabilities are drawn from a stream
        forked off ``seed``, so the same seed always produces the same
        plan — the chaos harness's determinism guarantee starts here.
        """
        rng = DeterministicRNG(seed).fork("fault-plan")
        pool = list(sites) if sites is not None else raise_sites()
        if include_drops and sites is None:
            pool.append("virq.deliver")
        specs: list[FaultSpec] = []
        budget = 0
        while budget < faults:
            site = rng.choice(pool)
            count = min(rng.randint(1, 3), faults - budget)
            kind = (FaultKind.DROP if SITES[site].default_kind
                    is FaultKind.DROP else None)
            specs.append(FaultSpec(
                site=site, kind=kind, after=rng.randint(0, 12), count=count,
                probability=rng.choice([1.0, 1.0, 0.5, 0.25])))
            budget += count
        return cls(specs=specs, name=f"chaos-{seed:#x}-{faults}")


#: The always-empty plan: platforms without a configured plan share it.
EMPTY_PLAN = FaultPlan(name="empty")
