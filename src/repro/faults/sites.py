"""The injection-site registry: where faults can be injected, and why.

Each :class:`InjectionSite` names one hook threaded through a clone hot
path, describes the real-Xen failure it models (paper §4/§5 pipeline),
and states the recovery semantics the hardened code implements. The
registry is the single source of truth: ``docs/FAULTS.md`` must
document exactly this set (a test diffs the two), plans are validated
against it, and the chaos generator draws sites from it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FaultKind(str, enum.Enum):
    """The error mode a spec injects at its site.

    Raise-mode kinds map to the *real* exception types of the layer
    they fire in, so the hardened recovery paths are exercised exactly
    as a genuine failure would exercise them:

    - ``ENOMEM`` -> :class:`repro.xen.errors.XenNoMemoryError`
    - ``EAGAIN`` -> :class:`repro.xenstore.transactions.TransactionConflict`
    - ``EIO`` -> :class:`repro.faults.injector.InjectedFaultError`
    - ``RING_FULL`` -> :class:`repro.core.notify_ring.RingFullError`

    ``DROP`` is not an exception: drop-mode sites (vIRQ delivery) ask
    the injector whether to silently lose the event instead.

    The ``HOST_*`` kinds are the fleet tier (:mod:`repro.fleet`):
    event-mode sites polled by the fleet control plane to decide
    whether a whole simulated host fails right now.
    """

    ENOMEM = "enomem"
    EAGAIN = "eagain"
    EIO = "eio"
    RING_FULL = "ring_full"
    DROP = "drop"
    HOST_CRASH = "host_crash"
    HOST_PARTITION = "host_partition"
    HOST_DEGRADED = "host_degraded"
    #: Live-migration tier (:mod:`repro.fleet.migration`): event-mode
    #: sites polled once per migration round, modelling the migration
    #: losing its source host, its target host, or the memory stream.
    MIGRATION_ABORT = "migration_abort"
    #: Front-door resilience tier (:mod:`repro.frontdoor.resilience`):
    #: event-mode sites polled by the dispatcher's admission and
    #: routing paths, modelling the front door itself misbehaving —
    #: an admission filter dropping a request it should have admitted,
    #: a replica swallowing copies without serving them, or a circuit
    #: breaker tripping spuriously.
    ADMISSION_DROP = "admission_drop"
    REPLICA_STALL = "replica_stall"
    BREAKER_FLAP = "breaker_flap"


class SiteMode(str, enum.Enum):
    """How a site consumes the injector.

    ``RAISE`` hooks throw the failing layer's real exception type,
    ``DROP`` hooks silently lose an event, and ``EVENT`` hooks are
    polled (:meth:`repro.faults.injector.FaultInjector.event`) by a
    control plane that reacts to the failure itself — the host-level
    tier, where "the failure" is an entire host and no single call
    site can raise on its behalf.
    """

    RAISE = "raise"
    DROP = "drop"
    EVENT = "event"


@dataclass(frozen=True)
class InjectionSite:
    """One fault-injection hook and its failure model."""

    #: Dotted site name (``layer.operation``), used in FaultSpecs.
    name: str
    #: Whether the hook raises an error or silently drops an event.
    mode: SiteMode
    #: The kind injected when a spec does not name one explicitly.
    default_kind: FaultKind
    #: Which error kinds a spec targeting this site may request.
    allowed_kinds: frozenset[FaultKind]
    #: What fails here in the simulation (one line).
    description: str
    #: The real-Xen failure this models (per PAPER.md / paper §4-§5).
    analogue: str
    #: What the hardened code does when this site fails (one line).
    recovery: str


def _site(name: str, mode: SiteMode, default: FaultKind,
          allowed: tuple[FaultKind, ...], description: str, analogue: str,
          recovery: str) -> InjectionSite:
    """Registry construction helper (keeps the table below readable)."""
    return InjectionSite(name=name, mode=mode, default_kind=default,
                         allowed_kinds=frozenset(allowed),
                         description=description, analogue=analogue,
                         recovery=recovery)


#: Every injection site existing in code, keyed by name. Adding a hook
#: without registering it here (or documenting it in docs/FAULTS.md)
#: fails the registry-diff test.
SITES: dict[str, InjectionSite] = {
    site.name: site for site in (
        _site(
            "frames.alloc", SiteMode.RAISE, FaultKind.ENOMEM,
            (FaultKind.ENOMEM,),
            "Machine-frame allocation fails (overhead, special pages, "
            "paging frames, RAM populate).",
            "Xen's domheap allocator returning NULL under memory "
            "pressure while the first stage builds the child's private "
            "pages (paper §4.1/§5.2).",
            "create_domain releases the partial domain; CLONEOP unwinds "
            "the child and resumes the parent (clone() raises ENOMEM, "
            "parent and siblings untouched).",
        ),
        _site(
            "paging.build", SiteMode.RAISE, FaultKind.ENOMEM,
            (FaultKind.ENOMEM, FaultKind.EIO),
            "Page-table/p2m skeleton construction fails for a new "
            "domain or clone.",
            "shadow/HAP pool exhaustion while rebuilding the clone's "
            "page tables and p2m (the private memory of paper §5.2).",
            "Same unwind as frames.alloc: partial domain released, "
            "clone aborted with the parent resumed.",
        ),
        _site(
            "grants.clone", SiteMode.RAISE, FaultKind.ENOMEM,
            (FaultKind.ENOMEM, FaultKind.EIO),
            "Cloning the parent's grant table into the child fails.",
            "gnttab_init/grow failing for the child during the "
            "first-stage grant-table copy (paper §5.2.2).",
            "CLONEOP destroys the half-built child via the domid-diff "
            "unwind; the parent's grant table is never mutated.",
        ),
        _site(
            "events.clone", SiteMode.RAISE, FaultKind.ENOMEM,
            (FaultKind.ENOMEM, FaultKind.EIO),
            "Cloning the parent's event channels (incl. IDC wildcard "
            "wiring) into the child fails.",
            "evtchn allocation failure while replicating the parent's "
            "ports and binding the clone to its IDC channels (§5.2.2).",
            "Same domid-diff unwind; IDC child endpoints are only "
            "linked after success, so siblings keep their fan-out.",
        ),
        _site(
            "grants.map", SiteMode.RAISE, FaultKind.EIO,
            (FaultKind.EIO, FaultKind.ENOMEM),
            "Mapping a foreign grant reference fails (IDC rings, "
            "shared buffers).",
            "GNTTABOP_map_grant_ref returning GNTST_* errors on a "
            "stale or exhausted grant entry.",
            "The error propagates to the mapper; no partial mapping is "
            "recorded, so teardown accounting stays balanced.",
        ),
        _site(
            "xenstore.xs_clone", SiteMode.RAISE, FaultKind.EIO,
            (FaultKind.EIO,),
            "The xs_clone request fails after validation, before any "
            "node is grafted.",
            "oxenstored rejecting the Nephele xs_clone request (quota "
            "exhaustion, OOM) during second-stage device-directory "
            "cloning (paper Fig. 2, §5.2.1).",
            "xencloned aborts that child's second stage: Xenstore "
            "subtrees scrubbed, backends removed, CLONE_FAILED reported "
            "-- the rest of the batch completes.",
        ),
        _site(
            "xenstore.txn_commit", SiteMode.RAISE, FaultKind.EAGAIN,
            (FaultKind.EAGAIN,),
            "A Xenstore transaction commit fails with EAGAIN (forced "
            "conflict).",
            "oxenstored's optimistic concurrency aborting a commit "
            "that raced with another client (the xs_transaction_t of "
            "paper Fig. 2).",
            "XsHandle.run_transaction retries with bounded, "
            "deterministic exponential backoff charged to the virtual "
            "clock; exhaustion re-raises EAGAIN.",
        ),
        _site(
            "notify.ring", SiteMode.RAISE, FaultKind.RING_FULL,
            (FaultKind.RING_FULL,),
            "Pushing a clone notification reports a full ring even "
            "when slots are free.",
            "The shared notification ring's backpressure on the first "
            "stage (paper §5: a full ring stalls cloning until "
            "xencloned drains).",
            "The existing bounded stall loop wakes xencloned and "
            "retries up to BACKPRESSURE_STALL_LIMIT times; exhaustion "
            "aborts the child with a full unwind.",
        ),
        _site(
            "virq.deliver", SiteMode.DROP, FaultKind.DROP,
            (FaultKind.DROP,),
            "A vIRQ dispatch (e.g. the coalesced VIRQ_CLONED wake-up) "
            "is silently lost.",
            "A lost/coalesced-away upcall: the guest or daemon misses "
            "an event because the pending bit was already set or the "
            "handler raced (classic Xen event-channel hazard).",
            "CLONEOP re-raises VIRQ_CLONED with bounded deterministic "
            "backoff; if the second stage still never completes, the "
            "un-plumbed children are unwound and clone() fails cleanly.",
        ),
        _site(
            "device.attach", SiteMode.RAISE, FaultKind.EIO,
            (FaultKind.EIO,),
            "Second-stage device cloning fails for one device class "
            "(console, vif, 9pfs directories, or the 9pfs QMP clone).",
            "A backend driver/QMP error while attaching the clone's "
            "devices in Dom0 (paper §5.2.1: netback shortcut, 9pfs fid "
            "table cloning over QMP).",
            "xencloned aborts that child's second stage (scrub + "
            "CLONE_FAILED); siblings and the parent are untouched.",
        ),
        _site(
            "host.crash", SiteMode.EVENT, FaultKind.HOST_CRASH,
            (FaultKind.HOST_CRASH,),
            "A whole simulated host fail-stops (hypervisor, xenstored, "
            "xencloned and every guest die at once).",
            "A host-level failure beneath anything Xen can recover "
            "from: power loss, hardware fault, hypervisor panic. "
            "Single-host Xen/xl has no answer; HA toolstacks (e.g. "
            "XenServer/xapi pools) detect it by missed heartbeats.",
            "The fleet declares the host dead after a deterministic "
            "heartbeat timeout, unwinds any in-flight clone batch with "
            "the existing whole-batch rollback, accounts the dead "
            "host's resources, and re-places affected clone requests "
            "on surviving hosts with bounded exponential backoff.",
        ),
        _site(
            "host.partition", SiteMode.EVENT, FaultKind.HOST_PARTITION,
            (FaultKind.HOST_PARTITION,),
            "A host becomes unreachable from the fleet control plane "
            "while its guests keep running.",
            "A network partition isolating the host from the "
            "pool master — the classic split-brain hazard that makes "
            "HA toolstacks fence (power-cycle) unreachable hosts "
            "before re-placing their workloads.",
            "Requests routed to the host fail immediately; after the "
            "heartbeat timeout the fleet fences the host (its guests "
            "are destroyed, modelling STONITH) and re-places its "
            "instances, so no family is ever live on two hosts.",
        ),
        _site(
            "migration.source", SiteMode.EVENT, FaultKind.MIGRATION_ABORT,
            (FaultKind.MIGRATION_ABORT,),
            "The source host of an in-flight warm migration fail-stops "
            "mid-round, taking the family's live instances with it.",
            "The migrating host dying while xc_domain_save streams "
            "memory: pre-copy loses the still-running source domain "
            "(the xl migrate sender), so the transfer can never "
            "complete and the family is simply lost with the host.",
            "The fleet declares the source dead through the normal "
            "power-off path: the migration is marked failed "
            "(``source-lost``), its un-streamed pages are accounted "
            "aborted, and the lost instances are re-placed cold on "
            "survivors — the target never activates a half-copied "
            "family, so no instance is ever live on both sides.",
        ),
        _site(
            "migration.target", SiteMode.EVENT, FaultKind.MIGRATION_ABORT,
            (FaultKind.MIGRATION_ABORT,),
            "The target host of an in-flight warm migration fail-stops "
            "mid-round, before (pre-copy) or after (post-copy) the "
            "family switched over to it.",
            "The receiving host dying under xl migrate: pre-copy "
            "restarts harmlessly (the source still runs), but "
            "post-copy's window of vulnerability means a target death "
            "after cutover loses the already-moved guest.",
            "Pre-cutover the migration aborts in place: un-streamed "
            "pages are accounted aborted and the family keeps running "
            "wholly at the source. Post-cutover (post-copy mode) the "
            "moved instances die with the target and are re-placed "
            "cold by the dead-host path — never left split.",
        ),
        _site(
            "migration.stream", SiteMode.EVENT, FaultKind.MIGRATION_ABORT,
            (FaultKind.MIGRATION_ABORT,),
            "The memory stream between source and target breaks "
            "mid-round; both hosts stay up.",
            "A TCP reset / network partition on the migration channel "
            "(the classic xl migrate failure): both hosts survive but "
            "the dirty-page stream is gone.",
            "Pre-cutover the migration aborts cleanly: the family "
            "keeps serving from the source, pages in flight are "
            "accounted aborted (conservation holds), and the planner "
            "may be re-run. Post-cutover (post-copy) the target "
            "cannot satisfy its demand faults, so its instances are "
            "torn down and re-placed cold — wholly at one side.",
        ),
        _site(
            "host.degraded", SiteMode.EVENT, FaultKind.HOST_DEGRADED,
            (FaultKind.HOST_DEGRADED,),
            "A host keeps serving but slowly (failing disk, thermal "
            "throttling, noisy neighbour).",
            "Grey failure: the host answers heartbeats, so timeout "
            "detection never fires, yet every operation on it is "
            "slower — the hardest tier for real fleets to handle.",
            "The fleet drains the host: it is excluded from new "
            "placement, existing instances keep running with a "
            "latency penalty charged to the fleet clock, and "
            "``Fleet.repair_host`` restores it.",
        ),
        _site(
            "frontdoor.admission", SiteMode.EVENT, FaultKind.ADMISSION_DROP,
            (FaultKind.ADMISSION_DROP,),
            "The admission filter sheds a first-try request that the "
            "token bucket and sojourn bound would have admitted.",
            "A load balancer in front of a Xen serving fleet shedding "
            "on a stale utilization signal — an haproxy maxconn or "
            "nginx limit_req tripping on a spike the backends had "
            "already absorbed.",
            "The request is counted shed, resolves immediately (the "
            "caller sees 429 + Retry-After, never a hang), and the "
            "offered == admitted + shed ledger in audit_frontdoor "
            "still balances — a spurious shed can cost goodput but "
            "never conservation.",
        ),
        _site(
            "frontdoor.replica_stall", SiteMode.EVENT,
            FaultKind.REPLICA_STALL, (FaultKind.REPLICA_STALL,),
            "A routed copy is swallowed by its replica: admitted, "
            "never served, immediately lost.",
            "A Unikraft replica wedged after accept() — the vif ring "
            "accepts the request but the guest never schedules the "
            "handler (the paper's §6 OpenFaaS pool with a hung "
            "worker), so the copy blackholes.",
            "The copy is accounted lost (copy conservation holds), "
            "the replica's circuit breaker records a failure — "
            "repeated stalls trip it OPEN and eject the replica from "
            "routing — and the request survives via its sibling "
            "copies or the retry budget.",
        ),
        _site(
            "frontdoor.breaker_flap", SiteMode.EVENT,
            FaultKind.BREAKER_FLAP, (FaultKind.BREAKER_FLAP,),
            "A healthy replica's circuit breaker trips spuriously, "
            "ejecting it from the routing set with no real failure "
            "behind it.",
            "Health-check flapping in a Xen serving fleet: a slow "
            "xenstore read or a dropped probe marks a live backend "
            "down, the classic grey-failure false positive.",
            "The breaker follows its normal lifecycle — OPEN for the "
            "cooldown, HALF_OPEN probes readmit the replica after "
            "frontdoor_breaker_cooldown — so a flap costs at most one "
            "cooldown window of that replica's capacity and the "
            "half-open probe path is exercised end to end.",
        ),
    )
}


def site_names() -> list[str]:
    """All registered site names, sorted."""
    return sorted(SITES)


def raise_sites() -> list[str]:
    """Names of the raise-mode sites (chaos plans target these)."""
    return sorted(name for name, site in SITES.items()
                  if site.mode is SiteMode.RAISE)


def drop_sites() -> list[str]:
    """Names of the drop-mode sites."""
    return sorted(name for name, site in SITES.items()
                  if site.mode is SiteMode.DROP)


def host_sites() -> list[str]:
    """Names of the host-level event-mode sites (the fleet tier)."""
    return sorted(name for name, site in SITES.items()
                  if site.mode is SiteMode.EVENT
                  and name.startswith("host."))


def migration_sites() -> list[str]:
    """Names of the migration-tier event-mode sites."""
    return sorted(name for name in SITES if name.startswith("migration."))


def frontdoor_sites() -> list[str]:
    """Names of the front-door resilience event-mode sites."""
    return sorted(name for name in SITES if name.startswith("frontdoor."))


#: Sites threaded through the KVM backend so far (the parity slice):
#: frame allocation fires from the shared FrameTable, EPT rebuild from
#: KVM_CLONE_VM, the kvmcloned wake-up from the clone loop, and device
#: re-plumbing from kvmcloned's second stage.
KVM_SITES: tuple[str, ...] = ("frames.alloc", "paging.build",
                              "notify.ring", "device.attach")
