"""Deterministic fault injection for the Nephele reproduction.

The cloning pipeline has many partial-failure points — grant
exhaustion, Xenstore transaction conflicts, notification-ring
backpressure, lost vIRQ wake-ups, device-attach errors. This package
makes those failures *schedulable*: a :class:`FaultPlan` arms named
injection sites (see :mod:`repro.faults.sites`) with deterministic
triggers, the :class:`FaultInjector` fires them from hooks threaded
through the hot paths, and :mod:`repro.faults.chaos` runs randomized
plans against a clone workload while auditing that nothing leaks.

The failure model (every site, its real-Xen analogue, its recovery
semantics) is documented in ``docs/FAULTS.md``; a test keeps that
document in sync with the registry.
"""

from repro.faults.chaos import (
    ChaosReport,
    audit_kvm_platform,
    audit_platform,
    run_chaos,
    run_kvm_chaos,
)
from repro.faults.injector import (
    NULL_INJECTOR,
    FaultInjector,
    InjectedFaultError,
    NullFaultInjector,
)
from repro.faults.plan import EMPTY_PLAN, FaultPlan, FaultPlanError, FaultSpec
from repro.faults.sites import (
    KVM_SITES,
    SITES,
    FaultKind,
    InjectionSite,
    host_sites,
    migration_sites,
    site_names,
)

__all__ = [
    "KVM_SITES",
    "SITES",
    "EMPTY_PLAN",
    "NULL_INJECTOR",
    "ChaosReport",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultPlanError",
    "FaultSpec",
    "InjectedFaultError",
    "InjectionSite",
    "NullFaultInjector",
    "audit_kvm_platform",
    "audit_platform",
    "host_sites",
    "migration_sites",
    "run_chaos",
    "run_kvm_chaos",
    "site_names",
]
