"""Command-line chaos runner: ``python -m repro.faults``.

Runs :func:`repro.faults.chaos.run_chaos` with a randomized (or
file-loaded) fault plan and reports the outcome. Exit status is
non-zero when the audit finds leaked resources or when two same-seed
runs diverge — the exact contract the chaos-smoke CI job enforces.

Examples::

    python -m repro.faults --list-sites
    python -m repro.faults --seed 0xC10E --faults 100 --runs 2
    python -m repro.faults --plan plan.json --json
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.faults.chaos import run_chaos, run_kvm_chaos
from repro.faults.plan import FaultPlan
from repro.faults.sites import SITES


def _parse_seed(text: str) -> int:
    return int(text, 0)


def build_parser() -> argparse.ArgumentParser:
    """The ``repro.faults`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Deterministic chaos runs against the Nephele "
                    "clone paths.")
    parser.add_argument("--seed", type=_parse_seed, default=0xC10E,
                        help="deterministic seed (default: 0xC10E)")
    parser.add_argument("--backend", choices=("xen", "kvm"), default="xen",
                        help="platform to storm: the Xen reproduction or "
                             "the KVM port (default: xen)")
    parser.add_argument("--faults", type=int, default=100,
                        help="fault budget for the randomized plan "
                             "(default: 100)")
    parser.add_argument("--plan", metavar="FILE",
                        help="load a FaultPlan from a JSON file instead "
                             "of randomizing one")
    parser.add_argument("--runs", type=int, default=1,
                        help="repeat the run N times and require "
                             "identical fingerprints (default: 1)")
    parser.add_argument("--parents", type=int, default=2,
                        help="parent guests to boot (default: 2)")
    parser.add_argument("--batch", type=int, default=3,
                        help="clones per batch (default: 3)")
    parser.add_argument("--rounds", type=int, default=None,
                        help="workload rounds (default: scales with "
                             "the fault budget)")
    parser.add_argument("--json", action="store_true",
                        help="print the machine-readable report")
    parser.add_argument("--list-sites", action="store_true",
                        help="print the injection-site registry and exit")
    return parser


def _load_plan(path: str) -> FaultPlan:
    with open(path, encoding="utf-8") as handle:
        return FaultPlan.from_dict(json.load(handle))


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns the exit status."""
    args = build_parser().parse_args(argv)

    if args.list_sites:
        for name, site in sorted(SITES.items()):
            kinds = ",".join(sorted(k.value for k in site.allowed_kinds))
            print(f"{name:<22} {site.mode.value:<6} {kinds:<24} "
                  f"{site.description}")
        return 0

    plan = _load_plan(args.plan) if args.plan else None
    runner = run_kvm_chaos if args.backend == "kvm" else run_chaos
    reports = []
    for _ in range(max(1, args.runs)):
        reports.append(runner(
            seed=args.seed, faults=args.faults, plan=plan,
            parents=args.parents, batch=args.batch, rounds=args.rounds))

    report = reports[0]
    status = 0
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(f"chaos run: seed {args.seed:#x}, plan {report.plan_name}")
        print(f"  clones: {report.clones_succeeded}/"
              f"{report.clones_attempted} succeeded, "
              f"{report.clone_errors} aborted operations")
        print(f"  transactions committed: {report.txn_attempts}")
        stats = report.fault_stats.get("stats", {})
        print(f"  faults: {stats.get('injected', 0)} injected, "
              f"{stats.get('recovered', 0)} recovered, "
              f"{stats.get('aborted', 0)} aborted")
        print(f"  virtual time: {report.clock_ms:.3f} ms")
        print(f"  fingerprint: {report.fingerprint}")

    if report.violations:
        status = 1
        print(f"LEAKS: {len(report.violations)} violations",
              file=sys.stderr)
        for violation in report.violations:
            print(f"  {violation}", file=sys.stderr)
    fingerprints = {r.fingerprint for r in reports}
    if len(fingerprints) > 1:
        status = 1
        print(f"DETERMINISM DRIFT: {len(fingerprints)} distinct "
              f"fingerprints across {len(reports)} same-seed runs",
              file=sys.stderr)
    elif len(reports) > 1:
        print(f"  determinism: {len(reports)} runs, identical "
              "fingerprints")
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
