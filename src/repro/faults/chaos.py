"""The chaos harness: randomized fault plans + leak auditing.

``run_chaos`` drives a clone-fleet workload (boots, clone batches from
Dom0 and from inside guests, COW writes, transactional Xenstore
updates, destroys, host traffic) on a platform armed with a fault plan,
then tears everything down and audits the platform for leaked frames,
grants, event endpoints, Xenstore nodes and bond slaves. The report
carries a fingerprint over every deterministic output, so two runs at
the same seed must produce byte-identical reports — the property the
chaos-smoke CI job pins.

Platform construction is imported lazily: this module is re-exported
by :mod:`repro.faults`, which the hypervisor imports, so a module-level
platform import would cycle.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ReproError
from repro.faults.plan import FaultPlan


@dataclass
class ChaosReport:
    """The deterministic outcome of one chaos run."""

    seed: int
    plan_name: str
    #: sha256 over the canonical JSON of every deterministic field.
    fingerprint: str = ""
    clones_attempted: int = 0
    clones_succeeded: int = 0
    clone_errors: int = 0
    txn_attempts: int = 0
    violations: list[str] = field(default_factory=list)
    fault_stats: dict[str, Any] = field(default_factory=dict)
    clock_ms: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (what the CLI prints with --json)."""
        return {
            "seed": self.seed,
            "plan": self.plan_name,
            "fingerprint": self.fingerprint,
            "clones_attempted": self.clones_attempted,
            "clones_succeeded": self.clones_succeeded,
            "clone_errors": self.clone_errors,
            "txn_attempts": self.txn_attempts,
            "violations": list(self.violations),
            "fault_stats": self.fault_stats,
            "clock_ms": self.clock_ms,
        }


def audit_platform(platform: Any) -> list[str]:
    """Leak oracle: every resource-conservation violation, as strings.

    Intended to run after all guests are destroyed (the chaos harness
    does), but every check except the frame-pool-refill one is valid at
    any quiescent point — the rollback-invariant tests reuse it
    mid-scenario.
    """
    violations: list[str] = []
    hyp = platform.hypervisor
    frames = hyp.frames

    try:
        frames.check_invariants()
    except AssertionError as error:
        violations.append(f"frame table: {error}")

    live = set(hyp.domains)
    from repro.xen.domid import DOM0, DOMID_COW, XEN_OWNER

    accounted = live | {DOM0, DOMID_COW, XEN_OWNER}
    for domid in range(1, hyp._next_domid):
        if domid in accounted:
            continue
        owned = frames.pages_owned(domid)
        if owned:
            violations.append(
                f"dead domain {domid} still owns {owned} frames")

    for domain in hyp.domains.values():
        for channel in domain.events.ports.values():
            for child_domid, _port in channel.child_endpoints:
                if child_domid not in live:
                    violations.append(
                        f"domain {domain.domid} port {channel.port} still "
                        f"lists dead child endpoint {child_domid}")
        for entry in domain.grants.entries.values():
            for mapper in entry.mapped_by:
                if mapper not in live:
                    violations.append(
                        f"domain {domain.domid} grant {entry.gref} still "
                        f"mapped by dead domain {mapper}")

    cloneop = platform.cloneop
    if cloneop._pending:
        violations.append(
            f"clone second stages still pending: {sorted(cloneop._pending)}")
    if len(cloneop.ring):
        violations.append(
            f"{len(cloneop.ring)} stale clone notifications in the ring")
    if cloneop._failed:
        violations.append(
            f"unconsumed clone failures: {sorted(cloneop._failed)}")
    for domid in cloneop._baselines:
        if domid not in live:
            violations.append(f"reset baseline leaked for dead domain {domid}")

    store = platform.xenstore
    recount = store._count_subtree(store.root) - 1
    if recount != store.node_count:
        violations.append(
            f"xenstore node_count drift: cached {store.node_count}, "
            f"actual {recount}")
    for domid in store.introduced:
        if domid not in live and domid != DOM0:
            violations.append(f"dead domain {domid} still introduced "
                              "to xenstored")
    for domid_dir in _domain_dirs(store):
        if domid_dir not in live and domid_dir != DOM0:
            violations.append(
                f"xenstore subtree /local/domain/{domid_dir} leaked")
    if store.transactions.open_count:
        violations.append(
            f"{store.transactions.open_count} xenstore transactions left open")

    dom0 = platform.dom0
    live_ports = {backend.port for backend in dom0.netback.backends.values()}
    for name, bond in dom0.bonds.items():
        for port in bond.slaves:
            if port not in live_ports:
                violations.append(f"bond {name} holds dead slave {port.name}")
    for group_id, group in dom0.ovs_groups.items():
        for port in group.buckets:
            if port not in live_ports:
                violations.append(
                    f"OVS group {group_id} holds dead bucket {port.name}")
    return violations


def _domain_dirs(store: Any) -> list[int]:
    """Domids with a ``/local/domain/<id>`` directory in the store."""
    try:
        entries = store.directory("/local/domain")
    except ReproError:
        return []
    return [int(entry) for entry in entries if entry.isdigit()]


def audit_kvm_platform(platform: Any) -> list[str]:
    """Leak oracle for the KVM backend, mirroring :func:`audit_platform`.

    Checks frame conservation, dead VMM processes still owning frames,
    stale child links, and dead taps left on the host bridge or
    enslaved in a family bond.
    """
    violations: list[str] = []
    host = platform.host

    try:
        host.frames.check_invariants()
    except AssertionError as error:
        violations.append(f"frame table: {error}")

    from repro.xen.domid import DOM0, DOMID_COW, XEN_OWNER

    live = set(host.vms)
    accounted = live | {DOM0, DOMID_COW, XEN_OWNER}
    for owner, owned in sorted(host.frames._owned.items()):
        if owner in accounted or not owned:
            continue
        violations.append(
            f"dead VMM process {owner} still owns {owned} frames")

    for vm in host.vms.values():
        for child in vm.children:
            if child not in live:
                violations.append(
                    f"VM {vm.pid} still lists dead child {child}")

    live_ports = {host.host_port}
    for vm in host.vms.values():
        if vm.net is not None:
            live_ports.add(vm.net.port)
    for port in host.bridge.ports:
        if port not in live_ports:
            violations.append(f"bridge holds dead tap {port.name}")
    for name, bond in host.bonds.items():
        for port in bond.slaves:
            if port not in live_ports:
                violations.append(f"bond {name} holds dead slave {port.name}")
    return violations


def run_kvm_chaos(seed: int = 0xC10E, faults: int = 100,
                  plan: FaultPlan | None = None, parents: int = 2,
                  batch: int = 3, rounds: int | None = None) -> ChaosReport:
    """The chaos workload against the KVM backend.

    Same shape as :func:`run_chaos` — boot parents disarmed, then clone
    batches, COW writes, family traffic and interleaved destroys under
    injection, full teardown, leak audit, deterministic fingerprint.
    Randomized plans draw from :data:`repro.faults.sites.KVM_SITES`,
    the registry slice the KVM_CLONE_VM path fires. There is no
    Xenstore on this backend, so ``txn_attempts`` stays zero.
    """
    if rounds is None:
        rounds = max(3, (faults * 3) // 4)
    from repro.apps.udp_server import UdpServerApp
    from repro.faults.sites import KVM_SITES
    from repro.kvm.platform import KvmPlatform
    from repro.sim.units import MIB

    if plan is None:
        plan = FaultPlan.randomized(seed, faults=faults,
                                    sites=list(KVM_SITES))
    platform = KvmPlatform(seed=seed, fault_plan=plan)
    report = ChaosReport(seed=seed, plan_name=plan.name)
    rng = platform.rng.fork("chaos-workload")

    if platform.faults.enabled:
        platform.faults.active = False
    roots: list[int] = []
    for i in range(parents):
        vm = platform.create_vm(f"chaos{i}", 16 * MIB,
                                ip=f"10.0.9.{i + 1}", max_clones=256,
                                app=UdpServerApp())
        roots.append(vm.pid)
    if platform.faults.enabled:
        platform.faults.active = True

    for round_index in range(rounds):
        for root in roots:
            report.clones_attempted += batch
            try:
                children = platform.clone(root, count=batch)
            except ReproError:
                report.clone_errors += 1
                children = []
            report.clones_succeeded += len(children)

            for child_pid in children:
                child = platform.host.vms.get(child_pid)
                if child is None or not child.memory.segments:
                    continue
                try:
                    child.memory.write_range(
                        child.memory.segments[0].pfn_start,
                        rng.randint(1, 4))
                except ReproError:
                    pass

            parent = platform.host.vms.get(root)
            if parent is not None and parent.children \
                    and parent.net is not None:
                try:
                    platform.host.send_to_guest(
                        parent.net.ip, 9000, payload=round_index,
                        src_port=40000 + round_index)
                except ReproError:
                    pass

            if children:
                victim = children[rng.randint(0, len(children) - 1)]
                try:
                    platform.destroy(victim)
                except ReproError:
                    report.clone_errors += 1

    for pid in sorted(platform.host.vms):
        try:
            platform.destroy(pid)
        except ReproError:
            report.clone_errors += 1

    report.violations = audit_kvm_platform(platform)
    report.fault_stats = platform.faults.report() \
        if platform.faults.enabled else {}
    report.clock_ms = round(platform.clock.now, 6)
    payload = report.to_dict()
    payload.pop("fingerprint")
    report.fingerprint = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()
    return report


def run_chaos(seed: int = 0xC10E, faults: int = 100,
              plan: FaultPlan | None = None, parents: int = 2,
              batch: int = 3, rounds: int | None = None) -> ChaosReport:
    """One chaos run: workload under injection, teardown, audit.

    Every step that can fail is wrapped: an injected fault may abort a
    clone batch (or a single child within one), and the workload keeps
    going — exactly the graceful degradation the hardening promises.
    ``rounds`` defaults to scaling with the fault budget so the workload
    outlives the armed specs: the run must also exercise the
    no-fault-left steady state, not just back-to-back failures.
    Returns a :class:`ChaosReport` whose fingerprint covers all
    deterministic outputs.
    """
    if rounds is None:
        rounds = max(3, (faults * 3) // 4)
    from repro.apps.udp_server import UdpServerApp
    from repro.platform import Platform
    from repro.toolstack.config import DomainConfig, VifConfig

    if plan is None:
        plan = FaultPlan.randomized(seed, faults=faults)
    platform = Platform.create(seed=seed, fault_plan=plan)
    report = ChaosReport(seed=seed, plan_name=plan.name)
    rng = platform.rng.fork("chaos-workload")
    handle = platform.dom0.handle

    # The chaos target is the *clone* paths: boot the parent fleet with
    # injection disarmed, then arm it for the workload.
    if platform.faults.enabled:
        platform.faults.active = False
    roots: list[int] = []
    for i in range(parents):
        config = DomainConfig(name=f"chaos{i}", memory_mb=4,
                              vifs=[VifConfig(ip=f"10.0.9.{i + 1}")],
                              max_clones=256)
        domain = platform.xl.create(config, app=UdpServerApp())
        roots.append(domain.domid)
    if platform.faults.enabled:
        platform.faults.active = True

    for round_index in range(rounds):
        for root in roots:
            parent = platform.hypervisor.domains.get(root)
            if parent is None:
                continue
            report.clones_attempted += batch
            try:
                children = platform.xl.clone(root, count=batch)
            except ReproError:
                report.clone_errors += 1
                children = []
            report.clones_succeeded += len(children)

            # Touch clone memory: deterministic COW writes.
            for child_domid in children:
                child = platform.hypervisor.domains.get(child_domid)
                if child is None or not child.memory.segments:
                    continue
                try:
                    child.memory.write_range(
                        child.memory.segments[0].pfn_start,
                        rng.randint(1, 4))
                except ReproError:
                    pass

            # Transactional Xenstore update with bounded retry.
            def _bump(h: Any, tid: int,
                      path: str = f"/chaos/round{round_index}/d{root}") -> None:
                h.t_write(tid, path, str(round_index))

            try:
                handle.run_transaction(_bump)
                report.txn_attempts += 1
            except ReproError:
                report.clone_errors += 1

            # Host traffic towards the family (exercises bond/OVS).
            parent = platform.hypervisor.domains.get(root)
            if parent is not None and parent.children:
                vif = parent.frontends.get("vif")
                if vif:
                    try:
                        platform.dom0.send_to_guest(
                            vif[0].ip, 9000, payload=round_index,
                            src_port=40000 + round_index)
                    except ReproError:
                        pass

            # Destroy one child per round: teardown interleaved with
            # injection must not leak either.
            if children:
                victim = children[rng.randint(0, len(children) - 1)]
                try:
                    platform.xl.destroy(victim)
                except ReproError:
                    report.clone_errors += 1

    # Full teardown: every guest goes; the audit below must be clean.
    for domid in sorted(platform.hypervisor.domains):
        try:
            platform.xl.destroy(domid)
        except ReproError:
            report.clone_errors += 1

    report.violations = audit_platform(platform)
    report.fault_stats = platform.faults.report() \
        if platform.faults.enabled else {}
    report.clock_ms = round(platform.clock.now, 6)
    payload = report.to_dict()
    payload.pop("fingerprint")
    report.fingerprint = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()
    return report
