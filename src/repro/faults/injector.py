"""The fault injector: the runtime half of :mod:`repro.faults`.

Hooks threaded through the clone hot paths call :meth:`FaultInjector.fire`
(raise-mode sites) or :meth:`FaultInjector.dropped` (drop-mode sites)
with their call context. The injector matches armed specs, draws
probabilistic triggers from a *forked* RNG stream (so fault draws never
shift any other component's sequence), and raises the real exception
type of the failing layer. Recovery paths report back via
:meth:`recovered`/:meth:`aborted`, giving the
``faults.injected/recovered/aborted`` counters in :mod:`repro.obs`.

Mirroring :data:`repro.obs.tracer.NULL_TRACER`, the module-level
:data:`NULL_INJECTOR` is what every component defaults to: an un-faulted
platform pays one no-op method call per hook and nothing else, which is
what keeps the golden figure series byte-identical with an empty plan.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ReproError
from repro.faults.plan import EMPTY_PLAN, FaultKind, FaultPlan, FaultSpec
from repro.obs.tracer import NULL_TRACER


class InjectedFaultError(ReproError):
    """Generic injected I/O-style failure (kind ``eio``).

    Sites with a domain-specific error contract raise the real type
    (ENOMEM -> XenNoMemoryError, EAGAIN -> TransactionConflict,
    RING_FULL -> RingFullError); this class covers the rest.
    """


class NullFaultInjector:
    """The disabled injector: every hook is a no-op.

    Instrumented sites call straight into these methods without
    checking a flag first; the cost of a disabled hook is one method
    call and zero allocations (the NULL_TRACER pattern).
    """

    __slots__ = ()

    enabled = False

    def fire(self, site: str, **ctx: Any) -> None:
        """Never raises (injection is disabled)."""

    def dropped(self, site: str, **ctx: Any) -> bool:
        """Never drops (injection is disabled)."""
        return False

    def event(self, site: str, **ctx: Any) -> bool:
        """Never fires (injection is disabled)."""
        return False

    def recovered(self, site: str) -> None:
        """Discard a recovery report."""

    def aborted(self, site: str) -> None:
        """Discard an abort report."""


#: The process-wide disabled injector; components default to this.
NULL_INJECTOR = NullFaultInjector()


class _ArmedSpec:
    """Mutable per-run trigger state wrapped around one FaultSpec."""

    __slots__ = ("spec", "hits", "fired")

    def __init__(self, spec: FaultSpec) -> None:
        self.spec = spec
        #: Matching hook hits seen so far (drives ``after``).
        self.hits = 0
        #: Injections produced so far (drives ``count``).
        self.fired = 0

    @property
    def exhausted(self) -> bool:
        """True once the spec's injection budget is spent."""
        count = self.spec.count
        return count is not None and self.fired >= count


class FaultInjector:
    """Deterministic fault injection driven by a plan, clock and RNG."""

    enabled = True

    def __init__(self, plan: FaultPlan | None = None, clock: Any = None,
                 rng: Any = None, tracer: Any = None) -> None:
        self.plan = plan if plan is not None else EMPTY_PLAN
        self.clock = clock
        self.rng = rng
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Master arm switch: harnesses clear it while setting up state
        #: whose failure they are not studying (e.g. booting the parent
        #: fleet before a clone-path chaos run).
        self.active = True
        self.stats = {"injected": 0, "recovered": 0, "aborted": 0}
        #: Per-site counters: site -> {injected, recovered, aborted}.
        self.by_site: dict[str, dict[str, int]] = {}
        self._armed: dict[str, list[_ArmedSpec]] = {}
        for spec in self.plan.specs:
            self._armed.setdefault(spec.site, []).append(_ArmedSpec(spec))

    # ------------------------------------------------------------------
    # hook surface
    # ------------------------------------------------------------------
    def fire(self, site: str, **ctx: Any) -> None:
        """Raise-mode hook: raises the armed error, if any spec matches.

        Hot-path cost with no spec armed for ``site`` is one dict get.
        """
        kind = self._match(site, ctx)
        if kind is not None:
            raise self._error_for(kind, site, ctx)

    def dropped(self, site: str, **ctx: Any) -> bool:
        """Drop-mode hook: True when the event should be silently lost."""
        return self._match(site, ctx) is not None

    def event(self, site: str, **ctx: Any) -> bool:
        """Event-mode hook: True when the armed failure happens now.

        Used by control planes that *react* to a failure rather than
        receive an exception — the host-level sites of the fleet tier.
        """
        return self._match(site, ctx) is not None

    def arm(self, spec: FaultSpec) -> None:
        """Arm one additional spec at runtime.

        The fleet layer uses this to make a host crash take down an
        in-flight clone batch through the existing whole-batch
        rollback: it arms a one-shot per-operation fault on the dying
        host just before running the batch.
        """
        self.plan.specs.append(spec)
        self._armed.setdefault(spec.site, []).append(_ArmedSpec(spec))

    def recovered(self, site: str) -> None:
        """A hardened path survived a failure at ``site`` (retry won)."""
        self.stats["recovered"] += 1
        self._site_stats(site)["recovered"] += 1
        self.tracer.count("faults.recovered")

    def aborted(self, site: str) -> None:
        """A failure at ``site`` escalated to a (clean) clone abort."""
        self.stats["aborted"] += 1
        self._site_stats(site)["aborted"] += 1
        self.tracer.count("faults.aborted")

    # ------------------------------------------------------------------
    # matching
    # ------------------------------------------------------------------
    def _match(self, site: str, ctx: dict[str, Any]) -> FaultKind | None:
        if not self.active:
            return None
        armed = self._armed.get(site)
        if not armed:
            return None
        for entry in armed:
            if entry.exhausted:
                continue
            spec = entry.spec
            if spec.after_ms and (self.clock is None
                                  or self.clock.now < spec.after_ms):
                continue
            if spec.match and any(ctx.get(key) != value
                                  for key, value in spec.match.items()):
                continue
            if spec.predicate is not None and not spec.predicate(ctx):
                continue
            entry.hits += 1
            if entry.hits <= spec.after:
                continue
            if spec.probability < 1.0:
                if self.rng is None or self.rng.random() >= spec.probability:
                    continue
            entry.fired += 1
            self.stats["injected"] += 1
            self._site_stats(site)["injected"] += 1
            self.tracer.count("faults.injected")
            self.tracer.event("fault.injected", site=site,
                              fault_kind=spec.resolved_kind.value)
            return spec.resolved_kind
        return None

    def _site_stats(self, site: str) -> dict[str, int]:
        stats = self.by_site.get(site)
        if stats is None:
            stats = self.by_site[site] = {
                "injected": 0, "recovered": 0, "aborted": 0}
        return stats

    def _error_for(self, kind: FaultKind, site: str,
                   ctx: dict[str, Any]) -> ReproError:
        # Imported lazily: the injector is imported by the layers whose
        # exception types it raises, so module-level imports would cycle.
        detail = ", ".join(f"{k}={v!r}" for k, v in sorted(ctx.items())
                           if not callable(v))
        message = f"injected {kind.value} at {site}" + (
            f" ({detail})" if detail else "")
        if kind is FaultKind.ENOMEM:
            from repro.xen.errors import XenNoMemoryError

            return XenNoMemoryError(message)
        if kind is FaultKind.EAGAIN:
            from repro.xenstore.transactions import TransactionConflict

            return TransactionConflict(message)
        if kind is FaultKind.RING_FULL:
            from repro.core.notify_ring import RingFullError

            return RingFullError(message)
        return InjectedFaultError(message)

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self) -> dict[str, Any]:
        """Machine-readable injection report (JSON-serializable)."""
        return {
            "plan": self.plan.name,
            "specs": len(self.plan.specs),
            "stats": dict(self.stats),
            "by_site": {site: dict(stats)
                        for site, stats in sorted(self.by_site.items())},
        }

    def format_report(self) -> str:
        """Human-readable per-site counter table for the CLI."""
        lines = [f"fault plan: {self.plan.name or '(unnamed)'} "
                 f"({len(self.plan.specs)} specs)",
                 f"{'site':<22} {'injected':>9} {'recovered':>10} "
                 f"{'aborted':>8}"]
        for site, stats in sorted(self.by_site.items()):
            lines.append(f"{site:<22} {stats['injected']:>9} "
                         f"{stats['recovered']:>10} {stats['aborted']:>8}")
        totals = self.stats
        lines.append(f"{'total':<22} {totals['injected']:>9} "
                     f"{totals['recovered']:>10} {totals['aborted']:>8}")
        return "\n".join(lines)
