"""Nephele reproduction: cloning unikernel-based VMs on a simulated Xen.

Reproduces Lupu et al., "Nephele: Extending Virtualization Environments
for Cloning Unikernel-based VMs" (EuroSys 2023) as a deterministic
discrete-event simulation. See DESIGN.md for the system inventory and
EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.api import NepheleSession, SessionError
from repro.errors import ReproError
from repro.fleet.fleet import CloneResult, FamilyPlacement
from repro.frontdoor.results import (
    DispatchResult,
    DispatchTimeout,
    FrontDoorError,
    HostInventory,
    NoCapacity,
)
from repro.frontdoor.session import FleetSession
from repro.guest.app import GuestApp
from repro.platform import Platform, PlatformConfig
from repro.sim import CostModel
from repro.toolstack.config import DomainConfig, P9Config, VifConfig

__version__ = "1.0.0"

__all__ = [
    "NepheleSession",
    "FleetSession",
    "Platform",
    "PlatformConfig",
    "CostModel",
    "DomainConfig",
    "VifConfig",
    "P9Config",
    "GuestApp",
    "CloneResult",
    "FamilyPlacement",
    "DispatchResult",
    "HostInventory",
    "ReproError",
    "SessionError",
    "FrontDoorError",
    "DispatchTimeout",
    "NoCapacity",
    "__version__",
]
