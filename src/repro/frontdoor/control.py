"""The REST-ish control plane over a fleet (openvim httpserver shape).

One production-style entry point for everything the fleet can do:
family lifecycle (create / list / clone / destroy), host inventory, and
request dispatch. The router maps ``(method, path regex)`` pairs to
handler methods exactly like openvim's ``httpserver.py`` maps Bottle
routes onto ``vim_db`` operations — minus the HTTP server itself: the
simulation speaks :meth:`ControlPlane.handle` directly, and every
handler is also a plain typed-result method (``inventory()``,
``dispatch(...)``) for callers that do not want to marshal dicts.

Error mapping follows the usual REST conventions: unknown resources are
404, malformed requests 400, conflicts 409, :class:`NoCapacity` 503,
:class:`DispatchTimeout` 504 and :class:`Overloaded` 429 — the latter
with a deterministic ``retry_after_ms`` hint from the analytic PS model
— all carried as :class:`Response` objects rather than exceptions, so
scenario scripts can assert on status codes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.apps.udp_server import UdpServerApp
from repro.errors import ReproError
from repro.fleet.fleet import Fleet, FleetError
from repro.frontdoor.dispatch import AutoscalePolicy, FrontDoor
from repro.frontdoor.resilience import ResiliencePolicy
from repro.frontdoor.results import (
    DispatchResult,
    DispatchTimeout,
    FrontDoorError,
    HostInfo,
    HostInventory,
    NoCapacity,
    Overloaded,
)
from repro.toolstack.config import DomainConfig, VifConfig

#: Guest app factories a family may be created with over the wire
#: (factories are code, so the API names them instead of carrying them).
APP_FACTORIES: dict[str, Callable[[], Any] | None] = {
    "udp": UdpServerApp,
    "none": None,
}


@dataclass(frozen=True)
class Response:
    """One control-plane response: an HTTP-ish status plus a body."""

    status: int
    body: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


class ControlPlane:
    """The front-door facade: REST-ish routes over fleet + dispatcher."""

    def __init__(self, fleet: Fleet, frontdoor: FrontDoor | None = None
                 ) -> None:
        self.fleet = fleet
        self.frontdoor = (frontdoor if frontdoor is not None
                          else FrontDoor(fleet))
        #: The route table, openvim-style: first match wins.
        self._routes: list[tuple[str, re.Pattern[str], Callable[..., Any]]]
        self._routes = [
            ("GET", re.compile(r"^/hosts$"), self._route_hosts),
            ("GET", re.compile(r"^/hosts/(?P<name>[^/]+)$"),
             self._route_host),
            ("POST", re.compile(r"^/hosts/(?P<name>[^/]+)/drain$"),
             self._route_drain),
            ("GET", re.compile(r"^/status$"), self._route_status),
            ("GET", re.compile(r"^/families$"), self._route_families),
            ("POST", re.compile(r"^/families$"), self._route_create),
            ("GET", re.compile(r"^/families/(?P<name>[^/]+)$"),
             self._route_family),
            ("DELETE", re.compile(r"^/families/(?P<name>[^/]+)$"),
             self._route_destroy),
            ("POST", re.compile(r"^/families/(?P<name>[^/]+)/clone$"),
             self._route_clone),
            ("POST", re.compile(r"^/dispatch$"), self._route_dispatch),
        ]

    # ------------------------------------------------------------------
    # the router
    # ------------------------------------------------------------------
    def handle(self, method: str, path: str,
               body: dict[str, Any] | None = None) -> Response:
        """Route one request; never raises — errors become statuses."""
        method = method.upper()
        matched_path = False
        for route_method, pattern, handler in self._routes:
            match = pattern.match(path)
            if match is None:
                continue
            matched_path = True
            if route_method != method:
                continue
            try:
                return handler(body or {}, **match.groupdict())
            except Overloaded as exc:
                # Shed by admission control: 429, not 503 — the
                # capacity exists, the client is asked to back off for
                # a deterministic PS-model sojourn.
                return Response(429, {
                    "error": str(exc),
                    "retry_after_ms": round(exc.retry_after_ms, 6)})
            except NoCapacity as exc:
                return Response(503, {"error": str(exc)})
            except DispatchTimeout as exc:
                return Response(504, {"error": str(exc)})
            except FleetError as exc:
                # Placement exhaustion surfaces as 503 whichever layer
                # (dispatcher or fleet) ran out of room first.
                capacity = "no host" in str(exc)
                return Response(503 if capacity else 400,
                                {"error": str(exc)})
            except FrontDoorError as exc:
                return Response(400, {"error": str(exc)})
            except ReproError as exc:
                return Response(500, {"error": str(exc)})
        if matched_path:
            return Response(405, {"error": f"{method} not allowed on {path}"})
        return Response(404, {"error": f"no route for {path}"})

    # ------------------------------------------------------------------
    # typed verbs (the handlers delegate here)
    # ------------------------------------------------------------------
    def inventory(self) -> HostInventory:
        """The fleet's host inventory, as a typed snapshot."""
        infos = []
        for host in self.fleet.hosts:
            replicas = tuple(sorted(
                family.name for family in self.fleet.families.values()
                if host.name in family.replicas))
            clones = sum(len(family.clones.get(host.name, ()))
                         for family in self.fleet.families.values())
            infos.append(HostInfo(
                name=host.name, state=host.state.value,
                free_frames=host.free_frames,
                guests=host.platform.guest_count(),
                replicas=replicas, clones=clones))
        return HostInventory(hosts=tuple(infos),
                             policy=self.fleet.policy.name,
                             beats=self.fleet.beats,
                             clock_ms=round(self.fleet.clock.now, 6))

    def create_family(self, name: str, *, memory_mb: int = 4,
                      ip: str | None = None, app: str = "udp",
                      max_clones: int = 1024) -> dict[str, Any]:
        """Create + place a cloneable family; returns its placement."""
        if app not in APP_FACTORIES:
            raise FrontDoorError(
                f"unknown app {app!r} (known: {sorted(APP_FACTORIES)})")
        vifs = [VifConfig(ip=ip)] if ip is not None else []
        config = DomainConfig(name=name, memory_mb=memory_mb, vifs=vifs,
                              max_clones=max_clones)
        placement = self.fleet.create_family(
            config, app_factory=APP_FACTORIES[app])
        return placement.to_dict()

    def drain_host(self, name: str,
                   mode: str = "precopy") -> dict[str, Any]:
        """Evacuate a host: warm-migrate every family it holds away.

        Returns the host's new state plus the planned migration
        records; the migrations stream on subsequent heartbeats (drive
        them with ``dispatch(..., heartbeat_every_ms=...)`` or
        ``fleet.run_heartbeats``).
        """
        if mode not in ("precopy", "postcopy"):
            raise FrontDoorError(
                f"unknown migration mode {mode!r} "
                f"(known: precopy, postcopy)")
        records = self.fleet.drain_host(name, mode=mode)
        return {
            "host": name,
            "state": self.fleet.host(name).state.value,
            "migrations": [record.to_dict() for record in records],
        }

    def dispatch(self, family: str, workload: str = "faas", *,
                 requests: int = 1000, arrival_rps: float = 100.0,
                 clone_factor: int = 1, timeout_ms: float | None = None,
                 autoscale: AutoscalePolicy | None = None,
                 heartbeat_every_ms: float | None = None,
                 resilience: ResiliencePolicy | None = None,
                 report_segments: int = 0,
                 label: str = "") -> DispatchResult:
        """Run a request-dispatch workload against a family."""
        return self.frontdoor.run_workload(
            family, workload, requests=requests, arrival_rps=arrival_rps,
            clone_factor=clone_factor, timeout_ms=timeout_ms,
            autoscale=autoscale, heartbeat_every_ms=heartbeat_every_ms,
            resilience=resilience, report_segments=report_segments,
            label=label)

    # ------------------------------------------------------------------
    # route handlers
    # ------------------------------------------------------------------
    def _route_hosts(self, body: dict[str, Any]) -> Response:
        return Response(200, self.inventory().to_dict())

    def _route_host(self, body: dict[str, Any], name: str) -> Response:
        try:
            info = self.inventory().host(name)
        except FrontDoorError as exc:
            return Response(404, {"error": str(exc)})
        return Response(200, info.to_dict())

    def _route_drain(self, body: dict[str, Any], name: str) -> Response:
        if name not in {host.name for host in self.fleet.hosts}:
            return Response(404, {"error": f"unknown host {name!r}"})
        return Response(200, self.drain_host(
            name, mode=str(body.get("mode", "precopy"))))

    def _route_status(self, body: dict[str, Any]) -> Response:
        return Response(200, {
            "fleet": self.fleet.report(),
            "frontdoor": self.frontdoor.report(),
        })

    def _route_families(self, body: dict[str, Any]) -> Response:
        return Response(200, {
            "families": sorted(self.fleet.families),
        })

    def _route_family(self, body: dict[str, Any], name: str) -> Response:
        family = self.fleet.families.get(name)
        if family is None:
            return Response(404, {"error": f"unknown family {name!r}"})
        migration = family.migration
        return Response(200, {
            "name": family.name,
            "origin": family.origin,
            "replicas": dict(sorted(family.replicas.items())),
            "clones": {host: sorted(domids) for host, domids
                       in sorted(family.clones.items())},
            # Placement-change counter the front door keys its pool
            # cache on: a poller can skip re-reading the placement
            # whenever the epoch has not moved.
            "topology_epoch": self.fleet.topology_epoch,
            # Live migration state: ``migrating`` while a warm move is
            # streaming; the host pair and round progress come from the
            # family's latest migration record (null if never migrated).
            "migrating": bool(migration is not None and migration.active),
            "source_host": (migration.source if migration is not None
                            else None),
            "target_host": (migration.target if migration is not None
                            else None),
            "rounds_done": (migration.rounds_done
                            if migration is not None else 0),
            # Per-replica circuit-breaker state for this family's pool
            # (null when the front door runs without a resilience
            # policy): lets an operator see which replicas dispatch is
            # currently routing around.
            "resilience": self.frontdoor.family_resilience(name),
        })

    def _route_create(self, body: dict[str, Any]) -> Response:
        name = body.get("name")
        if not name or not isinstance(name, str):
            return Response(400, {"error": "family 'name' is required"})
        if name in self.fleet.families:
            return Response(409,
                            {"error": f"family {name!r} already exists"})
        placement = self.create_family(
            name, memory_mb=int(body.get("memory_mb", 4)),
            ip=body.get("ip"), app=body.get("app", "udp"),
            max_clones=int(body.get("max_clones", 1024)))
        return Response(201, placement)

    def _route_destroy(self, body: dict[str, Any], name: str) -> Response:
        if name not in self.fleet.families:
            return Response(404, {"error": f"unknown family {name!r}"})
        self.fleet.destroy_family(name)
        return Response(200, {"destroyed": name})

    def _route_clone(self, body: dict[str, Any], name: str) -> Response:
        if name not in self.fleet.families:
            return Response(404, {"error": f"unknown family {name!r}"})
        count = int(body.get("count", 1))
        result = self.fleet.clone_family(name, count=count)
        return Response(200, result.to_dict())

    def _route_dispatch(self, body: dict[str, Any]) -> Response:
        family = body.get("family")
        if not family or not isinstance(family, str):
            return Response(400, {"error": "'family' is required"})
        if family not in self.fleet.families:
            return Response(404, {"error": f"unknown family {family!r}"})
        timeout = body.get("timeout_ms")
        policy = body.get("resilience")
        if policy is not None and not isinstance(policy, ResiliencePolicy):
            policy = ResiliencePolicy(**policy)
        result = self.dispatch(
            family, body.get("workload", "faas"),
            requests=int(body.get("requests", 1000)),
            arrival_rps=float(body.get("arrival_rps", 100.0)),
            clone_factor=int(body.get("clone_factor", 1)),
            timeout_ms=None if timeout is None else float(timeout),
            resilience=policy,
            report_segments=int(body.get("report_segments", 0)),
            label=str(body.get("label", "")))
        if result.offered and result.shed == result.offered:
            # Admission shed the whole run: the aggregate analogue of
            # the single-request 429, with the same deterministic hint.
            return Response(429, {
                "error": f"all {result.offered} requests shed",
                "retry_after_ms": round(self.frontdoor.retry_after_hint_ms(
                    family, body.get("workload", "faas")), 6),
                "result": result.to_dict()})
        return Response(200, result.to_dict())
