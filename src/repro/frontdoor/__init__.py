"""The fleet front door: control-plane facade + request dispatcher.

- :mod:`repro.frontdoor.control` — REST-ish routes over the fleet
  (openvim ``httpserver.py`` shape).
- :mod:`repro.frontdoor.dispatch` — the request-cloning load balancer
  (processor-sharing replicas, first-response-wins, cancellation on the
  virtual clock).
- :mod:`repro.frontdoor.model` — the analytic processor-sharing curves
  the headline experiment validates against.
- :mod:`repro.frontdoor.resilience` — overload protection (admission
  control, brownout, retry budgets, circuit breakers) and the seeded
  overload-storm smoke.
- :mod:`repro.frontdoor.session` — ``FleetSession``, the multi-host
  counterpart of ``NepheleSession``.
"""

from repro.frontdoor.control import APP_FACTORIES, ControlPlane, Response
from repro.frontdoor.dispatch import (
    DISPATCH_RTT_MS,
    AutoscalePolicy,
    FrontDoor,
    ReplicaServer,
)
from repro.frontdoor.resilience import (
    CircuitBreaker,
    ResiliencePolicy,
    RetryBudget,
    StormReport,
    TokenBucket,
    format_storm_report,
    run_overload_storm,
    storm_policy,
)
from repro.frontdoor.results import (
    DispatchResult,
    DispatchTimeout,
    FrontDoorError,
    HostInfo,
    HostInventory,
    NoCapacity,
    Overloaded,
)
from repro.frontdoor.session import FleetSession

__all__ = [
    "APP_FACTORIES",
    "AutoscalePolicy",
    "CircuitBreaker",
    "ControlPlane",
    "DISPATCH_RTT_MS",
    "DispatchResult",
    "DispatchTimeout",
    "FleetSession",
    "FrontDoor",
    "FrontDoorError",
    "HostInfo",
    "HostInventory",
    "NoCapacity",
    "Overloaded",
    "ReplicaServer",
    "ResiliencePolicy",
    "Response",
    "RetryBudget",
    "StormReport",
    "TokenBucket",
    "format_storm_report",
    "run_overload_storm",
    "storm_policy",
]
