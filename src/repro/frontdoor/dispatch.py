"""The request-dispatch load balancer: request cloning + cancellation.

The front door sends simulated user traffic at the clone replicas a
:class:`~repro.fleet.Fleet` placed across its member hosts. Every
replica is modelled as a **processor-sharing server** on the fleet's
virtual clock: it delivers one work-millisecond per virtual
millisecond, shared equally among the requests it currently serves —
the service model of "Modeling of Request Cloning in Cloud Server
Systems using Processor Sharing" (PAPERS.md).

Request cloning (that paper's subject): each incoming request is
dispatched to ``clone_factor`` distinct replicas; all copies carry the
*same* service demand (synchronized service). The first copy to finish
completes the request and the remaining copies are **cancelled on the
virtual clock**, their partially delivered service counted as waste.
Cloning therefore buys tail latency (the winner is the copy on the
least-contended replica) at the price of extra load — past a capacity
knee the waste saturates the fleet and the tail blows up, which is
exactly the trade-off the headline experiment
(:mod:`repro.experiments.frontdoor_p99`) measures against the model's
analytic curves.

The PS servers use **virtual-time (attained-service) accounting**: each
server keeps a virtual clock ``V`` that advances by ``rate / n`` per
wall millisecond with ``n`` jobs in service, each copy records its
finish virtual time ``V_admit + demand`` once at admission, and
departures come from a per-server min-heap keyed on finish-V — so
advancing the server is O(1) in the number of resident jobs and finding
the next departure is a heap peek, instead of the O(n) decrement/scan
of the naive formulation. Because float subtraction is not associative,
the heap keys are treated as *hints* only: every remaining-work value
that feeds a simulation decision is reproduced by lazily replaying the
server's exact per-advance share history against the copy (see
``ReplicaServer.exact_remaining``), which keeps the latency series
byte-identical to the sequential per-job-decrement formulation the
equivalence suite keeps as an oracle.

Determinism: arrivals, demands and routing each draw from their own
forked RNG stream keyed by (family, shape, label), all events run on
one :class:`~repro.sim.engine.Engine` bound to the fleet clock, and the
:class:`~repro.frontdoor.results.DispatchResult` fingerprint covers the
full per-request latency series — same seed, same bytes.
"""

from __future__ import annotations

import hashlib
import heapq
import json
from array import array
from functools import partial
from typing import TYPE_CHECKING, Any

from repro.apps.traffic import RequestShape, as_shape
from repro.frontdoor.model import expected_sojourn_ms, retry_after_ms
from repro.frontdoor.resilience import ResiliencePolicy, ResilienceState
from repro.frontdoor.results import (
    DispatchResult,
    DispatchTimeout,
    FrontDoorError,
    NoCapacity,
    Overloaded,
)
from repro.obs.registry import LATENCY_BUCKET_BOUNDS, MetricsRegistry
from repro.sim.engine import Engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.fleet import Fleet

#: Remaining-work epsilon below which a copy counts as finished
#: (absorbs float drift from repeated processor-sharing advances).
EPS = 1e-9

#: Network round trip through the load balancer (route + response
#: forwarding), added to every completed request's latency. A module
#: constant rather than a CostModel field, like the per-workload
#: calibrations in :mod:`repro.apps` — it never touches the shared
#: fleet clock, so control-plane charges cannot skew arrival times.
DISPATCH_RTT_MS = 0.08

#: Service-rate multiplier of a replica on a DEGRADED (grey) host.
DEGRADED_RATE = 0.5

#: Per-replica concurrency cap (listen backlog): a copy routed to a
#: full replica is rejected at admission. Bounds the per-departure
#: candidate set, and keeps past-the-knee runs finite.
MAX_JOBS_PER_SERVER = 256

#: Copy lifecycle states.
_ACTIVE, _WON, _CANCELLED, _LOST, _TIMED_OUT = range(5)

#: Departure heaps smaller than this are never compacted (the engine's
#: ``_COMPACT_MIN`` discipline): popping past a handful of dead entries
#: is cheaper than rebuilding.
_HEAP_COMPACT_MIN = 64

#: Share-history length at which the server considers dropping the
#: prefix every resident job has already replayed.
_HIST_COMPACT = 4096


class _Copy:
    """One clone copy of a request, in service at one replica.

    ``remaining_ms`` is exact *as of* ``sync_idx`` advances of the
    server's share history; ``ReplicaServer.exact_remaining`` replays
    the missed shares in order before the value is trusted. ``vkey``
    (finish virtual time) is the departure-heap hint and is never used
    for a simulation decision directly.
    """

    __slots__ = ("request", "server", "remaining_ms", "consumed_ms",
                 "state", "in_service", "seq", "vkey", "v_admit",
                 "sync_idx", "job_idx")

    def __init__(self, request: "_Request", server: "ReplicaServer") -> None:
        self.request = request
        self.server = server
        self.remaining_ms = request.demand_ms
        self.consumed_ms = 0.0
        self.state = _ACTIVE
        self.in_service = False
        self.seq = 0
        self.vkey = 0.0
        self.v_admit = 0.0
        self.sync_idx = 0
        self.job_idx = -1


class _Request:
    """One user request: demand plus its live copies."""

    __slots__ = ("rid", "t_arrive_ms", "demand_ms", "copies", "resolved",
                 "timeout_event", "attempts")

    def __init__(self, rid: int, t_arrive_ms: float, demand_ms: float) -> None:
        self.rid = rid
        self.t_arrive_ms = t_arrive_ms
        self.demand_ms = demand_ms
        self.copies: list[_Copy] = []
        self.resolved = False
        self.timeout_event = None
        #: Dispatch attempts so far, the first try included. Retries
        #: (resilience layer) bump this; ``t_arrive_ms`` keeps the
        #: *original* arrival so latency and deadline cover the retries.
        self.attempts = 1

    def active_copies(self) -> list[_Copy]:
        return [c for c in self.copies if c.state == _ACTIVE]


class ReplicaServer:
    """One clone replica as a processor-sharing server.

    The server delivers ``rate`` work-ms per virtual ms, split equally
    over its current jobs; ``work_done_ms`` accounts every delivered
    work-ms exactly once (the conservation law ``audit_fleet`` checks).

    Accounting is virtual-time: ``advance`` appends one share to the
    history and bumps ``vclock`` — O(1) — while each copy's exact
    remaining work is recovered on demand by replaying the shares it
    has not yet seen, in order, reproducing the naive formulation's
    float subtraction chain bit for bit.
    """

    __slots__ = ("host", "domid", "rate", "jobs", "last_ms",
                 "work_done_ms", "departure_event", "depart_cb", "alive",
                 "draining", "vclock", "hint_seq", "_hist", "_hist_base",
                 "_heap", "_heap_dead", "_seq", "_compact_at")

    def __init__(self, host: str, domid: int, now_ms: float) -> None:
        self.host = host
        self.domid = domid
        self.rate = 1.0
        self.jobs: list[_Copy] = []
        self.last_ms = now_ms
        self.work_done_ms = 0.0
        self.departure_event = None
        self.depart_cb = None
        self.alive = True
        #: Host is DRAINING (mid-migration): resilient routing avoids
        #: it unless it is the only capacity left.
        self.draining = False
        #: Cumulative per-job service (virtual time), in work-ms.
        self.vclock = 0.0
        #: Token of this server's single *live* departure hint in the
        #: dispatcher's hint heap. Every push bumps it, superseding
        #: all earlier hints for the server — a popped entry whose
        #: token no longer matches is dead and drops for free.
        self.hint_seq = 0
        #: Exact share of each advance since ``_hist_base``.
        self._hist: list[float] = []
        self._hist_base = 0
        #: Departure heap of (finish-V hint, admission seq, copy).
        self._heap: list[tuple[float, int, _Copy]] = []
        self._heap_dead = 0
        self._seq = 0
        self._compact_at = _HIST_COMPACT

    @property
    def key(self) -> tuple[str, int]:
        return (self.host, self.domid)

    def admit(self, copy: _Copy) -> None:
        """Put a copy in service (does not advance the clock)."""
        copy.seq = self._seq
        self._seq += 1
        copy.v_admit = self.vclock
        copy.sync_idx = self._hist_base + len(self._hist)
        copy.remaining_ms = copy.request.demand_ms
        copy.vkey = self.vclock + copy.request.demand_ms
        copy.in_service = True
        copy.job_idx = len(self.jobs)
        self.jobs.append(copy)
        heapq.heappush(self._heap, (copy.vkey, copy.seq, copy))

    def advance(self, now_ms: float) -> None:
        """Deliver the processor-sharing service earned since last call."""
        dt = now_ms - self.last_ms
        self.last_ms = now_ms
        jobs = self.jobs
        if dt <= 0.0 or not jobs:
            return
        share = dt * self.rate / len(jobs)
        hist = self._hist
        hist.append(share)
        self.vclock += share
        self.work_done_ms += dt * self.rate
        if len(hist) >= self._compact_at:
            self._compact_history()

    def _compact_history(self) -> None:
        """Drop the share prefix every resident job has replayed."""
        floor = min(copy.sync_idx for copy in self.jobs)
        cut = floor - self._hist_base
        if cut > 0:
            del self._hist[:cut]
            self._hist_base = floor
        self._compact_at = len(self._hist) + _HIST_COMPACT

    def exact_remaining(self, copy: _Copy) -> float:
        """Remaining work of ``copy``, bit-identical to the naive chain.

        Replays the shares appended since the copy's last sync, in
        order — the same sequence of float subtractions the per-job
        decrement formulation would have applied.
        """
        start = copy.sync_idx - self._hist_base
        hist = self._hist
        end = len(hist)
        if start < end:
            remaining = copy.remaining_ms
            for share in hist[start:end]:
                remaining -= share
            copy.remaining_ms = remaining
            copy.sync_idx = self._hist_base + end
        return copy.remaining_ms

    def consumed_of(self, copy: _Copy) -> float:
        """Service delivered to ``copy`` so far (as of the last advance)."""
        return self.vclock - copy.v_admit

    def _margin(self) -> float:
        """Bound on |heap hint − exact remaining| float drift.

        Each replayed share perturbs the exact chain by at most an ulp;
        the hint ``vkey − vclock`` accumulates the same scale of error.
        Jobs resident for the entire megascale run see ~1e4 shares of
        magnitude ≤ vclock, so 1e-9 · vclock (plus an absolute floor)
        over-covers the worst case by several orders of magnitude.
        """
        return 1e-6 + 1e-9 * self.vclock

    def _prune_heap(self) -> None:
        heap = self._heap
        pop = heapq.heappop
        while heap and not heap[0][2].in_service:
            pop(heap)
            self._heap_dead -= 1

    def soonest_remaining(self) -> float:
        """Exact minimum remaining work over resident jobs.

        The heap orders jobs by finish-V hint; every live entry within
        the drift margin of the top is synced exactly and the exact
        minimum taken, so the result equals the naive ``min()`` scan
        bit for bit while touching O(candidates) jobs instead of all.
        """
        self._prune_heap()
        heap = self._heap
        top = heap[0]
        limit = top[0] + self._margin()
        n = len(heap)
        if n > 1:
            second = heap[1][0]
            if n > 2 and heap[2][0] < second:
                second = heap[2][0]
            if second <= limit:
                return self._soonest_among(limit)
        return self.exact_remaining(top[2])

    def _soonest_among(self, limit: float) -> float:
        """Exact min over the (rare) multi-candidate margin window."""
        heap = self._heap
        pop = heapq.heappop
        push = heapq.heappush
        popped = []
        best = None
        while heap and heap[0][0] <= limit:
            entry = pop(heap)
            copy = entry[2]
            if not copy.in_service:
                self._heap_dead -= 1
                continue
            popped.append(entry)
            remaining = self.exact_remaining(copy)
            if best is None or remaining < best:
                best = remaining
        for entry in popped:
            push(heap, entry)
        return best

    def next_departure_ms(self) -> float:
        """Absolute time the soonest job finishes, given no changes.

        Flattened :meth:`soonest_remaining`: this runs once per admit,
        cancel and departure — the single hottest call in a megascale
        dispatch — so the prune / margin-check / history-sync steps are
        inlined for the overwhelmingly common single-candidate case.
        """
        heap = self._heap
        entry = heap[0]
        if not entry[2].in_service:
            pop = heapq.heappop
            dead = self._heap_dead
            while True:
                pop(heap)
                dead -= 1
                entry = heap[0]
                if entry[2].in_service:
                    break
            self._heap_dead = dead
        limit = entry[0] + 1e-6 + 1e-9 * self.vclock
        n = len(heap)
        if n > 1:
            second = heap[1][0]
            if n > 2 and heap[2][0] < second:
                second = heap[2][0]
            if second <= limit:
                soonest = self._soonest_among(limit)
                if soonest < 0.0:
                    soonest = 0.0
                return self.last_ms + soonest * len(self.jobs) / self.rate
        copy = entry[2]
        start = copy.sync_idx - self._hist_base
        hist = self._hist
        end = len(hist)
        remaining = copy.remaining_ms
        if start < end:
            for share in hist[start:end]:
                remaining -= share
            copy.remaining_ms = remaining
            copy.sync_idx = self._hist_base + end
        if remaining < 0.0:
            remaining = 0.0
        return self.last_ms + remaining * len(self.jobs) / self.rate

    def bound_departure_ms(self) -> float:
        """Cheap lower bound on :meth:`next_departure_ms`.

        The heap-top finish-V hint understates the exact minimum
        remaining work by at most the drift margin, so subtracting the
        margin gives a sound early bound without replaying any share
        history. Departure hints pushed at this time pop just before
        the true departure and recompute it exactly, once — the eager
        exact computation on every reschedule was mostly wasted work,
        since under load the hint goes stale before it ever pops.
        """
        heap = self._heap
        entry = heap[0]
        if not entry[2].in_service:
            pop = heapq.heappop
            dead = self._heap_dead
            while True:
                pop(heap)
                dead -= 1
                entry = heap[0]
                if entry[2].in_service:
                    break
            self._heap_dead = dead
        remaining = entry[0] - self.vclock - (1e-6 + 1e-9 * self.vclock)
        if remaining < 0.0:
            remaining = 0.0
        return self.last_ms + remaining * len(self.jobs) / self.rate

    def finished_jobs(self) -> list[_Copy]:
        """Jobs whose exact remaining work is ≤ EPS, in admission order."""
        self._prune_heap()
        heap = self._heap
        if not heap:
            return []
        limit = self.vclock + EPS + self._margin()
        if heap[0][0] > limit:
            return []
        pop = heapq.heappop
        push = heapq.heappush
        popped = []
        finished: list[_Copy] = []
        while heap and heap[0][0] <= limit:
            entry = pop(heap)
            copy = entry[2]
            if not copy.in_service:
                self._heap_dead -= 1
                continue
            popped.append(entry)
            if self.exact_remaining(copy) <= EPS:
                finished.append(copy)
        for entry in popped:
            push(heap, entry)
        if len(finished) > 1:
            finished.sort(key=lambda c: c.seq)
        return finished

    def remove(self, copy: _Copy) -> None:
        """Take a copy out of service (won, cancelled or timed out).

        The heap entry is left behind as garbage (lazy deletion) and
        reclaimed either when it surfaces or when dead entries come to
        outnumber live ones — the engine's compaction discipline.

        ``jobs`` is an unordered bag (swap-remove keeps departures
        O(1) instead of scanning up to ``MAX_JOBS_PER_SERVER`` slots):
        nothing simulation-visible reads its order — departures come
        out of :meth:`finished_jobs` sorted by admission ``seq``.
        """
        jobs = self.jobs
        idx = copy.job_idx
        last = jobs.pop()
        if last is not copy:
            jobs[idx] = last
            last.job_idx = idx
        copy.job_idx = -1
        copy.in_service = False
        self._heap_dead += 1
        heap = self._heap
        if self._heap_dead * 2 > len(heap) and len(heap) >= _HEAP_COMPACT_MIN:
            rebuilt = [(c.vkey, c.seq, c) for c in self.jobs]
            heapq.heapify(rebuilt)
            self._heap = rebuilt
            self._heap_dead = 0
        if not self.jobs and self._hist:
            self._hist_base += len(self._hist)
            self._hist.clear()
            self._compact_at = _HIST_COMPACT

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ReplicaServer({self.host}/{self.domid}, "
                f"{len(self.jobs)} jobs, rate {self.rate})")


class _Run:
    """Mutable state of one ``run_workload`` invocation.

    Latencies live in a flat ``array('d')`` with NaN marking
    failed/timed-out/in-flight slots (1M requests fit in 8 MB instead
    of a list of boxed floats); counters are slotted ints bumped on the
    hot path and flushed into the front door's ``stats`` dict once at
    run end.
    """

    __slots__ = ("requests", "latencies", "resolved", "admitted",
                 "rejected", "completed", "failed", "timed_out", "copies",
                 "copies_won", "copies_cancelled", "copies_lost",
                 "copies_timed_out", "work_served", "work_useful",
                 "offered", "shed", "retries", "family", "clone_factor",
                 "timeout_ms", "mean_service_ms")

    def __init__(self, requests: int) -> None:
        self.requests = requests
        #: Per-rid latency (NaN = failed / timed out / in flight).
        self.latencies = array("d", [float("nan")]) * requests
        self.resolved = 0
        self.admitted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.timed_out = 0
        self.copies = 0
        self.copies_won = 0
        self.copies_cancelled = 0
        self.copies_lost = 0
        self.copies_timed_out = 0
        self.work_served = 0.0
        self.work_useful = 0.0
        #: First tries offered to admission (== admitted + shed).
        self.offered = 0
        self.shed = 0
        self.retries = 0
        # Run context the resilience layer (admission sheds, retries)
        # needs off the hot path; set once by ``run_workload``.
        self.family = ""
        self.clone_factor = 1
        self.timeout_ms: float | None = None
        self.mean_service_ms = 0.0


class FrontDoor:
    """The fleet's request-dispatch tier.

    One front door per fleet; server pools are per clone family (every
    parent replica and every placed clone serves requests). The front
    door owns its own event engine bound to the fleet clock and its own
    metrics registry, so per-request latency histograms exist even on
    untraced fleets.
    """

    def __init__(self, fleet: "Fleet",
                 max_jobs_per_server: int = MAX_JOBS_PER_SERVER,
                 resilience: "ResiliencePolicy | None" = None) -> None:
        self.fleet = fleet
        self.engine = Engine(fleet.clock)
        self.rng = fleet.rng.fork("frontdoor")
        self.registry = MetricsRegistry()
        self.max_jobs_per_server = max_jobs_per_server
        #: Default overload-resilience policy for every run (may be
        #: overridden per ``run_workload`` call); ``None`` keeps the
        #: resilience layer entirely off the hot path.
        self.resilience = resilience
        #: Persistent resilience runtime (breakers, retry budget) —
        #: survives across runs so breaker state sees history.
        self._res: ResilienceState | None = None
        #: The *current run's* resilience state (None when the run has
        #: no policy): the only thing hot paths test.
        self._active_res: ResilienceState | None = None
        #: Fault injector for the frontdoor.* sites, non-None only
        #: during a resilient run with faults enabled.
        self._inj = None
        #: family name -> ordered replica pool.
        self._pools: dict[str, dict[tuple[str, int], ReplicaServer]] = {}
        #: family name -> flat pool view + the fleet topology epoch it
        #: was derived at. ``refresh`` only re-enumerates a family when
        #: the fleet's ``topology_epoch`` moved.
        self._pool_lists: dict[str, list[ReplicaServer]] = {}
        self._pool_epochs: dict[str, int] = {}
        #: Work delivered by replicas that have since died or been
        #: retired from a pool — keeps the conservation ledger whole.
        self.retired_work_ms = 0.0
        #: The in-progress ``run_workload`` bookkeeping (None between runs).
        self._run: _Run | None = None
        self._hist = None
        #: Fast-path departure-hint heap of ``(when, seq, token, exact,
        #: server)`` (None outside a fast-path run — slow/interleaved
        #: runs keep departures as engine events). Each server owns one
        #: *live* hint: every state-changing push bumps its
        #: ``hint_seq`` token, superseding earlier entries, which then
        #: drop for free at peek. A live entry's ``when`` is a valid
        #: lower bound on the server's next departure; ``exact`` marks
        #: bounds already settled by ``next_departure_ms`` — those fire
        #: directly, while a popped bound converts with exactly one
        #: exact recompute.
        self._dep_heap: list | None = None
        self._dep_seq = 0
        self.stats: dict[str, Any] = {
            "requests": 0,
            "completed": 0,
            "failed": 0,
            "timed_out": 0,
            "copies": 0,
            "copies_won": 0,
            "copies_cancelled": 0,
            "copies_lost": 0,
            "copies_timed_out": 0,
            "rejected_no_capacity": 0,
            "servers_retired": 0,
            "autoscale_events": 0,
            "work_served_ms": 0.0,
            "work_useful_ms": 0.0,
            "offered": 0,
            "shed": 0,
            "retries": 0,
            "breaker_trips": 0,
        }

    # ------------------------------------------------------------------
    # replica pools
    # ------------------------------------------------------------------
    def refresh(self, family: str) -> list[ReplicaServer]:
        """Sync the family's server pool with the fleet's live state.

        New replicas/clones join the pool; instances whose host died
        (or which were destroyed) retire — their in-flight copies are
        reported lost, and a request whose last copy is lost fails.
        Hosts marked DEGRADED serve at :data:`DEGRADED_RATE`.

        The enumeration is keyed on ``fleet.topology_epoch``: while the
        fleet reports no placement/host-state change, the cached pool
        view is returned without re-walking (or re-sorting) the family.
        """
        fleet = self.fleet
        fam = fleet.families.get(family)
        if fam is None:
            raise FrontDoorError(f"unknown family {family!r}")
        epoch = fleet.topology_epoch
        if self._pool_epochs.get(family) == epoch:
            cached = self._pool_lists.get(family)
            if cached is not None:
                return cached
        pool = self._pools.setdefault(family, {})
        now = fleet.clock.now
        live: set[tuple[str, int]] = set()
        entries = ([(h, d) for h, d in sorted(fam.replicas.items())]
                   + [(h, d) for h in sorted(fam.clones)
                      for d in fam.clones[h]])
        for host_name, domid in entries:
            host = fleet.host(host_name)
            if not host.alive or domid not in host.platform.hypervisor.domains:
                continue
            live.add((host_name, domid))
            server = pool.get((host_name, domid))
            if server is None:
                server = pool[(host_name, domid)] = ReplicaServer(
                    host_name, domid, now)
            server.rate = (DEGRADED_RATE if host.state.value == "degraded"
                           else 1.0)
            server.draining = host.state.value == "draining"
        for key in [k for k in pool if k not in live]:
            self._retire(pool.pop(key), now)
        view = list(pool.values())
        self._pool_lists[family] = view
        self._pool_epochs[family] = epoch
        return view

    def _retire(self, server: ReplicaServer, now_ms: float) -> None:
        """A replica left the pool (host death or destroy): orphan its
        copies; a request with no surviving copy fails."""
        server.advance(now_ms)
        server.alive = False
        self.retired_work_ms += server.work_done_ms
        if server.departure_event is not None:
            server.departure_event.cancel()
            server.departure_event = None
        self.stats["servers_retired"] += 1
        vclock = server.vclock
        for copy in list(server.jobs):
            copy.consumed_ms = vclock - copy.v_admit
            server.remove(copy)
            copy.state = _LOST
            self._end_copy(copy)
            request = copy.request
            if not request.resolved and not request.active_copies():
                self._fail(request)

    # ------------------------------------------------------------------
    # workload runs
    # ------------------------------------------------------------------
    def run_workload(self, family: str, shape: "RequestShape | str", *,
                     requests: int, arrival_rps: float,
                     clone_factor: int = 1,
                     timeout_ms: float | None = None,
                     autoscale: "AutoscalePolicy | None" = None,
                     heartbeat_every_ms: float | None = None,
                     label: str = "",
                     resilience: "ResiliencePolicy | None" = None,
                     report_segments: int = 0) -> DispatchResult:
        """Dispatch an open-loop Poisson request stream at the family.

        Each request is cloned to ``clone_factor`` distinct replicas
        (first response wins, the rest are cancelled). ``autoscale``
        grows the family during the run; ``heartbeat_every_ms``
        interleaves fleet heartbeat rounds (and pool refreshes) with
        the traffic, which is how host-kill chaos composes with
        dispatch. ``resilience`` (or the front door's default policy)
        arms admission control, brownout, budgeted retries and circuit
        breakers for this run; ``report_segments`` adds a per-segment
        completed-count series to the result (goodput over virtual
        time). Returns a :class:`DispatchResult`.
        """
        shape = as_shape(shape)
        if requests < 1:
            raise FrontDoorError(f"non-positive request count: {requests}")
        if clone_factor < 1:
            raise FrontDoorError(f"non-positive clone factor: {clone_factor}")
        if arrival_rps <= 0:
            raise FrontDoorError(f"non-positive arrival rate: {arrival_rps}")
        if report_segments < 0:
            raise FrontDoorError(f"negative report_segments: {report_segments}")
        pool = self.refresh(family)
        if len(pool) < clone_factor:
            raise NoCapacity(
                f"family {family!r} has {len(pool)} ready replicas, "
                f"need clone_factor={clone_factor}")

        policy = resilience if resilience is not None else self.resilience
        res = None
        if policy is not None:
            res = self._res
            if res is None or res.policy != policy:
                res = self._res = ResilienceState(
                    policy, self.rng, self.fleet.clock.now)
        self._active_res = res
        faults = self.fleet.faults
        self._inj = (faults if res is not None
                     and getattr(faults, "enabled", False) else None)

        base = self.rng.fork(f"dispatch:{family}:{shape.name}:{label}")
        arrival_rng = base.fork("arrivals")
        demand_rng = base.fork("demand")
        route_rng = base.fork("route")
        run = _Run(requests)
        run.family = family
        run.clone_factor = clone_factor
        run.timeout_ms = timeout_ms
        run.mean_service_ms = shape.mean_service_ms
        self._run = run
        self._hist = self.registry.histogram(
            f"frontdoor.latency.{family}.{shape.name}.d{clone_factor}",
            bounds=LATENCY_BUCKET_BOUNDS)
        t_start = self.fleet.clock.now
        mean_gap_ms = 1000.0 / arrival_rps

        # Pre-generate the whole arrival process in one pass per RNG
        # stream: the streams are independent forks, so batch order
        # draws the same values the per-event interleaving would have.
        expo = arrival_rng.expovariate
        gap_rate = 1.0 / mean_gap_ms
        arrivals = array("d", (expo(gap_rate) for _ in range(requests)))
        t_next = t_start
        for index, gap in enumerate(arrivals):
            t_next += gap
            arrivals[index] = t_next
        expo = demand_rng.expovariate
        demand_rate = 1.0 / shape.mean_service_ms
        demands = array("d", (expo(demand_rate) for _ in range(requests)))

        periodic = []
        if heartbeat_every_ms is not None:
            def beat() -> None:
                self.fleet.tick()
                self.refresh(family)
            periodic.append(self.engine.every(heartbeat_every_ms, beat))
        if autoscale is not None:
            window = {"seen": 0}

            def check_scale() -> None:
                arrived = run.admitted - window["seen"]
                window["seen"] = run.admitted
                self._autoscale_check(family, autoscale, arrived)
            periodic.append(self.engine.every(
                autoscale.check_interval_ms, check_scale))

        # Drive until every request resolved, bounded by a drain guard.
        guard = 60 * requests + 100_000
        steps = 0
        if not periodic:
            # Fast path: no periodic events means nothing else charges
            # the fleet clock mid-run, so arrival times never need the
            # max(t, now) clamp. Three event sources merge directly:
            # the pre-generated arrival array, the engine queue (only
            # request timeouts live there now) and the departure-hint
            # heap. Arrival wins ties; engine beats hints on ties.
            engine = self.engine
            next_time = engine.next_time
            step = engine.step
            clock = self.fleet.clock
            admit = self._admit
            depart = self._depart
            heappop = heapq.heappop
            heappush = heapq.heappush
            self._dep_heap = dep = []
            self._dep_seq = 0
            rid = 0
            try:
                while run.resolved < requests:
                    # Earliest live departure hint (dead servers and
                    # drained hints are dropped on the way).
                    while dep:
                        head = dep[0]
                        hint_server = head[4]
                        if (head[2] == hint_server.hint_seq
                                and hint_server.jobs
                                and hint_server.alive):
                            break
                        heappop(dep)
                    t_dep = dep[0][0] if dep else None
                    t_engine = next_time()
                    if t_engine is not None and (t_dep is None
                                                 or t_engine <= t_dep):
                        t_next_ev = t_engine
                        src_engine = True
                    else:
                        t_next_ev = t_dep
                        src_engine = False
                    if rid < requests and (t_next_ev is None
                                           or arrivals[rid] <= t_next_ev):
                        t_arrive = arrivals[rid]
                        if t_arrive > clock._now:
                            clock._now = t_arrive
                        admit(run, rid, demands[rid], family, clone_factor,
                              route_rng, timeout_ms)
                        rid += 1
                    elif src_engine:
                        step()
                    elif t_next_ev is not None:
                        when, _seq, token, exact, server = heappop(dep)
                        if not exact:
                            # A live bound: the server saw no admits or
                            # removals since the push, so one exact
                            # recompute settles its true departure. If
                            # the bound was already tight, fire now;
                            # otherwise convert it to an exact hint and
                            # let the heap re-order it.
                            true_when = server.next_departure_ms()
                            if true_when != when:
                                if true_when < clock._now:
                                    true_when = clock._now
                                server.hint_seq = ntoken = token + 1
                                self._dep_seq = nseq = self._dep_seq + 1
                                heappush(dep, (true_when, nseq, ntoken,
                                               True, server))
                                steps += 1
                                continue
                        if when > clock._now:
                            clock._now = when
                        depart(server)
                    else:
                        raise FrontDoorError(
                            "dispatch engine drained with "
                            f"{requests - run.resolved} unresolved "
                            "requests")
                    steps += 1
                    if steps > guard:
                        raise FrontDoorError(
                            "dispatch failed to drain "
                            f"(engine ran {steps} events)")
            finally:
                self._dep_heap = None
        else:
            # Slow path (heartbeats / autoscale interleaved): arrivals
            # stay engine events so control-plane clock charges keep
            # deferring them, but gaps and demands still come from the
            # pre-generated arrays.
            state = {"next_rid": 0}

            def arrive() -> None:
                rid = state["next_rid"]
                state["next_rid"] = rid + 1
                self._admit(run, rid, demands[rid], family, clone_factor,
                            route_rng, timeout_ms)
                if rid + 1 < requests:
                    self.engine.schedule_at(
                        max(arrivals[rid + 1], self.fleet.clock.now), arrive)

            self.engine.schedule_at(arrivals[0], arrive)
            while run.resolved < requests:
                if not self.engine.step():
                    raise FrontDoorError(
                        "dispatch engine drained with "
                        f"{requests - run.resolved} unresolved requests")
                steps += 1
                if steps > guard:
                    raise FrontDoorError("dispatch failed to drain "
                                         f"(engine ran {steps} events)")
        for handle in periodic:
            handle.cancel()
        self._flush_run(run)
        self._run = None
        self._hist = None
        self._active_res = None
        self._inj = None
        duration = self.fleet.clock.now - t_start
        return self._finalize(
            run, family, shape, clone_factor, arrival_rps, duration,
            work_served=run.work_served, work_useful=run.work_useful,
            resilient=res is not None, report_segments=report_segments)

    def dispatch_one(self, family: str, shape: "RequestShape | str", *,
                     clone_factor: int = 1,
                     timeout_ms: float | None = None) -> float:
        """Dispatch one request synchronously; returns its latency (ms).

        Raises :class:`NoCapacity` when the family lacks replicas and
        :class:`DispatchTimeout` when the request missed its deadline.
        """
        result = self.run_workload(
            family, shape, requests=1, arrival_rps=1000.0,
            clone_factor=clone_factor, timeout_ms=timeout_ms,
            label=f"one:{self.stats['requests']}")
        if result.shed and not result.completed:
            raise Overloaded(
                f"request to {family!r} shed by admission control",
                retry_after_ms=self.retry_after_hint_ms(family, shape))
        if result.timed_out:
            raise DispatchTimeout(
                f"request to {family!r} exceeded {timeout_ms} ms")
        if not result.completed:
            raise NoCapacity(f"request to {family!r} found no capacity")
        return result.latency_mean_ms

    def retry_after_hint_ms(self, family: str,
                            shape: "RequestShape | str") -> float:
        """Deterministic ``Retry-After`` hint for a shed request.

        One expected PS sojourn at the family's current mean queue
        depth (:func:`repro.frontdoor.model.retry_after_ms`) — the
        control plane turns this into the 429 response's hint.
        """
        shape = as_shape(shape)
        pool = self.refresh(family)
        depth = (sum(len(s.jobs) for s in pool) / len(pool)
                 if pool else 0.0)
        return retry_after_ms(shape.mean_service_ms, depth)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _admit(self, run: _Run, rid: int, demand_ms: float, family: str,
               clone_factor: int, route_rng, timeout_ms: float | None) -> None:
        now = self.fleet.clock.now
        pool = self._pool_lists.get(family)
        if pool is None:
            pool = self._pool_lists[family] = list(
                self._pools.get(family, {}).values())
        run.offered += 1
        res = self._active_res
        if res is not None:
            clone_factor = self._gatekeep(run, res, now, pool)
            if clone_factor < 0:
                run.shed += 1
                run.resolved += 1
                return
            res.budget.note_first_try()
        run.admitted += 1
        request = _Request(rid, now, demand_ms)
        placed: list[ReplicaServer] = []
        npool = len(pool)
        if npool:
            want = clone_factor if clone_factor < npool else npool
            # randint(0, n-1) is exactly Random._randbelow(n) in CPython
            # (randrange with zero start and unit step), and _randbelow
            # is a rejection loop over getrandbits(n.bit_length()) —
            # inlined here so each draw costs one C call instead of
            # three Python frames, while consuming the identical bit
            # stream and producing the identical index sequence.
            getrandbits = route_rng._random.getrandbits
            nbits = npool.bit_length()
            cap = self.max_jobs_per_server
            found = 0
            tried_mask = 0
            tried = 0
            while found < want and tried < npool:
                index = getrandbits(nbits)
                while index >= npool:
                    index = getrandbits(nbits)
                bit = 1 << index
                if tried_mask & bit:
                    continue
                tried_mask |= bit
                tried += 1
                server = pool[index]
                if len(server.jobs) >= cap:
                    continue
                if res is not None and not self._routable(res, server, now):
                    continue
                placed.append(server)
                found += 1
            if res is not None and not placed:
                self._fallback_place(res, pool, placed, want, cap, now)
        if not placed:
            run.rejected += 1
            self._fail(request, run)
            return
        copies = request.copies
        dep = self._dep_heap
        heappush = heapq.heappush
        inj = self._inj
        stalled = 0
        for server in placed:
            copy = _Copy(request, server)
            copies.append(copy)
            if inj is not None and inj.event(
                    "frontdoor.replica_stall", op="route",
                    host=server.host, domid=server.domid):
                # The replica swallows the copy: admitted, never
                # served, immediately lost (consumed 0 work). Copy
                # conservation holds; the breaker records a failure.
                copy.state = _LOST
                self._end_copy(copy)
                self._breaker_failure(res, server.key, now)
                stalled += 1
                continue
            # Inlined ReplicaServer.advance(now) — the single hottest
            # call site (one per admitted copy), worth the frame.
            dt = now - server.last_ms
            server.last_ms = now
            jobs = server.jobs
            if dt > 0.0 and jobs:
                rate = server.rate
                share = dt * rate / len(jobs)
                hist = server._hist
                hist.append(share)
                server.vclock += share
                server.work_done_ms += dt * rate
                if len(hist) >= server._compact_at:
                    server._compact_history()
            # Inlined ReplicaServer.admit(copy).
            copy.seq = cseq = server._seq
            server._seq = cseq + 1
            copy.v_admit = vclock = server.vclock
            copy.sync_idx = server._hist_base + len(server._hist)
            copy.remaining_ms = demand_ms
            copy.vkey = vkey = vclock + demand_ms
            copy.in_service = True
            copy.job_idx = len(jobs)
            jobs.append(copy)
            heappush(server._heap, (vkey, cseq, copy))
            if dep is not None:
                # An admit never needs the exact departure time up
                # front — except for an empty server, whose sole fresh
                # job departs at exactly now + demand/rate: that hint
                # is exact and fires without any recompute (the common
                # case at light load). Busy servers get the cheap
                # bound, converted to exact only when it pops.
                server.hint_seq = token = server.hint_seq + 1
                self._dep_seq = seq = self._dep_seq + 1
                if len(jobs) == 1:
                    heappush(dep, (now + demand_ms / server.rate, seq,
                                   token, True, server))
                else:
                    bound = server.bound_departure_ms()
                    if bound < now:
                        bound = now
                    heappush(dep, (bound, seq, token, False, server))
            else:
                self._reschedule(server, now)
        run.copies += len(placed)
        if res is not None:
            if stalled == len(placed):
                self._fail(request, run)
                return
            deadline = res.policy.deadline_ms
            if deadline is not None:
                # Deadline propagation: the attempt's timeout never
                # outlives the request deadline, so doomed copies are
                # cancelled early instead of simmered.
                slack = request.t_arrive_ms + deadline - now
                if timeout_ms is None or slack < timeout_ms:
                    timeout_ms = slack
        if timeout_ms is not None:
            request.timeout_event = self.engine.schedule_at(
                now + timeout_ms, lambda: self._expire(request, run))

    # ------------------------------------------------------------------
    # resilience internals (only reached when a policy is active)
    # ------------------------------------------------------------------
    def _gatekeep(self, run: _Run, res: ResilienceState, now: float,
                  pool: list[ReplicaServer]) -> int:
        """Admission control for one first-try request.

        Returns the effective clone factor — brownout may have
        degraded it toward 1 — or ``-1`` to shed. Order: fault site,
        token bucket, brownout, then the PS expected-sojourn bound and
        the deadline, both evaluated at the browned-out clone factor.
        """
        policy = res.policy
        inj = self._inj
        if inj is not None and inj.event("frontdoor.admission",
                                         op="admit", family=run.family):
            res.note_shed("fault")
            return -1
        if res.bucket is not None and not res.bucket.take(now):
            res.note_shed("bucket")
            return -1
        depth = 0.0
        npool = len(pool)
        if npool:
            jobs = 0
            for server in pool:
                jobs += len(server.jobs)
            depth = jobs / npool
        d = res.effective_clone_factor(run.clone_factor, depth)
        bound = policy.sojourn_bound_ms
        deadline = policy.deadline_ms
        if bound is not None or deadline is not None:
            expected = expected_sojourn_ms(run.mean_service_ms, depth, d)
            if bound is not None and expected > bound:
                res.note_shed("sojourn")
                return -1
            if deadline is not None and expected > deadline:
                res.note_shed("deadline")
                return -1
        if inj is not None and inj.event("frontdoor.breaker_flap",
                                         op="admit", family=run.family):
            self._flap_breaker(res, pool, now)
        return d

    def _routable(self, res: ResilienceState, server: ReplicaServer,
                  now: float) -> bool:
        """May routing place a copy on ``server`` right now?"""
        if server.draining and res.policy.route_around_draining:
            return False
        breaker = res.breakers.get(server.key)
        return breaker is None or breaker.allow(now)

    def _fallback_place(self, res: ResilienceState,
                        pool: list[ReplicaServer],
                        placed: list[ReplicaServer], want: int, cap: int,
                        now: float) -> None:
        """Routing skipped every sampled candidate: a deterministic
        pool-order pass readmits DRAINING replicas (better than failing
        the request outright) — but never an OPEN breaker."""
        for server in pool:
            if len(server.jobs) >= cap:
                continue
            if not res.allow_route(server.key, now):
                continue
            placed.append(server)
            if len(placed) >= want:
                return

    def _flap_breaker(self, res: ResilienceState,
                      pool: list[ReplicaServer], now: float) -> None:
        """The breaker-flap fault site: spuriously trip the breaker of
        the most-loaded pool replica (ties break to pool order)."""
        if not pool or not res.policy.breaker_window:
            return
        target = pool[0]
        for server in pool[1:]:
            if len(server.jobs) > len(target.jobs):
                target = server
        breaker = res.breaker_for(target.key)
        if breaker is not None and breaker.force_open(now):
            res.breaker_trips += 1
            self.stats["breaker_trips"] += 1
            self.fleet.tracer.count("frontdoor.breaker_trips")

    def _breaker_failure(self, res: ResilienceState, key: tuple[str, int],
                         now: float) -> None:
        """Feed a copy failure to the replica's breaker."""
        if res.record_failure(key, now):
            self.stats["breaker_trips"] += 1
            self.fleet.tracer.count("frontdoor.breaker_trips")

    def _retry(self, request: _Request, run: _Run, res: ResilienceState,
               now: float) -> bool:
        """Client-side retry gate: attempts, deadline, then the budget.

        ``True`` means a retry was granted and scheduled (the request
        stays unresolved); ``False`` leaves resolution to the caller.
        The backoff draw happens before the budget check so the retry
        RNG stream advances identically whether or not tokens remain.
        """
        policy = res.policy
        attempt = request.attempts
        if attempt >= policy.max_attempts:
            return False
        when = now + res.backoff_ms(attempt)
        if (policy.deadline_ms is not None
                and when >= request.t_arrive_ms + policy.deadline_ms):
            return False
        if not res.budget.grant():
            return False
        request.attempts = attempt + 1
        run.retries += 1
        self.engine.schedule_at(when, lambda: self._readmit(request, run))
        return True

    def _readmit(self, request: _Request, run: _Run) -> None:
        """Place a budget-granted retry: same request, fresh copies.

        Off the hot path by construction. Routing and backoff draw
        from the resilience fork (``rng.fork("retries")``), so the
        first-try route stream stays bit-identical to a retry-free
        run and retry storms replay bit-for-bit.
        """
        if request.resolved:
            return
        res = self._active_res
        if res is None:
            self._fail(request, run)
            return
        now = self.fleet.clock.now
        pool = self._pool_lists.get(run.family)
        if pool is None:
            pool = self._pool_lists[run.family] = list(
                self._pools.get(run.family, {}).values())
        placed: list[ReplicaServer] = []
        npool = len(pool)
        cap = self.max_jobs_per_server
        if npool:
            jobs = 0
            for server in pool:
                jobs += len(server.jobs)
            d = res.effective_clone_factor(run.clone_factor, jobs / npool)
            want = d if d < npool else npool
            rng = res.rng
            tried_mask = 0
            tried = 0
            while len(placed) < want and tried < npool:
                index = rng.randint(0, npool - 1)
                bit = 1 << index
                if tried_mask & bit:
                    continue
                tried_mask |= bit
                tried += 1
                server = pool[index]
                if len(server.jobs) >= cap:
                    continue
                if not self._routable(res, server, now):
                    continue
                placed.append(server)
            if not placed:
                self._fallback_place(res, pool, placed, want, cap, now)
        if not placed:
            run.rejected += 1
            if not self._retry(request, run, res, now):
                self._resolve_failed(request, run)
            return
        inj = self._inj
        stalled = 0
        for server in placed:
            copy = _Copy(request, server)
            request.copies.append(copy)
            if inj is not None and inj.event(
                    "frontdoor.replica_stall", op="route",
                    host=server.host, domid=server.domid):
                copy.state = _LOST
                self._end_copy(copy)
                self._breaker_failure(res, server.key, now)
                stalled += 1
                continue
            server.advance(now)
            server.admit(copy)
            self._reschedule(server, now)
        run.copies += len(placed)
        if stalled == len(placed):
            if not self._retry(request, run, res, now):
                self._resolve_failed(request, run)
            return
        timeout = run.timeout_ms
        deadline = res.policy.deadline_ms
        if deadline is not None:
            slack = request.t_arrive_ms + deadline - now
            if timeout is None or slack < timeout:
                timeout = slack
        if timeout is not None:
            request.timeout_event = self.engine.schedule_at(
                now + timeout, lambda: self._expire(request, run))

    def _resolve_failed(self, request: _Request, run: _Run) -> None:
        """Terminal failure of a retried request (no further gates)."""
        request.resolved = True
        run.failed += 1
        run.resolved += 1

    def _reschedule(self, server: ReplicaServer,
                    now: float | None = None) -> None:
        dep = self._dep_heap
        if dep is not None:
            # Fast path: push a hint instead of an engine event. The
            # fresh token supersedes every earlier hint the server has
            # in the heap (they drop for free at pop time), so each
            # server owns exactly one live hint. The hint is only a
            # cheap lower bound — computing the exact departure here
            # would replay share history that is almost always thrown
            # away again before the hint pops.
            if server.jobs:
                bound = server.bound_departure_ms()
                if now is not None and bound < now:
                    bound = now
                server.hint_seq = token = server.hint_seq + 1
                self._dep_seq = seq = self._dep_seq + 1
                heapq.heappush(dep, (bound, seq, token, False, server))
            return
        event = server.departure_event
        if event is not None:
            event.cancel()
        if server.jobs:
            callback = server.depart_cb
            if callback is None:
                callback = server.depart_cb = partial(self._depart, server)
            when = server.next_departure_ms()
            if now is None:
                now = self.fleet.clock.now
            server.departure_event = self.engine.schedule_at(
                when if when >= now else now, callback)
        else:
            server.departure_event = None

    def _depart(self, server: ReplicaServer) -> None:
        """A replica's soonest job should now be done: complete winners."""
        server.departure_event = None
        now = self.fleet.clock.now
        server.advance(now)
        for copy in server.finished_jobs():
            if copy.state != _ACTIVE:
                continue
            self._complete(copy.request, copy, now)
        self._reschedule(server, now)

    def _complete(self, request: _Request, winner: _Copy,
                  now_ms: float) -> None:
        run = self._run
        winner.state = _WON
        # finished_jobs just synced the winner: demand − exact remaining
        # is the service it actually received (remaining can sit an ulp
        # below zero after the final share).
        winner.consumed_ms = request.demand_ms - winner.remaining_ms
        winner.server.remove(winner)
        res = self._active_res
        if res is not None:
            res.record_success(winner.server.key, now_ms)
        if run is not None:
            run.work_served += winner.consumed_ms
            run.copies_won += 1
            run.work_useful += request.demand_ms
        else:
            self.stats["work_served_ms"] += winner.consumed_ms
            self.stats["copies_won"] += 1
            self.stats["work_useful_ms"] += request.demand_ms
        dep = self._dep_heap
        heappush = heapq.heappush
        for copy in request.copies:
            if copy.state != _ACTIVE:
                continue
            server = copy.server
            # Inlined ReplicaServer.advance(now_ms), work accounting
            # and hint push — one sequence per cancelled sibling, the
            # hottest stretch of the completion path.
            dt = now_ms - server.last_ms
            server.last_ms = now_ms
            jobs = server.jobs
            if dt > 0.0 and jobs:
                rate = server.rate
                share = dt * rate / len(jobs)
                hist = server._hist
                hist.append(share)
                server.vclock += share
                server.work_done_ms += dt * rate
                if len(hist) >= server._compact_at:
                    server._compact_history()
            copy.consumed_ms = consumed = server.vclock - copy.v_admit
            server.remove(copy)
            copy.state = _CANCELLED
            if run is not None:
                run.work_served += consumed
                run.copies_cancelled += 1
            else:
                self.stats["work_served_ms"] += consumed
                self.stats["copies_cancelled"] += 1
            if dep is not None:
                if jobs:
                    bound = server.bound_departure_ms()
                    if bound < now_ms:
                        bound = now_ms
                    server.hint_seq = token = server.hint_seq + 1
                    self._dep_seq = seq = self._dep_seq + 1
                    heappush(dep, (bound, seq, token, False, server))
            else:
                self._reschedule(server, now_ms)
        if request.timeout_event is not None:
            request.timeout_event.cancel()
            request.timeout_event = None
        request.resolved = True
        latency = now_ms - request.t_arrive_ms + DISPATCH_RTT_MS
        if run is not None:
            run.completed += 1
            run.resolved += 1
            if 0 <= request.rid < run.requests:
                run.latencies[request.rid] = latency
            if self._hist is not None:
                self._hist.observe(latency)
        else:
            self.stats["completed"] += 1
            if self._hist is not None:
                self._hist.observe(latency)
            self.fleet.tracer.count("frontdoor.requests_completed")

    def _expire(self, request: _Request, run: _Run) -> None:
        if request.resolved:
            return
        now = self.fleet.clock.now
        request.timeout_event = None
        res = self._active_res
        # Timeout/departure tie: a copy whose service is already
        # complete at the expiry instant departs *first* — the request
        # resolves completed, deterministically, on both the fast path
        # and the engine path (pinned by the tie regression tests).
        for copy in request.copies:
            if copy.state != _ACTIVE:
                continue
            server = copy.server
            server.advance(now)
            if server.exact_remaining(copy) <= EPS:
                self._complete(request, copy, now)
                self._reschedule(server, now)
                return
        for copy in request.copies:
            if copy.state != _ACTIVE:
                continue
            server = copy.server
            server.advance(now)
            copy.consumed_ms = server.vclock - copy.v_admit
            server.remove(copy)
            copy.state = _TIMED_OUT
            self._end_copy(copy)
            self._reschedule(server, now)
            run.copies_timed_out += 1
            if res is not None:
                self._breaker_failure(res, server.key, now)
        if res is not None and self._retry(request, run, res, now):
            return
        request.resolved = True
        run.timed_out += 1
        run.resolved += 1

    def _fail(self, request: _Request, run: "_Run | None" = None) -> None:
        if request.resolved:
            return
        run = run if run is not None else self._run
        res = self._active_res
        if (res is not None and run is not None
                and self._retry(request, run, res, self.fleet.clock.now)):
            if request.timeout_event is not None:
                request.timeout_event.cancel()
                request.timeout_event = None
            return
        request.resolved = True
        if request.timeout_event is not None:
            request.timeout_event.cancel()
            request.timeout_event = None
        if run is not None:
            run.failed += 1
            run.resolved += 1
        else:
            self.stats["failed"] += 1

    def _end_copy(self, copy: _Copy) -> None:
        """Final work accounting for a copy leaving service."""
        run = self._run
        if run is not None:
            run.work_served += copy.consumed_ms
            if copy.state == _LOST:
                run.copies_lost += 1
        else:
            self.stats["work_served_ms"] += copy.consumed_ms
            if copy.state == _LOST:
                self.stats["copies_lost"] += 1

    def _flush_run(self, run: _Run) -> None:
        """Fold the run's slotted counters into the shared ledgers."""
        stats = self.stats
        stats["requests"] += run.admitted
        stats["completed"] += run.completed
        stats["failed"] += run.failed
        stats["timed_out"] += run.timed_out
        stats["copies"] += run.copies
        stats["copies_won"] += run.copies_won
        stats["copies_cancelled"] += run.copies_cancelled
        stats["copies_lost"] += run.copies_lost
        stats["copies_timed_out"] += run.copies_timed_out
        stats["rejected_no_capacity"] += run.rejected
        stats["work_served_ms"] += run.work_served
        stats["work_useful_ms"] += run.work_useful
        stats["offered"] += run.offered
        stats["shed"] += run.shed
        stats["retries"] += run.retries
        if run.completed:
            self.fleet.tracer.count("frontdoor.requests_completed",
                                    run.completed)
        if run.shed:
            self.fleet.tracer.count("frontdoor.requests_shed", run.shed)
        if run.retries:
            self.fleet.tracer.count("frontdoor.retries", run.retries)

    def _autoscale_check(self, family: str, policy: "AutoscalePolicy",
                         arrived: int) -> None:
        pool = self.refresh(family)
        if not pool:
            return
        interval_s = policy.check_interval_ms / 1000.0
        rps_per_replica = arrived / interval_s / len(pool)
        total = len(pool)
        if (rps_per_replica > policy.threshold_rps
                and total < policy.max_replicas):
            step = min(policy.scale_step, policy.max_replicas - total)
            result = self.fleet.clone_family(family, count=step)
            if result.placed:
                self.stats["autoscale_events"] += 1
                self.fleet.tracer.count("frontdoor.autoscale_events")
            self.refresh(family)

    # ------------------------------------------------------------------
    # result assembly
    # ------------------------------------------------------------------
    def _finalize(self, run: _Run, family: str, shape: RequestShape,
                  clone_factor: int, arrival_rps: float, duration_ms: float,
                  *, work_served: float, work_useful: float,
                  resilient: bool = False,
                  report_segments: int = 0) -> DispatchResult:
        counts = {
            "completed": run.completed, "failed": run.failed,
            "timed_out": run.timed_out,
            "copies": run.copies, "copies_won": run.copies_won,
            "copies_cancelled": run.copies_cancelled,
            "copies_lost": run.copies_lost,
            "copies_timed_out": run.copies_timed_out,
        }
        if resilient:
            # Only resilient runs extend the fingerprint vocabulary, so
            # the pinned legacy fingerprints stay byte-identical.
            counts["offered"] = run.offered
            counts["shed"] = run.shed
            counts["retries"] = run.retries
        done = sorted(lat for lat in run.latencies if lat == lat)

        def quantile(q: float) -> float:
            if not done:
                return 0.0
            index = min(len(done) - 1, max(0, int(q * len(done) + 0.5) - 1))
            return done[index]

        # max() absorbs float drift when every copy won (useful can land
        # an ulp above served at d=1).
        waste = (max(0.0, 1.0 - work_useful / work_served)
                 if work_served > 0 else 0.0)
        payload = {
            "latencies": [None if lat != lat else round(lat, 9)
                          for lat in run.latencies],
            "counts": dict(sorted(counts.items())),
        }
        fingerprint = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()).hexdigest()
        segments: tuple = ()
        if report_segments > 0:
            seg = [0] * report_segments
            lats = run.latencies
            n = run.requests
            for rid in range(n):
                if lats[rid] == lats[rid]:
                    seg[rid * report_segments // n] += 1
            segments = tuple(seg)
        return DispatchResult(
            family=family, workload=shape.name, clone_factor=clone_factor,
            requests=run.requests, completed=counts["completed"],
            failed=counts["failed"], timed_out=counts["timed_out"],
            copies=counts["copies"], copies_won=counts["copies_won"],
            copies_cancelled=counts["copies_cancelled"],
            copies_lost=counts["copies_lost"],
            copies_timed_out=counts["copies_timed_out"],
            arrival_rps=arrival_rps, duration_ms=round(duration_ms, 6),
            throughput_rps=(counts["completed"] / (duration_ms / 1000.0)
                            if duration_ms > 0 else 0.0),
            latency_mean_ms=(sum(done) / len(done) if done else 0.0),
            latency_p50_ms=quantile(0.50), latency_p95_ms=quantile(0.95),
            latency_p99_ms=quantile(0.99),
            latency_max_ms=(done[-1] if done else 0.0),
            work_served_ms=work_served, work_useful_ms=work_useful,
            waste_fraction=waste, fingerprint=fingerprint,
            offered=run.offered, shed=run.shed, retries=run.retries,
            segment_completed=segments)

    # ------------------------------------------------------------------
    # introspection (the audit hooks)
    # ------------------------------------------------------------------
    def live_work_ms(self) -> float:
        """Work delivered by replicas still in a pool."""
        return sum(server.work_done_ms
                   for pool in self._pools.values()
                   for server in pool.values())

    def inflight_copies(self) -> int:
        """Copies currently in service across every pool."""
        return sum(len(server.jobs)
                   for pool in self._pools.values()
                   for server in pool.values())

    def inflight_consumed_ms(self) -> float:
        """Partial work already delivered to in-flight copies."""
        return sum(server.vclock - copy.v_admit
                   for pool in self._pools.values()
                   for server in pool.values()
                   for copy in server.jobs)

    def resilience_report(self) -> "dict[str, Any] | None":
        """Snapshot of breakers / budget / sheds (None when disabled)."""
        return self._res.report() if self._res is not None else None

    def family_resilience(self, family: str) -> "dict[str, Any] | None":
        """The resilience snapshot scoped to one family's pool."""
        if self._res is None:
            return None
        report = self._res.report()
        keys = {f"{h}/{d}" for (h, d) in self._pools.get(family, {})}
        report["breakers"] = {key: state
                              for key, state in report["breakers"].items()
                              if key in keys}
        report["open_breakers"] = sum(
            1 for state in report["breakers"].values()
            if state["state"] != "closed")
        return report

    def report(self) -> dict[str, Any]:
        """Machine-readable front-door state (JSON-serializable)."""
        return {
            "stats": {k: (round(v, 6) if isinstance(v, float) else v)
                      for k, v in sorted(self.stats.items())},
            "pools": {family: sorted(f"{h}/{d}" for (h, d) in pool)
                      for family, pool in sorted(self._pools.items())},
            "pool_epochs": dict(sorted(self._pool_epochs.items())),
            "topology_epoch": self.fleet.topology_epoch,
            "resilience": self.resilience_report(),
            "histograms": {name: hist.count
                           for name, hist in
                           sorted(self.registry.histograms.items())},
        }


class AutoscalePolicy:
    """RPS-threshold autoscaling for a dispatched family (paper §7.3
    shape: check periodically, add ``scale_step`` replicas while the
    per-replica request rate exceeds the threshold)."""

    __slots__ = ("threshold_rps", "check_interval_ms", "max_replicas",
                 "scale_step")

    def __init__(self, threshold_rps: float = 10.0,
                 check_interval_ms: float = 11_000.0,
                 max_replicas: int = 16, scale_step: int = 1) -> None:
        if max_replicas < 1:
            raise FrontDoorError(f"non-positive max_replicas: {max_replicas}")
        self.threshold_rps = threshold_rps
        self.check_interval_ms = check_interval_ms
        self.max_replicas = max_replicas
        self.scale_step = scale_step
