"""The request-dispatch load balancer: request cloning + cancellation.

The front door sends simulated user traffic at the clone replicas a
:class:`~repro.fleet.Fleet` placed across its member hosts. Every
replica is modelled as a **processor-sharing server** on the fleet's
virtual clock: it delivers one work-millisecond per virtual
millisecond, shared equally among the requests it currently serves —
the service model of "Modeling of Request Cloning in Cloud Server
Systems using Processor Sharing" (PAPERS.md).

Request cloning (that paper's subject): each incoming request is
dispatched to ``clone_factor`` distinct replicas; all copies carry the
*same* service demand (synchronized service). The first copy to finish
completes the request and the remaining copies are **cancelled on the
virtual clock**, their partially delivered service counted as waste.
Cloning therefore buys tail latency (the winner is the copy on the
least-contended replica) at the price of extra load — past a capacity
knee the waste saturates the fleet and the tail blows up, which is
exactly the trade-off the headline experiment
(:mod:`repro.experiments.frontdoor_p99`) measures against the model's
analytic curves.

Determinism: arrivals, demands and routing each draw from their own
forked RNG stream keyed by (family, shape, label), all events run on
one :class:`~repro.sim.engine.Engine` bound to the fleet clock, and the
:class:`~repro.frontdoor.results.DispatchResult` fingerprint covers the
full per-request latency series — same seed, same bytes.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any

from repro.apps.traffic import RequestShape, as_shape
from repro.frontdoor.results import (
    DispatchResult,
    DispatchTimeout,
    FrontDoorError,
    NoCapacity,
)
from repro.obs.registry import LATENCY_BUCKET_BOUNDS, MetricsRegistry
from repro.sim.engine import Engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fleet.fleet import Fleet

#: Remaining-work epsilon below which a copy counts as finished
#: (absorbs float drift from repeated processor-sharing advances).
EPS = 1e-9

#: Network round trip through the load balancer (route + response
#: forwarding), added to every completed request's latency. A module
#: constant rather than a CostModel field, like the per-workload
#: calibrations in :mod:`repro.apps` — it never touches the shared
#: fleet clock, so control-plane charges cannot skew arrival times.
DISPATCH_RTT_MS = 0.08

#: Service-rate multiplier of a replica on a DEGRADED (grey) host.
DEGRADED_RATE = 0.5

#: Per-replica concurrency cap (listen backlog): a copy routed to a
#: full replica is rejected at admission. Bounds the cost of one
#: processor-sharing advance, and keeps past-the-knee runs finite.
MAX_JOBS_PER_SERVER = 256

#: Copy lifecycle states.
_ACTIVE, _WON, _CANCELLED, _LOST, _TIMED_OUT = range(5)


class _Copy:
    """One clone copy of a request, in service at one replica."""

    __slots__ = ("request", "server", "remaining_ms", "consumed_ms", "state")

    def __init__(self, request: "_Request", server: "ReplicaServer") -> None:
        self.request = request
        self.server = server
        self.remaining_ms = request.demand_ms
        self.consumed_ms = 0.0
        self.state = _ACTIVE


class _Request:
    """One user request: demand plus its live copies."""

    __slots__ = ("rid", "t_arrive_ms", "demand_ms", "copies", "resolved",
                 "timeout_event")

    def __init__(self, rid: int, t_arrive_ms: float, demand_ms: float) -> None:
        self.rid = rid
        self.t_arrive_ms = t_arrive_ms
        self.demand_ms = demand_ms
        self.copies: list[_Copy] = []
        self.resolved = False
        self.timeout_event = None

    def active_copies(self) -> list[_Copy]:
        return [c for c in self.copies if c.state == _ACTIVE]


class ReplicaServer:
    """One clone replica as a processor-sharing server.

    The server delivers ``rate`` work-ms per virtual ms, split equally
    over its current jobs; ``work_done_ms`` accounts every delivered
    work-ms exactly once (the conservation law ``audit_fleet`` checks).
    """

    __slots__ = ("host", "domid", "rate", "jobs", "last_ms",
                 "work_done_ms", "departure_event", "alive")

    def __init__(self, host: str, domid: int, now_ms: float) -> None:
        self.host = host
        self.domid = domid
        self.rate = 1.0
        self.jobs: list[_Copy] = []
        self.last_ms = now_ms
        self.work_done_ms = 0.0
        self.departure_event = None
        self.alive = True

    @property
    def key(self) -> tuple[str, int]:
        return (self.host, self.domid)

    def advance(self, now_ms: float) -> None:
        """Deliver the processor-sharing service earned since last call."""
        dt = now_ms - self.last_ms
        self.last_ms = now_ms
        if dt <= 0.0 or not self.jobs:
            return
        share = dt * self.rate / len(self.jobs)
        for copy in self.jobs:
            copy.remaining_ms -= share
            copy.consumed_ms += share
        self.work_done_ms += dt * self.rate

    def next_departure_ms(self) -> float:
        """Absolute time the soonest job finishes, given no changes."""
        soonest = min(copy.remaining_ms for copy in self.jobs)
        return self.last_ms + max(soonest, 0.0) * len(self.jobs) / self.rate

    def remove(self, copy: _Copy) -> None:
        """Take a copy out of service (won, cancelled or timed out)."""
        self.jobs.remove(copy)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ReplicaServer({self.host}/{self.domid}, "
                f"{len(self.jobs)} jobs, rate {self.rate})")


class _Run:
    """Mutable state of one ``run_workload`` invocation."""

    __slots__ = ("requests", "latencies", "resolved", "counts")

    def __init__(self, requests: int) -> None:
        self.requests = requests
        #: Per-rid latency (None = failed / timed out / in flight).
        self.latencies: list[float | None] = [None] * requests
        self.resolved = 0
        self.counts = {
            "completed": 0, "failed": 0, "timed_out": 0,
            "copies": 0, "copies_won": 0, "copies_cancelled": 0,
            "copies_lost": 0, "copies_timed_out": 0,
        }


class FrontDoor:
    """The fleet's request-dispatch tier.

    One front door per fleet; server pools are per clone family (every
    parent replica and every placed clone serves requests). The front
    door owns its own event engine bound to the fleet clock and its own
    metrics registry, so per-request latency histograms exist even on
    untraced fleets.
    """

    def __init__(self, fleet: "Fleet",
                 max_jobs_per_server: int = MAX_JOBS_PER_SERVER) -> None:
        self.fleet = fleet
        self.engine = Engine(fleet.clock)
        self.rng = fleet.rng.fork("frontdoor")
        self.registry = MetricsRegistry()
        self.max_jobs_per_server = max_jobs_per_server
        #: family name -> ordered replica pool.
        self._pools: dict[str, dict[tuple[str, int], ReplicaServer]] = {}
        #: Work delivered by replicas that have since died or been
        #: retired from a pool — keeps the conservation ledger whole.
        self.retired_work_ms = 0.0
        #: The in-progress ``run_workload`` bookkeeping (None between runs).
        self._run: _Run | None = None
        self._hist = None
        self.stats: dict[str, Any] = {
            "requests": 0,
            "completed": 0,
            "failed": 0,
            "timed_out": 0,
            "copies": 0,
            "copies_won": 0,
            "copies_cancelled": 0,
            "copies_lost": 0,
            "copies_timed_out": 0,
            "rejected_no_capacity": 0,
            "servers_retired": 0,
            "autoscale_events": 0,
            "work_served_ms": 0.0,
            "work_useful_ms": 0.0,
        }

    # ------------------------------------------------------------------
    # replica pools
    # ------------------------------------------------------------------
    def refresh(self, family: str) -> list[ReplicaServer]:
        """Sync the family's server pool with the fleet's live state.

        New replicas/clones join the pool; instances whose host died
        (or which were destroyed) retire — their in-flight copies are
        reported lost, and a request whose last copy is lost fails.
        Hosts marked DEGRADED serve at :data:`DEGRADED_RATE`.
        """
        fam = self.fleet.families.get(family)
        if fam is None:
            raise FrontDoorError(f"unknown family {family!r}")
        pool = self._pools.setdefault(family, {})
        now = self.fleet.clock.now
        live: set[tuple[str, int]] = set()
        entries = ([(h, d) for h, d in sorted(fam.replicas.items())]
                   + [(h, d) for h in sorted(fam.clones)
                      for d in fam.clones[h]])
        for host_name, domid in entries:
            host = self.fleet.host(host_name)
            if not host.alive or domid not in host.platform.hypervisor.domains:
                continue
            live.add((host_name, domid))
            server = pool.get((host_name, domid))
            if server is None:
                server = pool[(host_name, domid)] = ReplicaServer(
                    host_name, domid, now)
            server.rate = (DEGRADED_RATE if host.state.value == "degraded"
                           else 1.0)
        for key in [k for k in pool if k not in live]:
            self._retire(pool.pop(key), now)
        return list(pool.values())

    def _retire(self, server: ReplicaServer, now_ms: float) -> None:
        """A replica left the pool (host death or destroy): orphan its
        copies; a request with no surviving copy fails."""
        server.advance(now_ms)
        server.alive = False
        self.retired_work_ms += server.work_done_ms
        if server.departure_event is not None:
            server.departure_event.cancel()
            server.departure_event = None
        self.stats["servers_retired"] += 1
        for copy in list(server.jobs):
            server.jobs.remove(copy)
            copy.state = _LOST
            self._end_copy(copy)
            request = copy.request
            if not request.resolved and not request.active_copies():
                self._fail(request)

    # ------------------------------------------------------------------
    # workload runs
    # ------------------------------------------------------------------
    def run_workload(self, family: str, shape: "RequestShape | str", *,
                     requests: int, arrival_rps: float,
                     clone_factor: int = 1,
                     timeout_ms: float | None = None,
                     autoscale: "AutoscalePolicy | None" = None,
                     heartbeat_every_ms: float | None = None,
                     label: str = "") -> DispatchResult:
        """Dispatch an open-loop Poisson request stream at the family.

        Each request is cloned to ``clone_factor`` distinct replicas
        (first response wins, the rest are cancelled). ``autoscale``
        grows the family during the run; ``heartbeat_every_ms``
        interleaves fleet heartbeat rounds (and pool refreshes) with
        the traffic, which is how host-kill chaos composes with
        dispatch. Returns a :class:`DispatchResult`.
        """
        shape = as_shape(shape)
        if requests < 1:
            raise FrontDoorError(f"non-positive request count: {requests}")
        if clone_factor < 1:
            raise FrontDoorError(f"non-positive clone factor: {clone_factor}")
        if arrival_rps <= 0:
            raise FrontDoorError(f"non-positive arrival rate: {arrival_rps}")
        pool = self.refresh(family)
        if len(pool) < clone_factor:
            raise NoCapacity(
                f"family {family!r} has {len(pool)} ready replicas, "
                f"need clone_factor={clone_factor}")

        base = self.rng.fork(f"dispatch:{family}:{shape.name}:{label}")
        arrival_rng = base.fork("arrivals")
        demand_rng = base.fork("demand")
        route_rng = base.fork("route")
        run = _Run(requests)
        self._run = run
        self._hist = self.registry.histogram(
            f"frontdoor.latency.{family}.{shape.name}.d{clone_factor}",
            bounds=LATENCY_BUCKET_BOUNDS)
        served_before = self.stats["work_served_ms"]
        useful_before = self.stats["work_useful_ms"]
        t_start = self.fleet.clock.now
        mean_gap_ms = 1000.0 / arrival_rps
        state = {"next_rid": 0, "t_next": t_start}

        def arrive() -> None:
            rid = state["next_rid"]
            state["next_rid"] = rid + 1
            demand = demand_rng.expovariate(1.0 / shape.mean_service_ms)
            self._admit(run, rid, demand, family, clone_factor,
                        route_rng, timeout_ms)
            if rid + 1 < requests:
                state["t_next"] += arrival_rng.expovariate(1.0 / mean_gap_ms)
                self.engine.schedule_at(
                    max(state["t_next"], self.fleet.clock.now), arrive)

        state["t_next"] = t_start + arrival_rng.expovariate(1.0 / mean_gap_ms)
        self.engine.schedule_at(state["t_next"], arrive)

        periodic = []
        if heartbeat_every_ms is not None:
            def beat() -> None:
                self.fleet.tick()
                self.refresh(family)
            periodic.append(self.engine.every(heartbeat_every_ms, beat))
        if autoscale is not None:
            window = {"seen": 0}

            def check_scale() -> None:
                arrived = state["next_rid"] - window["seen"]
                window["seen"] = state["next_rid"]
                self._autoscale_check(family, autoscale, arrived)
            periodic.append(self.engine.every(
                autoscale.check_interval_ms, check_scale))

        # Drive the engine until every request resolved. Periodic events
        # keep the queue non-empty forever, so the loop is bounded by a
        # drain guard rather than queue exhaustion.
        guard = 60 * requests + 100_000
        steps = 0
        while run.resolved < requests:
            if not self.engine.step():
                raise FrontDoorError(
                    "dispatch engine drained with "
                    f"{requests - run.resolved} unresolved requests")
            steps += 1
            if steps > guard:
                raise FrontDoorError("dispatch failed to drain "
                                     f"(engine ran {steps} events)")
        for handle in periodic:
            handle.cancel()
        self._run = None
        self._hist = None
        duration = self.fleet.clock.now - t_start
        return self._finalize(
            run, family, shape, clone_factor, arrival_rps, duration,
            work_served=self.stats["work_served_ms"] - served_before,
            work_useful=self.stats["work_useful_ms"] - useful_before)

    def dispatch_one(self, family: str, shape: "RequestShape | str", *,
                     clone_factor: int = 1,
                     timeout_ms: float | None = None) -> float:
        """Dispatch one request synchronously; returns its latency (ms).

        Raises :class:`NoCapacity` when the family lacks replicas and
        :class:`DispatchTimeout` when the request missed its deadline.
        """
        result = self.run_workload(
            family, shape, requests=1, arrival_rps=1000.0,
            clone_factor=clone_factor, timeout_ms=timeout_ms,
            label=f"one:{self.stats['requests']}")
        if result.timed_out:
            raise DispatchTimeout(
                f"request to {family!r} exceeded {timeout_ms} ms")
        if not result.completed:
            raise NoCapacity(f"request to {family!r} found no capacity")
        return result.latency_mean_ms

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _admit(self, run: _Run, rid: int, demand_ms: float, family: str,
               clone_factor: int, route_rng, timeout_ms: float | None) -> None:
        now = self.fleet.clock.now
        pool = list(self._pools.get(family, {}).values())
        self.stats["requests"] += 1
        request = _Request(rid, now, demand_ms)
        placed: list[ReplicaServer] = []
        if pool:
            tried: set[int] = set()
            want = min(clone_factor, len(pool))
            while len(placed) < want and len(tried) < len(pool):
                index = route_rng.randint(0, len(pool) - 1)
                if index in tried:
                    continue
                tried.add(index)
                server = pool[index]
                if len(server.jobs) >= self.max_jobs_per_server:
                    continue
                placed.append(server)
        if not placed:
            self.stats["rejected_no_capacity"] += 1
            self._fail(request, run)
            return
        for server in placed:
            copy = _Copy(request, server)
            request.copies.append(copy)
            server.advance(now)
            server.jobs.append(copy)
            self._reschedule(server)
            run.counts["copies"] += 1
            self.stats["copies"] += 1
        if timeout_ms is not None:
            request.timeout_event = self.engine.schedule_at(
                now + timeout_ms, lambda: self._expire(request, run))

    def _reschedule(self, server: ReplicaServer) -> None:
        if server.departure_event is not None:
            server.departure_event.cancel()
            server.departure_event = None
        if server.jobs:
            server.departure_event = self.engine.schedule_at(
                max(server.next_departure_ms(), self.fleet.clock.now),
                lambda: self._depart(server))

    def _depart(self, server: ReplicaServer) -> None:
        """A replica's soonest job should now be done: complete winners."""
        server.departure_event = None
        now = self.fleet.clock.now
        server.advance(now)
        finished = [c for c in server.jobs if c.remaining_ms <= EPS]
        for copy in finished:
            if copy.state != _ACTIVE:
                continue
            self._complete(copy.request, copy, now)
        self._reschedule(server)

    def _complete(self, request: _Request, winner: _Copy,
                  now_ms: float) -> None:
        run = self._run
        winner.state = _WON
        winner.server.remove(winner)
        self._end_copy(winner)
        self.stats["copies_won"] += 1
        self.stats["work_useful_ms"] += request.demand_ms
        if run is not None:
            run.counts["copies_won"] += 1
        for copy in request.copies:
            if copy.state != _ACTIVE:
                continue
            copy.server.advance(now_ms)
            copy.server.remove(copy)
            copy.state = _CANCELLED
            self._end_copy(copy)
            self._reschedule(copy.server)
            self.stats["copies_cancelled"] += 1
            if run is not None:
                run.counts["copies_cancelled"] += 1
        if request.timeout_event is not None:
            request.timeout_event.cancel()
            request.timeout_event = None
        request.resolved = True
        latency = now_ms - request.t_arrive_ms + DISPATCH_RTT_MS
        self.stats["completed"] += 1
        if run is not None:
            run.counts["completed"] += 1
            run.resolved += 1
            if 0 <= request.rid < run.requests:
                run.latencies[request.rid] = latency
        if self._hist is not None:
            self._hist.observe(latency)
        tracer = self.fleet.tracer
        tracer.count("frontdoor.requests_completed")

    def _expire(self, request: _Request, run: _Run) -> None:
        if request.resolved:
            return
        now = self.fleet.clock.now
        for copy in request.copies:
            if copy.state != _ACTIVE:
                continue
            copy.server.advance(now)
            copy.server.remove(copy)
            copy.state = _TIMED_OUT
            self._end_copy(copy)
            self._reschedule(copy.server)
            self.stats["copies_timed_out"] += 1
            run.counts["copies_timed_out"] += 1
        request.resolved = True
        request.timeout_event = None
        self.stats["timed_out"] += 1
        run.counts["timed_out"] += 1
        run.resolved += 1

    def _fail(self, request: _Request, run: "_Run | None" = None) -> None:
        if request.resolved:
            return
        request.resolved = True
        if request.timeout_event is not None:
            request.timeout_event.cancel()
            request.timeout_event = None
        run = run if run is not None else self._run
        self.stats["failed"] += 1
        if run is not None:
            run.counts["failed"] += 1
            run.resolved += 1

    def _end_copy(self, copy: _Copy) -> None:
        """Final work accounting for a copy leaving service."""
        self.stats["work_served_ms"] += copy.consumed_ms
        if copy.state == _LOST:
            self.stats["copies_lost"] += 1
            if self._run is not None:
                self._run.counts["copies_lost"] += 1

    def _autoscale_check(self, family: str, policy: "AutoscalePolicy",
                         arrived: int) -> None:
        pool = self.refresh(family)
        if not pool:
            return
        interval_s = policy.check_interval_ms / 1000.0
        rps_per_replica = arrived / interval_s / len(pool)
        total = len(pool)
        if (rps_per_replica > policy.threshold_rps
                and total < policy.max_replicas):
            step = min(policy.scale_step, policy.max_replicas - total)
            result = self.fleet.clone_family(family, count=step)
            if result.placed:
                self.stats["autoscale_events"] += 1
                self.fleet.tracer.count("frontdoor.autoscale_events")
            self.refresh(family)

    # ------------------------------------------------------------------
    # result assembly
    # ------------------------------------------------------------------
    def _finalize(self, run: _Run, family: str, shape: RequestShape,
                  clone_factor: int, arrival_rps: float, duration_ms: float,
                  *, work_served: float, work_useful: float) -> DispatchResult:
        counts = run.counts
        done = sorted(lat for lat in run.latencies if lat is not None)

        def quantile(q: float) -> float:
            if not done:
                return 0.0
            index = min(len(done) - 1, max(0, int(q * len(done) + 0.5) - 1))
            return done[index]

        # max() absorbs float drift when every copy won (useful can land
        # an ulp above served at d=1).
        waste = (max(0.0, 1.0 - work_useful / work_served)
                 if work_served > 0 else 0.0)
        payload = {
            "latencies": [None if lat is None else round(lat, 9)
                          for lat in run.latencies],
            "counts": dict(sorted(counts.items())),
        }
        fingerprint = hashlib.sha256(
            json.dumps(payload, sort_keys=True).encode()).hexdigest()
        return DispatchResult(
            family=family, workload=shape.name, clone_factor=clone_factor,
            requests=run.requests, completed=counts["completed"],
            failed=counts["failed"], timed_out=counts["timed_out"],
            copies=counts["copies"], copies_won=counts["copies_won"],
            copies_cancelled=counts["copies_cancelled"],
            copies_lost=counts["copies_lost"],
            copies_timed_out=counts["copies_timed_out"],
            arrival_rps=arrival_rps, duration_ms=round(duration_ms, 6),
            throughput_rps=(counts["completed"] / (duration_ms / 1000.0)
                            if duration_ms > 0 else 0.0),
            latency_mean_ms=(sum(done) / len(done) if done else 0.0),
            latency_p50_ms=quantile(0.50), latency_p95_ms=quantile(0.95),
            latency_p99_ms=quantile(0.99),
            latency_max_ms=(done[-1] if done else 0.0),
            work_served_ms=work_served, work_useful_ms=work_useful,
            waste_fraction=waste, fingerprint=fingerprint)

    # ------------------------------------------------------------------
    # introspection (the audit hooks)
    # ------------------------------------------------------------------
    def live_work_ms(self) -> float:
        """Work delivered by replicas still in a pool."""
        return sum(server.work_done_ms
                   for pool in self._pools.values()
                   for server in pool.values())

    def inflight_copies(self) -> int:
        """Copies currently in service across every pool."""
        return sum(len(server.jobs)
                   for pool in self._pools.values()
                   for server in pool.values())

    def inflight_consumed_ms(self) -> float:
        """Partial work already delivered to in-flight copies."""
        return sum(copy.consumed_ms
                   for pool in self._pools.values()
                   for server in pool.values()
                   for copy in server.jobs)

    def report(self) -> dict[str, Any]:
        """Machine-readable front-door state (JSON-serializable)."""
        return {
            "stats": {k: (round(v, 6) if isinstance(v, float) else v)
                      for k, v in sorted(self.stats.items())},
            "pools": {family: sorted(f"{h}/{d}" for (h, d) in pool)
                      for family, pool in sorted(self._pools.items())},
            "histograms": {name: hist.count
                           for name, hist in
                           sorted(self.registry.histograms.items())},
        }


class AutoscalePolicy:
    """RPS-threshold autoscaling for a dispatched family (paper §7.3
    shape: check periodically, add ``scale_step`` replicas while the
    per-replica request rate exceeds the threshold)."""

    __slots__ = ("threshold_rps", "check_interval_ms", "max_replicas",
                 "scale_step")

    def __init__(self, threshold_rps: float = 10.0,
                 check_interval_ms: float = 11_000.0,
                 max_replicas: int = 16, scale_step: int = 1) -> None:
        if max_replicas < 1:
            raise FrontDoorError(f"non-positive max_replicas: {max_replicas}")
        self.threshold_rps = threshold_rps
        self.check_interval_ms = check_interval_ms
        self.max_replicas = max_replicas
        self.scale_step = scale_step
