"""Entry point for ``python -m repro.frontdoor``."""

import sys

from repro.frontdoor.cli import main

if __name__ == "__main__":
    sys.exit(main())
