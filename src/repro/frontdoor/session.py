"""``FleetSession``: the multi-host counterpart of ``NepheleSession``.

One context-managed object wiring a :class:`~repro.fleet.fleet.Fleet`,
its :class:`~repro.frontdoor.dispatch.FrontDoor` and the REST-ish
:class:`~repro.frontdoor.control.ControlPlane` facade::

    from repro import NepheleSession

    with NepheleSession.fleet(hosts=4) as session:
        session.create_family("web", ip="10.1.1.1")
        session.clone("web", count=8)
        result = session.dispatch("web", "faas",
                                  requests=10_000, arrival_rps=500.0,
                                  clone_factor=2)
        print(result.latency_p99_ms)

A clean exit quiesces the fleet and runs the fleet-wide leak oracle
*including* the front-door work-conservation laws; violations raise, so
scenarios get end-of-run validation for free — the same contract
``NepheleSession`` has for a single host.
"""

from __future__ import annotations

from typing import Any

from repro.faults.plan import FaultPlan
from repro.fleet.chaos import audit_fleet
from repro.fleet.fleet import CloneResult, FamilyPlacement, Fleet, FleetConfig
from repro.frontdoor.control import ControlPlane
from repro.frontdoor.dispatch import AutoscalePolicy, FrontDoor
from repro.frontdoor.resilience import ResiliencePolicy
from repro.frontdoor.results import (
    DispatchResult,
    FrontDoorError,
    HostInventory,
)


class FleetSession:
    """A fully wired fleet with a front door, as a context manager.

    Keyword arguments mirror :class:`~repro.fleet.fleet.FleetConfig`
    (``hosts``, ``seed``, ``policy``, ``host_memory_bytes``...); pass a
    :class:`FaultPlan` via ``plan`` to run under host-level chaos, and a
    :class:`~repro.frontdoor.resilience.ResiliencePolicy` via
    ``resilience`` to arm the front door's overload protections for
    every dispatch run.
    """

    def __init__(self, *, plan: FaultPlan | None = None,
                 resilience: ResiliencePolicy | None = None,
                 **config_kwargs: Any) -> None:
        self.fleet = Fleet(FleetConfig(**config_kwargs), plan=plan)
        self.frontdoor = FrontDoor(self.fleet, resilience=resilience)
        self.control = ControlPlane(self.fleet, self.frontdoor)
        self._closed = False

    # ------------------------------------------------------------------
    # context manager
    # ------------------------------------------------------------------
    def __enter__(self) -> "FleetSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close(check=exc_type is None)
        return False

    def close(self, check: bool = True) -> None:
        """Quiesce the fleet; optionally run the fleet-wide leak oracle."""
        if self._closed:
            return
        self._closed = True
        self.fleet.shutdown()
        if check:
            violations = audit_fleet(self.fleet, self.frontdoor)
            if violations:
                raise FrontDoorError(
                    "fleet audit failed on session close: "
                    + "; ".join(violations))

    # ------------------------------------------------------------------
    # control-plane verbs
    # ------------------------------------------------------------------
    def create_family(self, name: str, **kwargs: Any) -> FamilyPlacement:
        """Create + place a cloneable family (see ``ControlPlane``)."""
        placement = self.control.create_family(name, **kwargs)
        return FamilyPlacement(family=name, host=placement["host"],
                               domid=placement["domid"])

    def clone(self, family: str, count: int = 1) -> CloneResult:
        """Clone ``count`` instances of a family, placed fleet-wide."""
        return self.fleet.clone_family(family, count=count)

    def destroy_family(self, family: str) -> None:
        """Destroy every live instance of a family, fleet-wide."""
        self.fleet.destroy_family(family)

    def dispatch(self, family: str, workload: str = "faas",
                 **kwargs: Any) -> DispatchResult:
        """Run a request-dispatch workload (see ``FrontDoor``)."""
        return self.control.dispatch(family, workload, **kwargs)

    def drain_host(self, name: str, mode: str = "precopy"
                   ) -> dict[str, Any]:
        """Warm-migrate every family off a host (see ``ControlPlane``).

        The planned migrations stream on heartbeats — run a dispatch
        with ``heartbeat_every_ms`` (or ``fleet.run_heartbeats``) to
        advance them.
        """
        return self.control.drain_host(name, mode=mode)

    def inventory(self) -> HostInventory:
        """The fleet's typed host inventory."""
        return self.control.inventory()

    def handle(self, method: str, path: str,
               body: dict[str, Any] | None = None):
        """Raw REST-ish access (``session.handle("GET", "/hosts")``)."""
        return self.control.handle(method, path, body)

    def autoscale_policy(self, **kwargs: Any) -> AutoscalePolicy:
        """Convenience constructor for a dispatch autoscale policy."""
        return AutoscalePolicy(**kwargs)

    # ------------------------------------------------------------------
    # passthrough accessors
    # ------------------------------------------------------------------
    @property
    def clock(self):
        """The fleet's virtual clock."""
        return self.fleet.clock

    @property
    def hosts(self):
        """The member hosts, in index order."""
        return self.fleet.hosts

    @property
    def stats(self) -> dict[str, Any]:
        """Fleet + front-door counters, one merged view."""
        return {"fleet": dict(self.fleet.stats),
                "frontdoor": dict(self.frontdoor.stats)}
