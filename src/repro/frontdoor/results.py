"""Typed results and errors of the front-door control plane.

Every public front-door verb returns a small frozen dataclass instead
of a dict or tuple, so callers get attribute access, ``repr`` for free,
and a stable JSON shape via ``to_dict()``. The error hierarchy mirrors
the rest of the library: everything derives from :class:`ReproError`
through :class:`FrontDoorError`, so ``except ReproError`` still catches
front-door failures.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any

from repro.errors import ReproError


class FrontDoorError(ReproError):
    """Front-door failure (bad request, dispatch machinery misuse)."""


class NoCapacity(FrontDoorError):
    """No (or not enough) ready replicas to dispatch a request to."""


class DispatchTimeout(FrontDoorError):
    """A synchronously dispatched request exceeded its deadline."""


class Overloaded(FrontDoorError):
    """Admission control shed the request (HTTP 429, not 503).

    Carries a deterministic ``retry_after_ms`` hint computed from the
    analytic PS model (:func:`repro.frontdoor.model.retry_after_ms`):
    one expected sojourn at the operating point that caused the shed.
    """

    def __init__(self, message: str, retry_after_ms: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_ms = retry_after_ms


@dataclass(frozen=True)
class HostInfo:
    """One member host, as the control-plane inventory sees it."""

    name: str
    state: str
    free_frames: int
    guests: int
    #: Family names with a parent replica on this host.
    replicas: tuple[str, ...] = ()
    #: Clone instances living on this host, across all families.
    clones: int = 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        data = asdict(self)
        data["replicas"] = list(self.replicas)
        return data


@dataclass(frozen=True)
class HostInventory:
    """The fleet's host inventory (``GET /hosts``)."""

    hosts: tuple[HostInfo, ...]
    policy: str
    beats: int
    clock_ms: float

    def host(self, name: str) -> HostInfo:
        """The inventory entry for ``name``."""
        for info in self.hosts:
            if info.name == name:
                return info
        raise FrontDoorError(f"unknown host {name!r}")

    def live(self) -> tuple[HostInfo, ...]:
        """Hosts the control plane can still place work on."""
        return tuple(h for h in self.hosts if h.state in ("up", "degraded"))

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {
            "hosts": [h.to_dict() for h in self.hosts],
            "policy": self.policy,
            "beats": self.beats,
            "clock_ms": self.clock_ms,
        }


@dataclass(frozen=True)
class DispatchResult:
    """Outcome of one request-dispatch run against a clone family.

    Counts obey the front-door conservation laws checked by
    :func:`repro.fleet.chaos.audit_fleet`:
    ``requests == completed + failed + timed_out`` and
    ``copies == copies_won + copies_cancelled + copies_lost +
    copies_timed_out``. Latency statistics are exact (computed from the
    full per-request latency series, not from histogram buckets); the
    same series also feeds a fine-grained histogram in the front door's
    metrics registry. ``fingerprint`` is a sha256 over the per-request
    latencies plus the counters, so two same-seed runs must match
    byte-for-byte.
    """

    family: str
    workload: str
    clone_factor: int
    requests: int
    completed: int
    failed: int
    timed_out: int
    copies: int
    copies_won: int
    copies_cancelled: int
    copies_lost: int
    copies_timed_out: int
    arrival_rps: float
    duration_ms: float
    throughput_rps: float
    latency_mean_ms: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    latency_max_ms: float
    #: Total service work delivered by the replicas (winner + cancelled
    #: partial work), in work-milliseconds.
    work_served_ms: float
    #: Work that completed requests actually required (their demands).
    work_useful_ms: float
    #: 1 - useful/served: the request-cloning overhead.
    waste_fraction: float
    fingerprint: str
    #: First-try requests offered to admission control. Equals
    #: ``requests + shed`` (the admission conservation law); without a
    #: resilience policy nothing is shed, so ``offered == requests``.
    offered: int = 0
    #: First-try requests shed by admission control before any copy
    #: was placed. Shed requests are *not* counted in ``requests``.
    shed: int = 0
    #: Retry attempts granted by the retry budget during the run.
    retries: int = 0
    #: Completed-request counts per equal-offered segment of the run
    #: (``report_segments`` of them; empty when not requested). Offered
    #: load is flat across segments by construction, so a falling
    #: series is goodput collapse. Excluded from the fingerprint.
    segment_completed: tuple = ()

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        data = asdict(self)
        data["segment_completed"] = list(self.segment_completed)
        return data
