"""Analytic processor-sharing model of request cloning.

The closed forms the headline experiment validates the simulator
against, following "Modeling of Request Cloning in Cloud Server Systems
using Processor Sharing" (PAPERS.md). Under synchronized service —
every copy of a request carries the *same* exponential demand, which is
exactly what :mod:`repro.frontdoor.dispatch` simulates — a cluster of
``n`` processor-sharing servers fed cloned traffic behaves like an
M/M/1-PS system whose *effective* utilization includes the wasted
partial work of cancelled copies:

    rho_eff(d) = rho * (1 + (d - 1) * waste_per_extra_copy)

where ``rho`` is the useful-work utilization and the waste per extra
copy is the mean fraction of its demand a losing copy has received when
the winner finishes. Cloning helps the tail because the winning copy
effectively samples the *least* loaded of ``d`` servers; it hurts the
whole system once rho_eff approaches 1 — the **capacity knee**. In
M/M/1-PS the sojourn time is exponential with mean S/(1 - rho), so the
tail quantile has the closed form used below.
"""

from __future__ import annotations

import math

from repro.frontdoor.results import FrontDoorError


def measured_rho_eff(work_served_ms: float, duration_ms: float,
                     replicas: int) -> float:
    """Effective utilization of a *measured* run.

    Served work (useful plus the cancelled copies' partial service)
    over the fleet's delivered capacity ``duration x replicas`` — the
    quantity the experiment compares against :func:`mean_sojourn_ms`'s
    ``rho_eff`` input. Zero-capacity runs (no elapsed virtual time)
    report zero utilization.
    """
    capacity_ms = duration_ms * replicas
    if capacity_ms > 0:
        return work_served_ms / capacity_ms
    return 0.0


def effective_utilization(rho: float, d: int, waste_fraction: float) -> float:
    """Utilization including cloning overhead.

    ``waste_fraction`` is the *measured* overall waste (1 - useful/served)
    of a run at clone factor ``d``; the served work already contains the
    cancelled copies' partial service, so rho_eff is simply the useful
    utilization scaled back up by the waste.
    """
    if not 0.0 <= waste_fraction < 1.0:
        raise FrontDoorError(f"waste fraction out of range: {waste_fraction}")
    del d  # the measured waste already folds in the clone factor
    return rho / (1.0 - waste_fraction)


def mean_sojourn_ms(mean_service_ms: float, rho_eff: float,
                    d: int = 1) -> float:
    """Mean request sojourn time in the cloned M/M/1-PS approximation.

    The winner is the first of ``d`` synchronized copies: its service
    completes at rate ``d`` times a single server's share when the
    copies sit on independently loaded servers, so the baseline PS
    sojourn ``S / (1 - rho)`` shrinks by the clone factor while the
    utilization penalty enters through ``rho_eff``.
    """
    if rho_eff >= 1.0:
        return math.inf
    if d < 1:
        raise FrontDoorError(f"non-positive clone factor: {d}")
    return mean_service_ms / (d * (1.0 - rho_eff))


def quantile_sojourn_ms(mean_service_ms: float, rho_eff: float,
                        q: float = 0.99, d: int = 1) -> float:
    """The ``q`` sojourn-time quantile (P99 by default).

    M/M/1-PS sojourn is exponentially distributed, so the quantile is
    ``-ln(1 - q)`` mean sojourns; ln(100) ~ 4.6 of them for P99.
    """
    if not 0.0 < q < 1.0:
        raise FrontDoorError(f"quantile out of range: {q}")
    mean = mean_sojourn_ms(mean_service_ms, rho_eff, d)
    if math.isinf(mean):
        return math.inf
    return -math.log(1.0 - q) * mean


def expected_sojourn_ms(mean_service_ms: float, queue_depth: float,
                        d: int = 1) -> float:
    """Expected sojourn of a request admitted *right now*.

    The admission-control form of the PS sojourn law: a job joining a
    PS server already holding ``queue_depth`` resident jobs expects to
    receive a ``1/(n+1)`` share, i.e. ``S * (depth + 1)`` of sojourn;
    ``d`` synchronized copies on independently loaded servers divide
    that by the clone factor (the winner samples the least-loaded
    copy). ``queue_depth`` is the mean resident jobs per pool replica
    at admission time — the instantaneous analogue of ``rho_eff`` in
    :func:`mean_sojourn_ms`, usable before any work is measured.
    """
    if d < 1:
        raise FrontDoorError(f"non-positive clone factor: {d}")
    if queue_depth < 0:
        raise FrontDoorError(f"negative queue depth: {queue_depth}")
    return mean_service_ms * (queue_depth + 1.0) / d


#: Utilization cap for the Retry-After hint: past the knee the mean
#: sojourn diverges, but a shed client needs a *finite* deterministic
#: backoff, so the hint prices the queue as if it sat just below
#: saturation.
RETRY_AFTER_RHO_CAP = 0.95


def retry_after_ms(mean_service_ms: float, queue_depth: float,
                   d: int = 1) -> float:
    """Deterministic ``Retry-After`` hint for a shed request (ms).

    One expected sojourn at the current operating point: the earliest
    instant at which the queue that caused the shed can plausibly have
    drained enough to admit, per the same PS law admission control
    used to shed. Capped via :data:`RETRY_AFTER_RHO_CAP` so the hint
    stays finite past the knee.
    """
    hint = expected_sojourn_ms(mean_service_ms, queue_depth, d)
    cap = quantile_sojourn_ms(mean_service_ms, RETRY_AFTER_RHO_CAP, d=d)
    return min(hint, cap)


def predicted_p99_curve(mean_service_ms: float, rho: float,
                        clone_factors: list[int],
                        waste_by_d: dict[int, float]) -> dict[int, float]:
    """P99 prediction per clone factor, from measured waste fractions.

    Returns ``{d: predicted P99 ms}``; infinity marks clone factors past
    the capacity knee (rho_eff >= 1), where the open-loop simulation's
    tail grows without bound with run length.
    """
    curve: dict[int, float] = {}
    for d in clone_factors:
        rho_eff = effective_utilization(rho, d, waste_by_d.get(d, 0.0))
        curve[d] = quantile_sojourn_ms(mean_service_ms, rho_eff, d=d)
    return curve


def knee_clone_factor(rho: float, waste_per_extra_copy: float,
                      max_d: int = 64) -> int:
    """Smallest clone factor whose effective utilization reaches 1.

    Uses the first-order waste model ``rho_eff = rho * (1 + (d-1) * w)``
    to locate the capacity knee a priori; returns ``max_d`` when the
    knee lies beyond it.
    """
    if rho >= 1.0:
        return 1
    if waste_per_extra_copy <= 0.0:
        return max_d
    for d in range(1, max_d + 1):
        if rho * (1.0 + (d - 1) * waste_per_extra_copy) >= 1.0:
            return d
    return max_d
