"""Overload resilience for the fleet front door.

The survival layer every real serving stack puts in front of request
cloning, made deterministic and auditable like the rest of the
library (docs/RESILIENCE.md derives the model, docs/CALIBRATION.md
anchors the constants):

- **Admission control** — a per-front-door token bucket plus an
  expected-sojourn bound from the analytic PS model
  (:func:`repro.frontdoor.model.expected_sojourn_ms`) shed first-try
  requests *before* any copy is placed. A **brownout** band degrades
  ``clone_factor`` toward 1 under queue pressure instead of rejecting
  outright, so redundancy is the first thing sacrificed, goodput the
  last.
- **Retry budgets** — a client-side retry layer on dispatch whose
  budget (a fraction of first-try traffic, default 10%) is enforced
  front-door-wide, so retries can never exceed first-try traffic and
  the retry-storm feedback loop that makes overload metastable cannot
  close. Backoff is exponential with deterministic jitter drawn from
  ``rng.fork("retries")`` — storms replay bit-for-bit.
- **Circuit breakers** — per-replica rolling failure/timeout windows
  on the fleet virtual clock eject a replica from the routing set
  (OPEN), then probe it half-open after a cooldown
  (``frontdoor_breaker_cooldown``) to readmit it. Draining hosts are
  routed around the same way, so dispatch avoids a family mid-cutover
  instead of paying the migration pause window.
- **Deadline propagation** — a policy deadline flows into admission
  (shed what cannot finish in time), per-attempt timeouts, and the
  retry gate (never schedule a retry that would land past the
  deadline), so doomed copies are cancelled early rather than
  simmered.

All state machines run on the fleet virtual clock and all randomness
comes from forked deterministic streams; the conservation laws they
must obey (``offered == admitted + shed``, ``retries <= budget``) are
checked by :func:`repro.fleet.chaos.audit_frontdoor`.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from dataclasses import dataclass, fields
from typing import Any

from repro.frontdoor.results import FrontDoorError
from repro.sim.costs import CostModel

_COSTS = CostModel()

#: Circuit-breaker states (string-valued so reports are JSON-ready).
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs of the overload-resilience layer (docs/RESILIENCE.md).

    Frozen: a policy is configuration, all mutable state lives in
    :class:`ResilienceState`. Every default is either dimensionless or
    anchored in :mod:`repro.sim.costs` (docs/CALIBRATION.md); the
    policy table in docs/RESILIENCE.md is registry-diffed against this
    dataclass by ``tests/test_resilience_docs.py``.
    """

    #: Token-bucket admission rate (first-try requests/s); ``None``
    #: disables the bucket and leaves only the sojourn bound.
    admission_rate_rps: float | None = None
    #: Bucket depth: the burst admitted above the sustained rate.
    admission_burst: float = 64.0
    #: Shed a first try when the PS model expects its sojourn (at the
    #: brownout-effective clone factor) to exceed this; ``None``
    #: disables the bound.
    sojourn_bound_ms: float | None = None
    #: Mean resident jobs per pool replica at which brownout begins
    #: degrading the clone factor.
    brownout_start: float = 8.0
    #: Mean depth at which brownout reaches ``clone_factor == 1``.
    brownout_full: float = 32.0
    #: Retry budget as a fraction of first-try traffic (the classic
    #: 10%: retries can never exceed this share of offered load).
    retry_budget_fraction: float = 0.1
    #: Retry tokens available before any first try has refilled the
    #: budget (and the cap the budget can accumulate to).
    retry_burst: float = 8.0
    #: Total attempts per request including the first try; 1 disables
    #: retries entirely.
    max_attempts: int = 3
    #: Base client backoff before the first retry, doubled per
    #: attempt. Anchor: ``frontdoor_retry_backoff_base`` (4 LAN RTTs).
    backoff_base_ms: float = _COSTS.frontdoor_retry_backoff_base
    #: Deterministic jitter: each backoff is multiplied by a uniform
    #: draw from ``[1, 1 + backoff_jitter]`` out of the retry stream.
    backoff_jitter: float = 0.5
    #: Rolling outcome-window length per replica breaker; 0 disables
    #: circuit breakers.
    breaker_window: int = 16
    #: Failure fraction of the window that trips the breaker OPEN.
    breaker_failure_threshold: float = 0.5
    #: Outcomes required in the window before it may trip.
    breaker_min_samples: int = 8
    #: How long an OPEN breaker rejects before probing half-open.
    #: Anchor: ``frontdoor_breaker_cooldown`` (20 LAN RTTs).
    breaker_cooldown_ms: float = _COSTS.frontdoor_breaker_cooldown
    #: Copies a HALF_OPEN breaker admits before deciding: the first
    #: probe outcome closes it (success) or re-opens it (failure).
    breaker_probe_quota: int = 2
    #: End-to-end request deadline propagated into admission, the
    #: per-attempt timeout, and the retry gate; ``None`` disables it.
    deadline_ms: float | None = None
    #: Route around replicas on DRAINING hosts (mid-migration) unless
    #: they are the only capacity left.
    route_around_draining: bool = True

    def __post_init__(self) -> None:
        if self.admission_rate_rps is not None and self.admission_rate_rps <= 0:
            raise FrontDoorError(
                f"non-positive admission rate: {self.admission_rate_rps}")
        if self.admission_burst < 1:
            raise FrontDoorError(f"admission burst < 1: {self.admission_burst}")
        if self.sojourn_bound_ms is not None and self.sojourn_bound_ms <= 0:
            raise FrontDoorError(
                f"non-positive sojourn bound: {self.sojourn_bound_ms}")
        if not 0 <= self.brownout_start <= self.brownout_full:
            raise FrontDoorError(
                "brownout band inverted: "
                f"[{self.brownout_start}, {self.brownout_full}]")
        if self.retry_budget_fraction < 0 or self.retry_burst < 0:
            raise FrontDoorError("negative retry budget")
        if self.max_attempts < 1:
            raise FrontDoorError(f"max_attempts < 1: {self.max_attempts}")
        if self.backoff_base_ms <= 0 or self.backoff_jitter < 0:
            raise FrontDoorError("bad backoff parameters")
        if self.breaker_window < 0:
            raise FrontDoorError(f"negative breaker window: {self.breaker_window}")
        if self.breaker_window:
            if not 0 < self.breaker_failure_threshold <= 1:
                raise FrontDoorError(
                    f"breaker threshold out of (0, 1]: "
                    f"{self.breaker_failure_threshold}")
            if not 1 <= self.breaker_min_samples <= self.breaker_window:
                raise FrontDoorError(
                    "breaker_min_samples must lie in [1, breaker_window]")
            if self.breaker_cooldown_ms <= 0 or self.breaker_probe_quota < 1:
                raise FrontDoorError("bad breaker cooldown/probe quota")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise FrontDoorError(f"non-positive deadline: {self.deadline_ms}")

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (control-plane bodies)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class TokenBucket:
    """Deterministic token bucket on the fleet virtual clock."""

    __slots__ = ("rate_per_ms", "burst", "tokens", "last_ms")

    def __init__(self, rate_rps: float, burst: float, now_ms: float) -> None:
        self.rate_per_ms = rate_rps / 1000.0
        self.burst = float(burst)
        self.tokens = float(burst)
        self.last_ms = now_ms

    def take(self, now_ms: float) -> bool:
        """Refill to ``now_ms`` and spend one token if available."""
        tokens = self.tokens + (now_ms - self.last_ms) * self.rate_per_ms
        if tokens > self.burst:
            tokens = self.burst
        self.last_ms = now_ms
        if tokens >= 1.0:
            self.tokens = tokens - 1.0
            return True
        self.tokens = tokens
        return False


class RetryBudget:
    """Front-door-wide retry budget: a fraction of first-try traffic.

    Each first try deposits ``fraction`` of a token; each granted
    retry spends a whole one. The balance is capped at ``burst`` (also
    the opening balance), which yields the invariant
    ``granted <= fraction * first_tries + burst`` under *any*
    interleaving — the law :meth:`audit` checks and the hypothesis
    property in ``tests/test_resilience_properties.py`` hammers.
    """

    __slots__ = ("fraction", "burst", "tokens", "first_tries", "granted",
                 "denied")

    def __init__(self, fraction: float, burst: float) -> None:
        self.fraction = fraction
        self.burst = float(burst)
        self.tokens = float(burst)
        self.first_tries = 0
        self.granted = 0
        self.denied = 0

    def note_first_try(self) -> None:
        """Record one admitted first try (deposits ``fraction``)."""
        self.first_tries += 1
        tokens = self.tokens + self.fraction
        self.tokens = tokens if tokens <= self.burst else self.burst

    def grant(self) -> bool:
        """Spend one retry token; ``False`` exhausts silently."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            self.granted += 1
            return True
        self.denied += 1
        return False

    def ceiling(self) -> float:
        """Most retries the budget may ever have granted by now."""
        return self.fraction * self.first_tries + self.burst

    def audit(self) -> list[str]:
        """Budget conservation-law violations (empty when healthy)."""
        if self.granted > self.ceiling() + 1e-9:
            return [
                f"retry budget overdrawn: granted {self.granted} retries "
                f"against a ceiling of {self.ceiling():.1f} "
                f"({self.fraction:.0%} of {self.first_tries} first tries "
                f"+ {self.burst:.0f} burst)"]
        return []


class CircuitBreaker:
    """Per-replica breaker: rolling outcome window on the virtual clock.

    CLOSED records outcomes into a rolling window and trips OPEN when
    the window holds at least ``min_samples`` outcomes of which at
    least ``failure_threshold`` failed. OPEN rejects all routing for
    ``cooldown_ms``, then turns HALF_OPEN on the next :meth:`allow`
    and admits exactly ``probe_quota`` probe copies: the first probe
    outcome closes the breaker (success) or re-opens it (failure).
    """

    __slots__ = ("policy", "state", "window", "opened_at_ms", "probes_left",
                 "trips")

    def __init__(self, policy: ResiliencePolicy) -> None:
        self.policy = policy
        self.state = BREAKER_CLOSED
        self.window: deque[int] = deque(maxlen=policy.breaker_window)
        self.opened_at_ms = 0.0
        self.probes_left = 0
        self.trips = 0

    def allow(self, now_ms: float) -> bool:
        """May a copy be routed to this replica right now?"""
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_OPEN:
            if now_ms - self.opened_at_ms < self.policy.breaker_cooldown_ms:
                return False
            self.state = BREAKER_HALF_OPEN
            self.probes_left = self.policy.breaker_probe_quota
        if self.probes_left > 0:
            self.probes_left -= 1
            return True
        return False

    def record(self, ok: bool, now_ms: float) -> bool:
        """Feed one copy outcome; returns ``True`` if this trips OPEN."""
        if self.state == BREAKER_HALF_OPEN:
            if ok:
                self.state = BREAKER_CLOSED
                self.window.clear()
                return False
            return self._trip(now_ms)
        if self.state == BREAKER_OPEN:
            # Outcome of a copy admitted before the trip: already priced
            # into the window that tripped us.
            return False
        self.window.append(0 if ok else 1)
        policy = self.policy
        if (len(self.window) >= policy.breaker_min_samples
                and sum(self.window)
                >= policy.breaker_failure_threshold * len(self.window)):
            return self._trip(now_ms)
        return False

    def force_open(self, now_ms: float) -> bool:
        """Trip regardless of the window (the breaker-flap fault site)."""
        if self.state == BREAKER_OPEN:
            return False
        return self._trip(now_ms)

    def _trip(self, now_ms: float) -> bool:
        self.state = BREAKER_OPEN
        self.opened_at_ms = now_ms
        self.probes_left = 0
        self.trips += 1
        self.window.clear()
        return True


class ResilienceState:
    """Mutable runtime of one :class:`ResiliencePolicy`.

    Owned by a :class:`repro.frontdoor.dispatch.FrontDoor` and kept
    across dispatch runs, so circuit breakers and the retry budget see
    the whole front door's history, not one run's.
    """

    def __init__(self, policy: ResiliencePolicy, rng, now_ms: float) -> None:
        self.policy = policy
        self.rng = rng.fork("retries")
        self.bucket = (TokenBucket(policy.admission_rate_rps,
                                   policy.admission_burst, now_ms)
                       if policy.admission_rate_rps is not None else None)
        self.budget = RetryBudget(policy.retry_budget_fraction,
                                  policy.retry_burst)
        self.breakers: dict[tuple[str, int], CircuitBreaker] = {}
        self.breaker_trips = 0
        self.sheds: dict[str, int] = {}
        self.brownout_admissions = 0

    # -- routing -------------------------------------------------------

    def breaker_for(self, key: tuple[str, int],
                    create: bool = True) -> CircuitBreaker | None:
        """The replica's breaker (created lazily; None when disabled)."""
        if not self.policy.breaker_window:
            return None
        breaker = self.breakers.get(key)
        if breaker is None and create:
            breaker = self.breakers[key] = CircuitBreaker(self.policy)
        return breaker

    def allow_route(self, key: tuple[str, int], now_ms: float) -> bool:
        """Breaker verdict for routing a copy to ``key`` now."""
        breaker = self.breakers.get(key)
        return breaker is None or breaker.allow(now_ms)

    def record_success(self, key: tuple[str, int], now_ms: float) -> None:
        """Feed a copy success to the replica's breaker, if any."""
        breaker = self.breakers.get(key)
        if breaker is not None:
            breaker.record(True, now_ms)

    def record_failure(self, key: tuple[str, int], now_ms: float) -> bool:
        """Feed a failure; returns ``True`` when it trips the breaker."""
        breaker = self.breaker_for(key)
        if breaker is not None and breaker.record(False, now_ms):
            self.breaker_trips += 1
            return True
        return False

    # -- admission -----------------------------------------------------

    def note_shed(self, reason: str) -> None:
        """Count one shed first try under its reason."""
        self.sheds[reason] = self.sheds.get(reason, 0) + 1

    def effective_clone_factor(self, d: int, depth: float) -> int:
        """Brownout: degrade ``d`` toward 1 as mean queue depth grows."""
        policy = self.policy
        if d <= 1 or depth <= policy.brownout_start:
            return d
        if depth >= policy.brownout_full:
            d_eff = 1
        else:
            span = policy.brownout_full - policy.brownout_start
            pressure = (depth - policy.brownout_start) / span
            d_eff = d - int(pressure * (d - 1))
        if d_eff < d:
            self.brownout_admissions += 1
        return d_eff

    # -- retries -------------------------------------------------------

    def backoff_ms(self, attempt: int) -> float:
        """Jittered exponential backoff before retry ``attempt`` (>=1)."""
        policy = self.policy
        base = policy.backoff_base_ms * (2.0 ** (attempt - 1))
        if policy.backoff_jitter:
            base *= 1.0 + policy.backoff_jitter * self.rng.random()
        return base

    # -- reporting / auditing ------------------------------------------

    def report(self) -> dict[str, Any]:
        """JSON-ready snapshot (``GET /status``)."""
        breakers = {
            f"{host}/{domid}": {
                "state": b.state, "trips": b.trips,
                "window_failures": sum(b.window), "window": len(b.window),
            }
            for (host, domid), b in sorted(self.breakers.items())
        }
        open_breakers = sum(1 for b in self.breakers.values()
                            if b.state != BREAKER_CLOSED)
        return {
            "policy": self.policy.to_dict(),
            "retry_budget": {
                "tokens": round(self.budget.tokens, 6),
                "first_tries": self.budget.first_tries,
                "granted": self.budget.granted,
                "denied": self.budget.denied,
            },
            "admission_tokens": (round(self.bucket.tokens, 6)
                                 if self.bucket is not None else None),
            "sheds": dict(sorted(self.sheds.items())),
            "brownout_admissions": self.brownout_admissions,
            "breaker_trips": self.breaker_trips,
            "open_breakers": open_breakers,
            "breakers": breakers,
        }

    def audit(self) -> list[str]:
        """Resilience conservation-law violations (empty = healthy)."""
        violations = list(self.budget.audit())
        for (host, domid), breaker in sorted(self.breakers.items()):
            if breaker.state == BREAKER_HALF_OPEN and breaker.probes_left < 0:
                violations.append(
                    f"breaker {host}/{domid} overdrew its half-open "
                    f"probe quota")
        return violations


# ----------------------------------------------------------------------
# The overload-storm smoke (python -m repro.frontdoor --overload-storm)
# ----------------------------------------------------------------------

#: Policy the storm smoke runs under: admission + brownout + budgeted
#: retries + breakers, all enabled, tuned for the small smoke fleet.
def storm_policy() -> ResiliencePolicy:
    """The protected configuration the overload storm runs under."""
    return ResiliencePolicy(
        sojourn_bound_ms=40.0,
        brownout_start=3.0,
        brownout_full=10.0,
        retry_budget_fraction=0.1,
        retry_burst=8.0,
        max_attempts=3,
        breaker_window=12,
        breaker_failure_threshold=0.5,
        breaker_min_samples=6,
        breaker_probe_quota=2,
    )


@dataclass
class StormReport:
    """Outcome of one overload-storm smoke run."""

    seed: int
    waves: list[dict]
    stats: dict
    resilience: dict
    faults: dict
    violations: list[str]
    fingerprint: str = ""

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation, the fingerprint payload."""
        return {
            "seed": self.seed, "waves": self.waves, "stats": self.stats,
            "resilience": self.resilience, "faults": self.faults,
            "violations": self.violations, "fingerprint": self.fingerprint,
        }


def run_overload_storm(seed: int = 0xC10E, *, hosts: int = 2,
                       replicas: int = 6, requests: int = 3000,
                       waves: int = 3, faults: int = 30,
                       utilization: float = 0.85,
                       clone_factor: int = 4,
                       timeout_ms: float = 30.0) -> StormReport:
    """Seeded chaos storm across the ``frontdoor.*`` fault sites.

    Drives an overloaded dispatch (past the effective-utilization
    knee) in ``waves`` waves under the protected policy while a
    randomized :class:`~repro.faults.plan.FaultPlan` fires admission
    drops, replica stalls, and breaker flaps; runs the full fleet +
    front-door conservation audit *between* waves (mid-run, work in
    flight) and once after quiesce. The report's sha256 fingerprint is
    pinned by ``tests/test_resilience.py`` and compared across ``--runs``
    repetitions by the CLI.
    """
    from repro.apps.traffic import FAAS_INVOKE
    from repro.faults.plan import FaultPlan
    from repro.faults.sites import frontdoor_sites
    from repro.fleet.chaos import audit_fleet
    from repro.frontdoor.session import FleetSession

    plan = FaultPlan.randomized(seed, faults=faults,
                                sites=frontdoor_sites())
    policy = storm_policy()
    session = FleetSession(seed=seed, hosts=hosts, plan=plan,
                           resilience=policy)
    report = StormReport(seed=seed, waves=[], stats={}, resilience={},
                         faults={}, violations=[])
    try:
        session.create_family("storm", ip="10.77.0.1")
        if replicas > 1:
            session.clone("storm", count=replicas - 1)
        arrival_rps = (utilization * replicas
                       * 1000.0 / FAAS_INVOKE.mean_service_ms)
        per_wave = max(1, requests // waves)
        for wave in range(waves):
            result = session.dispatch(
                "storm", workload="faas", requests=per_wave,
                arrival_rps=arrival_rps, clone_factor=clone_factor,
                timeout_ms=timeout_ms, label=f"storm-w{wave}")
            # Mid-run audit: earlier waves' retries may still be in
            # flight inside the front door between dispatch calls.
            report.violations.extend(
                audit_fleet(session.fleet, session.frontdoor))
            report.waves.append({
                "wave": wave,
                "requests": result.requests,
                "offered": result.offered,
                "completed": result.completed,
                "timed_out": result.timed_out,
                "failed": result.failed,
                "shed": result.shed,
                "retries": result.retries,
                "fingerprint": result.fingerprint,
            })
        final = audit_fleet(session.fleet, session.frontdoor)
        report.violations.extend(v for v in final
                                 if v not in report.violations)
        stats = session.frontdoor.stats
        report.stats = {k: round(v, 6) if isinstance(v, float) else v
                        for k, v in sorted(stats.items())}
        report.resilience = session.frontdoor.resilience_report() or {}
        injector = session.fleet.faults
        fired = getattr(injector, "by_site", {})
        report.faults = {site: dict(counts)
                         for site, counts in sorted(fired.items())}
    finally:
        session.close(check=False)
    payload = report.to_dict()
    payload.pop("fingerprint")
    blob = json.dumps(payload, sort_keys=True).encode()
    report.fingerprint = hashlib.sha256(blob).hexdigest()
    return report


def format_storm_report(report: StormReport) -> str:
    """Human-readable storm summary for the CLI."""
    lines = [f"overload storm @ seed {report.seed:#x}"]
    for wave in report.waves:
        lines.append(
            "  wave {wave}: offered={offered} completed={completed} "
            "timed_out={timed_out} shed={shed} retries={retries}".format(
                **wave))
    stats = report.stats
    lines.append(
        f"  totals: offered={stats.get('offered', 0)} "
        f"shed={stats.get('shed', 0)} retries={stats.get('retries', 0)} "
        f"breaker_trips={stats.get('breaker_trips', 0)}")
    fired = sum(sum(c.values()) for c in report.faults.values())
    lines.append(f"  faults fired: {fired} across {len(report.faults)} sites")
    lines.append(f"  violations: {len(report.violations)}")
    for violation in report.violations:
        lines.append(f"    - {violation}")
    lines.append(f"  fingerprint: {report.fingerprint}")
    return "\n".join(lines)
