"""``python -m repro.frontdoor``: the front-door smoke runner.

Mirrors ``python -m repro.fleet``: run the CI-sized request-dispatch
sweep (small fleet, a few thousand requests, a set of clone factors)
one or more times at a fixed seed, print the per-factor latency table,
and exit non-zero on any conservation-law violation, on fingerprint
drift between runs, or on requests that went unaccounted. CI pins
exactly this contract in the ``frontdoor-smoke`` job.

``--overload-storm`` switches to the resilience smoke instead: a
seeded chaos storm across the ``frontdoor.*`` fault sites under the
protected policy (admission control + brownout + budgeted retries +
circuit breakers), with mid-run conservation audits — the contract the
``overload-chaos-smoke`` CI job pins.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import sys

from repro.apps.traffic import SHAPES, as_shape
from repro.fleet.chaos import audit_fleet
from repro.frontdoor.session import FleetSession


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.frontdoor",
        description="Run a deterministic request-cloning dispatch smoke.")
    parser.add_argument("--seed", type=lambda v: int(v, 0), default=0xC10E,
                        help="fleet seed (default 0xC10E)")
    parser.add_argument("--hosts", type=int, default=2,
                        help="member hosts (default 2)")
    parser.add_argument("--replicas", type=int, default=6,
                        help="clone replicas in the pool (default 6)")
    parser.add_argument("--requests", type=int, default=5000,
                        help="requests per clone factor (default 5000)")
    parser.add_argument("--clone-factors", type=str, default="1,2",
                        help="comma-separated clone factors (default 1,2)")
    parser.add_argument("--workload", choices=sorted(SHAPES),
                        default="faas", help="request shape")
    parser.add_argument("--utilization", type=float, default=0.15,
                        help="useful-work operating point (default 0.15)")
    parser.add_argument("--runs", type=int, default=1,
                        help="repeat and require byte-identical "
                             "fingerprints (default 1)")
    parser.add_argument("--parallel", type=int, default=0, metavar="N",
                        help="run the clone factors in up to N worker "
                             "processes (default 0 = serial); each "
                             "factor is an isolated deterministic "
                             "simulation, so results are byte-identical "
                             "either way")
    parser.add_argument("--json", action="store_true",
                        help="print the results as JSON")
    parser.add_argument("--overload-storm", action="store_true",
                        help="run the overload-resilience chaos storm "
                             "(frontdoor.* fault sites, protected "
                             "policy, mid-run audits) instead of the "
                             "dispatch sweep")
    parser.add_argument("--faults", type=int, default=30,
                        help="fault budget for --overload-storm "
                             "(default 30)")
    return parser


def _run_factor(params: dict, d: int) -> tuple[dict, list[str]]:
    """One clone factor's dispatch run.

    Takes and returns only plain data so the sweep can fan factors out
    to worker processes — the ``--parallel`` path — without the session
    objects ever crossing the process boundary.
    """
    shape = as_shape(params["workload"])
    arrival_rps = (params["utilization"] * params["replicas"]
                   * shape.capacity_rps)
    violations: list[str] = []
    with FleetSession(hosts=params["hosts"],
                      seed=params["seed"]) as session:
        session.create_family("smoke", ip="10.42.0.1")
        session.clone("smoke", count=params["replicas"] - 1)
        dispatch = session.dispatch(
            "smoke", shape.name, requests=params["requests"],
            arrival_rps=arrival_rps, clone_factor=d,
            label=f"smoke-d{d}")
        violations.extend(
            f"d={d}: {v}" for v in audit_fleet(session.fleet,
                                               session.frontdoor))
        if dispatch.requests != (dispatch.completed + dispatch.failed
                                 + dispatch.timed_out):
            violations.append(
                f"d={d}: {dispatch.requests} requests but "
                f"{dispatch.completed}+{dispatch.failed}"
                f"+{dispatch.timed_out} resolved")
        session.close(check=False)
    return dispatch.to_dict(), violations


def _one_run(args: argparse.Namespace) -> tuple[list[dict], list[str]]:
    """One sweep; returns (per-factor result dicts, violations)."""
    factors = [int(d) for d in args.clone_factors.split(",") if d]
    params = {"workload": args.workload, "utilization": args.utilization,
              "replicas": args.replicas, "hosts": args.hosts,
              "seed": args.seed, "requests": args.requests}
    if args.parallel > 0 and len(factors) > 1:
        methods = multiprocessing.get_all_start_methods()
        ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")
        with ctx.Pool(min(args.parallel, len(factors))) as pool:
            outcomes = pool.starmap(_run_factor,
                                    [(params, d) for d in factors])
    else:
        outcomes = [_run_factor(params, d) for d in factors]
    results = [result for result, _ in outcomes]
    violations = [v for _, factor_violations in outcomes
                  for v in factor_violations]
    return results, violations


def _storm_main(args: argparse.Namespace) -> int:
    """The ``--overload-storm`` smoke: run, audit, compare, exit."""
    from repro.frontdoor.resilience import (
        format_storm_report,
        run_overload_storm,
    )

    reports = [
        run_overload_storm(args.seed, hosts=args.hosts,
                           replicas=args.replicas, requests=args.requests,
                           faults=args.faults)
        for _ in range(max(1, args.runs))
    ]
    report = reports[-1]
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(format_storm_report(report))
    exit_code = 0
    if report.violations:
        print(f"FAIL: {len(report.violations)} conservation violations",
              file=sys.stderr)
        exit_code = 1
    if len({r.fingerprint for r in reports}) > 1:
        print(f"FAIL: fingerprint drift across {len(reports)} runs",
              file=sys.stderr)
        exit_code = 1
    return exit_code


def main(argv: list[str] | None = None) -> int:
    """Run the smoke sweep; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.overload_storm:
        return _storm_main(args)
    fingerprints: list[str] = []
    results: list[dict] = []
    violations: list[str] = []
    for _ in range(max(1, args.runs)):
        results, violations = _one_run(args)
        fingerprints.append("+".join(r["fingerprint"] for r in results))

    if args.json:
        print(json.dumps({"results": results, "violations": violations},
                         indent=2, sort_keys=True))
    else:
        print(f"frontdoor smoke seed={args.seed:#x} hosts={args.hosts} "
              f"replicas={args.replicas} workload={args.workload}")
        for result in results:
            print(f"  d={result['clone_factor']}: "
                  f"{result['completed']}/{result['requests']} completed, "
                  f"p50={result['latency_p50_ms']:.3f} ms "
                  f"p99={result['latency_p99_ms']:.3f} ms "
                  f"waste={result['waste_fraction']:.3f}")
            print(f"    fingerprint: {result['fingerprint']}")
        if violations:
            print(f"  VIOLATIONS ({len(violations)}):")
            for violation in violations:
                print(f"    - {violation}")
        else:
            print("  conservation audit: clean (zero leaks)")

    exit_code = 0
    if violations:
        print(f"FAIL: {len(violations)} conservation violations",
              file=sys.stderr)
        exit_code = 1
    if len(set(fingerprints)) > 1:
        print(f"FAIL: fingerprint drift across {len(fingerprints)} runs",
              file=sys.stderr)
        exit_code = 1
    return exit_code


if __name__ == "__main__":  # pragma: no cover - module CLI
    sys.exit(main())
