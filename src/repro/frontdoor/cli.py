"""``python -m repro.frontdoor``: the front-door smoke runner.

Mirrors ``python -m repro.fleet``: run the CI-sized request-dispatch
sweep (small fleet, a few thousand requests, a set of clone factors)
one or more times at a fixed seed, print the per-factor latency table,
and exit non-zero on any conservation-law violation, on fingerprint
drift between runs, or on requests that went unaccounted. CI pins
exactly this contract in the ``frontdoor-smoke`` job.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.apps.traffic import SHAPES, as_shape
from repro.fleet.chaos import audit_fleet
from repro.frontdoor.session import FleetSession


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.frontdoor",
        description="Run a deterministic request-cloning dispatch smoke.")
    parser.add_argument("--seed", type=lambda v: int(v, 0), default=0xC10E,
                        help="fleet seed (default 0xC10E)")
    parser.add_argument("--hosts", type=int, default=2,
                        help="member hosts (default 2)")
    parser.add_argument("--replicas", type=int, default=6,
                        help="clone replicas in the pool (default 6)")
    parser.add_argument("--requests", type=int, default=5000,
                        help="requests per clone factor (default 5000)")
    parser.add_argument("--clone-factors", type=str, default="1,2",
                        help="comma-separated clone factors (default 1,2)")
    parser.add_argument("--workload", choices=sorted(SHAPES),
                        default="faas", help="request shape")
    parser.add_argument("--utilization", type=float, default=0.15,
                        help="useful-work operating point (default 0.15)")
    parser.add_argument("--runs", type=int, default=1,
                        help="repeat and require byte-identical "
                             "fingerprints (default 1)")
    parser.add_argument("--json", action="store_true",
                        help="print the results as JSON")
    return parser


def _one_run(args: argparse.Namespace) -> tuple[list[dict], list[str]]:
    """One sweep; returns (per-factor result dicts, violations)."""
    shape = as_shape(args.workload)
    factors = [int(d) for d in args.clone_factors.split(",") if d]
    arrival_rps = args.utilization * args.replicas * shape.capacity_rps
    results: list[dict] = []
    violations: list[str] = []
    for d in factors:
        with FleetSession(hosts=args.hosts, seed=args.seed) as session:
            session.create_family("smoke", ip="10.42.0.1")
            session.clone("smoke", count=args.replicas - 1)
            dispatch = session.dispatch(
                "smoke", shape.name, requests=args.requests,
                arrival_rps=arrival_rps, clone_factor=d,
                label=f"smoke-d{d}")
            violations.extend(
                f"d={d}: {v}" for v in audit_fleet(session.fleet,
                                                   session.frontdoor))
            if dispatch.requests != (dispatch.completed + dispatch.failed
                                     + dispatch.timed_out):
                violations.append(
                    f"d={d}: {dispatch.requests} requests but "
                    f"{dispatch.completed}+{dispatch.failed}"
                    f"+{dispatch.timed_out} resolved")
            session.close(check=False)
        results.append(dispatch.to_dict())
    return results, violations


def main(argv: list[str] | None = None) -> int:
    """Run the smoke sweep; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    fingerprints: list[str] = []
    results: list[dict] = []
    violations: list[str] = []
    for _ in range(max(1, args.runs)):
        results, violations = _one_run(args)
        fingerprints.append("+".join(r["fingerprint"] for r in results))

    if args.json:
        print(json.dumps({"results": results, "violations": violations},
                         indent=2, sort_keys=True))
    else:
        print(f"frontdoor smoke seed={args.seed:#x} hosts={args.hosts} "
              f"replicas={args.replicas} workload={args.workload}")
        for result in results:
            print(f"  d={result['clone_factor']}: "
                  f"{result['completed']}/{result['requests']} completed, "
                  f"p50={result['latency_p50_ms']:.3f} ms "
                  f"p99={result['latency_p99_ms']:.3f} ms "
                  f"waste={result['waste_fraction']:.3f}")
            print(f"    fingerprint: {result['fingerprint']}")
        if violations:
            print(f"  VIOLATIONS ({len(violations)}):")
            for violation in violations:
                print(f"    - {violation}")
        else:
            print("  conservation audit: clean (zero leaks)")

    exit_code = 0
    if violations:
        print(f"FAIL: {len(violations)} conservation violations",
              file=sys.stderr)
        exit_code = 1
    if len(set(fingerprints)) > 1:
        print(f"FAIL: fingerprint drift across {len(fingerprints)} runs",
              file=sys.stderr)
        exit_code = 1
    return exit_code


if __name__ == "__main__":  # pragma: no cover - module CLI
    sys.exit(main())
