"""Linux baselines: process fork() and the Alpine guest VM.

Fig 6 and Fig 8 compare Nephele's cloning against Linux process
forking. The fork cost model follows ON-DEMAND-FORK's measurements
(paper §2, §6.2): fork duration is dominated by copying page-table
entries for the resident set; the *first* fork additionally write-
protects every writable page, which is why it is consistently slower
than the second.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

from repro.sim import CostModel, VirtualClock
from repro.sim.units import MIB, pages_of

if TYPE_CHECKING:  # pragma: no cover
    from repro.guest.unikernel import UnikernelVM


class LinuxProcess:
    """A process inside a Linux kernel (host or guest VM)."""

    _pids = itertools.count(100)

    def __init__(self, clock: VirtualClock, costs: CostModel,
                 name: str = "proc", resident_bytes: int = 2 * MIB) -> None:
        self.pid = next(LinuxProcess._pids)
        self.name = name
        self.clock = clock
        self.costs = costs
        self.resident_pages = pages_of(resident_bytes)
        #: Pages made writable again (dirtied) since the last fork; the
        #: next fork must re-write-protect exactly these.
        self.dirty_pages = self.resident_pages
        self.forked_before = False
        self.children: list[LinuxProcess] = []

    def grow(self, nbytes: int) -> int:
        """Allocate + touch resident memory; returns pages added."""
        npages = pages_of(nbytes)
        self.resident_pages += npages
        self.dirty_pages += npages
        self.clock.charge(self.costs.guest_touch_page * npages)
        return npages

    def touch(self, nbytes: int) -> int:
        """Dirty existing resident memory (post-fork writes COW-fault)."""
        npages = min(pages_of(nbytes), self.resident_pages)
        newly_dirty = min(npages, self.resident_pages - self.dirty_pages)
        if self.forked_before and newly_dirty:
            # Write-protected pages fault and get copied.
            self.clock.charge(self.costs.cow_fault * newly_dirty)
        self.dirty_pages += newly_dirty
        return newly_dirty

    def fork(self) -> tuple["LinuxProcess", float]:
        """fork(); returns (child, duration_ms).

        Cost: fixed syscall cost, one PTE copy per resident page, and
        one write-protect per currently-writable (dirty) page. On the
        first fork every page is writable, so it is the slow one.
        """
        start = self.clock.now
        self.clock.charge(self.costs.fork_base)
        self.clock.charge(self.costs.fork_pte_copy * self.resident_pages)
        self.clock.charge(self.costs.fork_cow_mark * self.dirty_pages)
        duration = self.clock.now - start

        child = LinuxProcess(self.clock, self.costs, f"{self.name}-child", 0)
        child.resident_pages = self.resident_pages
        child.dirty_pages = 0
        child.forked_before = False
        self.children.append(child)
        self.dirty_pages = 0
        self.forked_before = True
        return child, duration


class LinuxVM:
    """An Alpine Linux guest VM hosting baseline processes (Fig 8)."""

    def __init__(self, vm: "UnikernelVM") -> None:
        if vm.image.flavor != "linux":
            raise ValueError(f"LinuxVM needs a linux image, got {vm.image.flavor}")
        self.vm = vm
        self.processes: list[LinuxProcess] = []

    @property
    def clock(self) -> VirtualClock:
        return self.vm.platform.clock

    @property
    def costs(self) -> CostModel:
        return self.vm.platform.costs

    def spawn(self, name: str, resident_bytes: int = 2 * MIB) -> LinuxProcess:
        """Start a process inside the VM."""
        process = LinuxProcess(self.clock, self.costs, name, resident_bytes)
        self.processes.append(process)
        return process

    def p9_mount(self, index: int = 0):
        """The 9pfs share mounted inside the VM."""
        mounts = self.vm.domain.frontends.get("9pfs", [])
        if not mounts:
            raise RuntimeError("Alpine VM has no 9pfs mount configured")
        return mounts[index]
