"""Guests: unikernel VMs and Linux baselines.

The unikernel model covers Mini-OS and Unikraft style guests: a
statically linked image, a tinyalloc-style heap, paravirtual device
frontends and the Nephele guest API (``fork()``, IDC, sockets, 9pfs
files). Linux baselines model process ``fork()`` cost (Fig 6/8) and an
Alpine VM for the Redis comparison.
"""

from repro.guest.api import GuestAPI, Region
from repro.guest.app import GuestApp
from repro.guest.image import UnikernelImage, IMAGES
from repro.guest.linux import LinuxProcess, LinuxVM
from repro.guest.unikernel import UnikernelVM

__all__ = [
    "UnikernelImage",
    "IMAGES",
    "GuestApp",
    "GuestAPI",
    "Region",
    "UnikernelVM",
    "LinuxProcess",
    "LinuxVM",
]
