"""The unikernel VM: image + kernel + app glued to a domain."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.devices.console import ConsoleFrontend
from repro.devices.vif import NetFrontend
from repro.guest.api import GuestAPI
from repro.guest.image import IMAGES, UnikernelImage
from repro.net.packets import Packet
from repro.xen.domain import Domain, DomainState

if TYPE_CHECKING:  # pragma: no cover
    from repro.guest.app import GuestApp


def default_mac(domid: int, index: int) -> str:
    """The Xen-prefixed MAC xl generates when the config omits one."""
    return f"00:16:3e:00:{domid % 256:02x}:{index:02x}"


class UnikernelVM:
    """Guest kernel wrapper living on a domain."""

    #: Kernel data/stack pages a resumed clone dirties before running
    #: application code (timers, netfront state, stack frames). Part of
    #: the ~1.4 MiB per-clone private memory of Fig 5.
    RESUME_DIRTY_PAGES = 28

    def __init__(self, platform: Any, domain: Domain, image: UnikernelImage,
                 app: "GuestApp | None" = None) -> None:
        self.platform = platform
        self.domain = domain
        self.image = image
        self.app = app
        self.udp_handlers: dict[int, Any] = {}
        self._api: GuestAPI | None = None
        # tinyalloc heap: a pfn range carved out of guest RAM at boot.
        self.kernel_pages = 0
        self.heap_base_pfn = 0
        self.heap_npages = 0
        self.heap_cursor = 0
        domain.guest = self

    @classmethod
    def from_config(cls, platform: Any, domain: Domain,
                    app: "GuestApp | None" = None) -> "UnikernelVM":
        image = IMAGES[domain.config.kernel] if domain.config.kernel in IMAGES \
            else IMAGES["minios-udp"]
        return cls(platform, domain, image, app)

    @property
    def api(self) -> GuestAPI:
        if self._api is None:
            self._api = GuestAPI(self)
        return self._api

    # ------------------------------------------------------------------
    # boot path
    # ------------------------------------------------------------------
    def load(self, restored: bool = False) -> None:
        """Load the kernel image and create device frontends.

        ``restored=True`` skips the image-load cost: an xl restore
        repopulates memory from the save image instead (charged by xl).
        """
        costs = self.platform.costs
        clock = self.platform.clock
        pages = self.image.kernel_pages
        self.domain.populate_ram(pages, label="kernel")
        self.kernel_pages = pages
        clock.charge(costs.page_alloc * pages)
        if not restored:
            clock.charge(costs.image_load_per_page * pages)
        ConsoleFrontend(self.domain)
        config = self.domain.config
        if config is not None:
            for index, vif_config in enumerate(config.vifs):
                mac = vif_config.mac or default_mac(self.domain.domid, index)
                frontend = NetFrontend(self.domain, index, mac, vif_config.ip)
                frontend.rx_handler = self._dispatch_packet
                frontend.rx_filter = self._wants_packet
        # 9pfs frontends are created by the toolstack's P9 service.
        # The rest of the RAM budget becomes the tinyalloc heap: a PV
        # guest owns its whole allocation from boot.
        free = self.domain.ram_pages_free()
        if free > 0:
            heap = self.domain.populate_ram(free, label="heap")
            clock.charge(costs.page_alloc * free)
            self.heap_base_pfn = heap.pfn_start
            self.heap_npages = free
        self.heap_cursor = 0

    def start(self) -> None:
        """Kernel boot: early init, lwip up, run the application."""
        costs = self.platform.costs
        boot_cost = (costs.linux_vm_boot if self.image.flavor == "linux"
                     else costs.guest_boot_fixed)
        self.platform.clock.charge(boot_cost)
        self.domain.state = DomainState.RUNNING
        if self.app is not None:
            self.app.main(self.api)

    # ------------------------------------------------------------------
    # packet dispatch
    # ------------------------------------------------------------------
    def _dispatch_packet(self, packet: Packet) -> None:
        handler = self.udp_handlers.get(packet.flow.dst_port)
        if handler is not None:
            handler(packet)

    def _wants_packet(self, packet: Packet) -> bool:
        """RX interest pre-filter: mirrors :meth:`_dispatch_packet`'s
        drop condition so switches can skip pointless flood deliveries."""
        return packet.flow.dst_port in self.udp_handlers

    def filters_changed(self) -> None:
        """A UDP socket was bound/unbound: invalidate switch-side
        cached acceptance decisions for this guest's vifs."""
        for vif in self.domain.frontends.get("vif", []):
            backend = vif.backend
            if backend is not None:
                backend.port.touch()

    # ------------------------------------------------------------------
    # cloning hooks (called by the Nephele first stage)
    # ------------------------------------------------------------------
    def clone_for_child(self, child: Domain, child_index: int) -> int:
        """Replicate guest-level state into ``child``.

        Clones every device frontend (the vif rings and preallocated
        buffers are copied - paper §4.2) and the application object.
        Returns the number of pages that had to be copied, so the clone
        engine can charge for them.
        """
        copied_pages = 0
        child_vm = UnikernelVM(self.platform, child, self.image,
                               app=None)
        for console in self.domain.frontends.get("console", []):
            console.clone_for(child)
        for vif in self.domain.frontends.get("vif", []):
            vif_clone = vif.clone_for(child)
            vif_clone.rx_handler = child_vm._dispatch_packet
            vif_clone.rx_filter = child_vm._wants_packet
            copied_pages += vif.private_pages
        for mount in self.domain.frontends.get("9pfs", []):
            mount.clone_for(child)
        if self.app is not None:
            child_vm.app = self.app.clone_for_child()
        child_vm.udp_handlers = dict(self.udp_handlers)
        # tinyalloc state is part of the cloned memory image.
        child_vm.kernel_pages = self.kernel_pages
        child_vm.heap_base_pfn = self.heap_base_pfn
        child_vm.heap_npages = self.heap_npages
        child_vm.heap_cursor = self.heap_cursor
        child.state = DomainState.PAUSED
        return copied_pages

    def on_resumed_after_clone(self, child_index: int) -> None:
        """Child-side continuation: the fork() == 0 branch."""
        # Kernel data/stack writes on resume COW a handful of pages.
        dirty = min(self.RESUME_DIRTY_PAGES, self.kernel_pages)
        if dirty > 0:
            stats = self.domain.memory.write_range(
                self.kernel_pages - dirty, dirty)
            costs = self.platform.costs
            self.platform.clock.charge(costs.cow_fault * stats.copied
                                       + costs.cow_adopt * stats.adopted)
        if self.app is not None:
            self.app.on_cloned(self.api, child_index)

    def on_resumed_after_restore(self) -> None:
        """Post-restore continuation (xl restore resumed us)."""
        if self.app is not None:
            self.app.on_restored(self.api)
