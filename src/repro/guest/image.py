"""Unikernel images.

Statically linked unikernels have comparatively large binaries with a
significant share of text/rodata, which makes them "great candidates
for increasing the memory density by means of cloning" (paper §4.1):
those sections are read-only or written once at init, so clones share
them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.units import KIB, MIB, pages_of


@dataclass(frozen=True)
class UnikernelImage:
    """Section layout of a unikernel binary."""

    name: str
    text_bytes: int
    rodata_bytes: int
    data_bytes: int
    bss_bytes: int
    flavor: str = "unikraft"  # "minios" | "unikraft" | "linux"

    @property
    def binary_bytes(self) -> int:
        """On-disk image size (bss occupies no file space)."""
        return self.text_bytes + self.rodata_bytes + self.data_bytes

    @property
    def kernel_pages(self) -> int:
        """Resident pages the loaded image occupies."""
        return pages_of(self.text_bytes + self.rodata_bytes
                        + self.data_bytes + self.bss_bytes)

    @property
    def readonly_pages(self) -> int:
        """Pages that stay read-only for the image's lifetime."""
        return pages_of(self.text_bytes + self.rodata_bytes)


#: Image catalogue used by the experiments.
IMAGES: dict[str, UnikernelImage] = {
    # The Mini-OS UDP server of §6.1 (LightVM methodology): tiny guest.
    "minios-udp": UnikernelImage(
        name="minios-udp", flavor="minios",
        text_bytes=260 * KIB, rodata_bytes=90 * KIB,
        data_bytes=40 * KIB, bss_bytes=180 * KIB,
    ),
    # Unikraft + tinyalloc memhog for the Fig 6 memory-cloning probe.
    "unikraft-memhog": UnikernelImage(
        name="unikraft-memhog", flavor="unikraft",
        text_bytes=420 * KIB, rodata_bytes=120 * KIB,
        data_bytes=60 * KIB, bss_bytes=220 * KIB,
    ),
    # Unikraft + lwip + NGINX (§7.1).
    "unikraft-nginx": UnikernelImage(
        name="unikraft-nginx", flavor="unikraft",
        text_bytes=1300 * KIB, rodata_bytes=420 * KIB,
        data_bytes=130 * KIB, bss_bytes=400 * KIB,
    ),
    # Unikraft + Redis (§7.1).
    "unikraft-redis": UnikernelImage(
        name="unikraft-redis", flavor="unikraft",
        text_bytes=1500 * KIB, rodata_bytes=380 * KIB,
        data_bytes=150 * KIB, bss_bytes=500 * KIB,
    ),
    # Unikraft syscall-fuzzing adapter (§7.2).
    "unikraft-fuzz": UnikernelImage(
        name="unikraft-fuzz", flavor="unikraft",
        text_bytes=600 * KIB, rodata_bytes=150 * KIB,
        data_bytes=80 * KIB, bss_bytes=250 * KIB,
    ),
    # Unikraft + Python 3.7 interpreter for FaaS (§7.3): "a 6 MB binary
    # image linking together Unikraft with the Python 3.7.4 interpreter".
    "unikraft-python": UnikernelImage(
        name="unikraft-python", flavor="unikraft",
        text_bytes=4200 * KIB, rodata_bytes=1300 * KIB,
        data_bytes=250 * KIB, bss_bytes=900 * KIB,
    ),
    # Alpine Linux kernel+initrd for the Redis baseline VM.
    "alpine-linux": UnikernelImage(
        name="alpine-linux", flavor="linux",
        text_bytes=12 * MIB, rodata_bytes=4 * MIB,
        data_bytes=2 * MIB, bss_bytes=6 * MIB,
    ),
}
