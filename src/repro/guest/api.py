"""The guest API: what application code inside a unikernel can do.

This is the surface Unikraft/Mini-OS expose to the ported application:
memory allocation (tinyalloc-style), UDP/packet I/O through netfront,
9pfs files, the Nephele ``fork()`` (a thin wrapper over the CLONEOP
hypercall — "using the cloning interface from inside a guest is as easy
as calling fork() from a process", paper §4) and IDC pipes/socketpairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.idc.pipe import Pipe
from repro.idc.socketpair import SocketPair
from repro.net.packets import Flow, Packet
from repro.sim.units import pages_of
from repro.xen.errors import XenInvalidError

if TYPE_CHECKING:  # pragma: no cover
    from repro.guest.unikernel import UnikernelVM


@dataclass
class Region:
    """A guest-virtual allocation (tinyalloc chunk)."""

    pfn_start: int
    npages: int
    nbytes: int


PacketHandler = Callable[[Packet], None]


class GuestAPI:
    """Per-guest handle passed to application code."""

    def __init__(self, vm: "UnikernelVM") -> None:
        self._vm = vm
        self.platform = vm.platform
        self.domain = vm.domain

    # ------------------------------------------------------------------
    # identity / time
    # ------------------------------------------------------------------
    @property
    def domid(self) -> int:
        return self.domain.domid

    @property
    def now(self) -> float:
        return self.platform.clock.now

    def console(self, line: str) -> None:
        """Print to the guest console (ring + xenconsoled log)."""
        consoles = self.domain.frontends.get("console", [])
        if consoles:
            consoles[0].write_line(line)

    # ------------------------------------------------------------------
    # memory (tinyalloc model)
    # ------------------------------------------------------------------
    def alloc(self, nbytes: int, touch: bool = True) -> Region:
        """Allocate memory from the guest heap (tinyalloc model).

        The heap pages were populated at boot (a PV guest owns its whole
        RAM allocation); allocation is a bump of the allocator cursor.
        With ``touch=True`` (the default - tinyalloc returns zeroed
        chunks) the pages are written, so shared pages COW-fault.
        """
        from repro.xen.errors import XenNoMemoryError

        npages = pages_of(nbytes)
        vm = self._vm
        if vm.heap_cursor + npages > vm.heap_npages:
            raise XenNoMemoryError(
                f"guest {self.domid} heap exhausted: need {npages} pages, "
                f"{vm.heap_npages - vm.heap_cursor} left")
        region = Region(vm.heap_base_pfn + vm.heap_cursor, npages, nbytes)
        vm.heap_cursor += npages
        if touch:
            self.touch(region)
        return region

    def touch(self, region: Region, npages: int | None = None,
              offset_pages: int = 0):
        """Write to an allocated region; COW-faults shared pages.

        Returns the :class:`~repro.xen.memory.CowStats` of the write so
        callers can inspect copies vs adoptions.
        """
        count = region.npages - offset_pages if npages is None else npages
        if count <= 0 or offset_pages + count > region.npages:
            raise XenInvalidError(
                f"touch outside region: offset={offset_pages} count={count} "
                f"region={region.npages}")
        stats = self.domain.memory.write_range(
            region.pfn_start + offset_pages, count)
        costs = self.platform.costs
        self.platform.clock.charge(
            costs.guest_touch_page * count
            + costs.cow_fault * stats.copied
            + costs.cow_adopt * stats.adopted
        )
        return stats

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def shutdown(self) -> None:
        """Clean poweroff; the toolstack applies the on_poweroff policy."""
        self.platform.hypervisor.guest_shutdown(self.domid, crashed=False)

    def crash(self) -> None:
        """Guest panic; the toolstack applies the on_crash policy."""
        self.platform.hypervisor.guest_shutdown(self.domid, crashed=True)

    # ------------------------------------------------------------------
    # fork / clone
    # ------------------------------------------------------------------
    def fork(self, count: int = 1) -> list[int]:
        """Clone this VM ``count`` times; returns the children's domids.

        Parent view only: each child resumes with its app's
        ``on_cloned`` hook, the moral ``fork() == 0`` branch.
        """
        return self.platform.cloneop.clone(self.domain.domid, count=count)

    # ------------------------------------------------------------------
    # network (UDP over netfront)
    # ------------------------------------------------------------------
    def udp_bind(self, port: int, handler: PacketHandler) -> None:
        """Listen for UDP datagrams on ``port``."""
        self._vm.udp_handlers[port] = handler
        self._vm.filters_changed()

    def udp_unbind(self, port: int) -> None:
        """Stop listening on ``port``."""
        self._vm.udp_handlers.pop(port, None)
        self._vm.filters_changed()

    def udp_send(self, dst_ip: str, dst_port: int, payload: Any = None,
                 src_port: int = 9000, size: int = 64, index: int = 0) -> None:
        """Send a UDP datagram through the given vif."""
        vif = self.vif(index)
        flow = Flow(src_ip=vif.ip, dst_ip=dst_ip, src_port=src_port,
                    dst_port=dst_port, proto="udp")
        packet = Packet(src_mac=vif.mac, dst_mac="ff:ff:ff:ff:ff:ff",
                        flow=flow, payload=payload, size=size)
        self.platform.clock.charge(self.platform.costs.net_tx_packet)
        vif.transmit(packet)

    def reply(self, request: Packet, payload: Any = None,
              size: int = 64, index: int = 0) -> None:
        """Answer a received packet (swap the flow around)."""
        flow = Flow(src_ip=request.flow.dst_ip, dst_ip=request.flow.src_ip,
                    src_port=request.flow.dst_port,
                    dst_port=request.flow.src_port, proto=request.flow.proto)
        vif = self.vif(index)
        packet = Packet(src_mac=vif.mac, dst_mac=request.src_mac,
                        flow=flow, payload=payload, size=size)
        self.platform.clock.charge(self.platform.costs.net_tx_packet)
        vif.transmit(packet)

    def vif(self, index: int = 0):
        """The guest's netfront device ``index``."""
        vifs = self.domain.frontends.get("vif", [])
        for frontend in vifs:
            if frontend.index == index:
                return frontend
        raise XenInvalidError(
            f"domain {self.domid} has no vif {index} (has {len(vifs)})")

    # ------------------------------------------------------------------
    # files (9pfs)
    # ------------------------------------------------------------------
    def _p9(self, index: int = 0):
        mounts = self.domain.frontends.get("9pfs", [])
        if not mounts:
            raise XenInvalidError(f"domain {self.domid} has no 9pfs mount")
        return mounts[index]

    def open(self, path: str, mode: str = "rw", create: bool = False) -> int:
        """Open a file on the first 9pfs mount; returns a fid."""
        return self._p9().open(path, mode, create)

    def write_file(self, fid: int, nbytes: int) -> int:
        """Write ``nbytes`` at the fid's offset."""
        return self._p9().write(fid, nbytes)

    def read_file(self, fid: int, nbytes: int) -> int:
        """Read up to ``nbytes``; returns the bytes read."""
        return self._p9().read(fid, nbytes)

    def close_file(self, fid: int) -> None:
        """Close a fid."""
        self._p9().close(fid)

    # ------------------------------------------------------------------
    # IDC (pre-fork IPC setup)
    # ------------------------------------------------------------------
    def pipe(self) -> Pipe:
        """Create an anonymous IDC pipe (call before fork())."""
        return Pipe(self.platform.hypervisor, self.domain)

    def socketpair(self) -> SocketPair:
        """Create an IDC socket pair (call before fork())."""
        return SocketPair(self.platform.hypervisor, self.domain)
