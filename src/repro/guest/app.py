"""Guest application protocol.

A guest app is a Python object driven by the unikernel: ``main`` runs
at boot, ``on_cloned`` runs in a child right after a clone operation
completes — the moral equivalent of the ``fork() == 0`` branch. Apps
must implement ``clone_for_child`` to produce the child's state (the
default shallow-copies, which matches fork's share-then-COW semantics
for immutable state; apps with mutable state override it).
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.guest.api import GuestAPI


class GuestApp:
    """Base class for guest applications."""

    #: Image the app is built into (key of repro.guest.image.IMAGES).
    image_name = "minios-udp"

    def main(self, api: "GuestAPI") -> None:
        """Entry point; runs once at boot (or restore). Event-driven
        apps register handlers here and return."""

    def clone_for_child(self) -> "GuestApp":
        """Produce the child's application state at clone time."""
        return copy.copy(self)

    def on_cloned(self, api: "GuestAPI", child_index: int) -> None:
        """Runs in the *child* once it is resumed after cloning.

        ``child_index`` is the CLONEOP return value minus one (the rax
        fixup gives the parent 0 and each child 1 + its index).
        """

    def on_restored(self, api: "GuestAPI") -> None:
        """Runs after an xl restore resumed this guest."""
