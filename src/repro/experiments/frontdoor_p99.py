"""Front-door headline: P99 latency vs. request-clone factor *d*.

The first experiment that composes *every* prior subsystem under one
API: a :class:`~repro.frontdoor.session.FleetSession` places a clone
family across member hosts (clone fast path + fleet placement), the
front door dispatches an open-loop Poisson request stream with request
cloning + cancellation (PR 6), and the measured tail is validated
against the processor-sharing model's analytic curves
(:mod:`repro.frontdoor.model`).

The expected shape, from "Modeling of Request Cloning in Cloud Server
Systems using Processor Sharing": cloning trades wasted work for
tail-latency shielding, so P99 *improves* monotonically with ``d``
while the effective utilization ``rho_eff = served / capacity`` stays
clear of 1, then blows up past the **capacity knee** where the
cancelled copies' waste saturates the fleet. At the default operating
point (rho ~ 0.15; synchronized exponential demand, whose waste per
extra copy approaches 1 at light load) the knee sits near d=8 — the
headline curve dips through d=2..3 and then spikes.

A composed variant runs the same dispatch under an autoscaler *and* a
host-kill fault plan with live heartbeats: the origin host dies
mid-run, its replicas' in-flight copies are lost, the fleet re-places
the clones on survivors, the front door re-resolves its pool, and the
conservation laws still hold.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

from repro.apps.traffic import as_shape
from repro.experiments.report import format_table
from repro.faults.plan import FaultPlan, FaultSpec
from repro.fleet.chaos import audit_fleet
from repro.frontdoor.dispatch import AutoscalePolicy
from repro.frontdoor.model import measured_rho_eff, quantile_sojourn_ms
from repro.frontdoor.results import DispatchResult
from repro.frontdoor.session import FleetSession

#: rho_eff above this is "at the knee": the open-loop backlog grows for
#: as long as arrivals continue, so the measured tail is a function of
#: run length and only its *divergence* is meaningful.
KNEE_RHO = 0.95


@dataclass
class FrontdoorPoint:
    """One clone factor's measured + predicted tail."""

    clone_factor: int
    requests: int
    completed: int
    failed: int
    timed_out: int
    latency_p50_ms: float
    latency_p99_ms: float
    latency_mean_ms: float
    waste_fraction: float
    #: served work / (duration x replicas): utilization incl. waste.
    rho_eff: float
    #: The analytic M/M/1-PS prediction at the measured rho_eff.
    predicted_p99_ms: float
    fingerprint: str

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (infinities become strings)."""
        return {
            "d": self.clone_factor,
            "requests": self.requests,
            "completed": self.completed,
            "failed": self.failed,
            "timed_out": self.timed_out,
            "p50_ms": round(self.latency_p50_ms, 6),
            "p99_ms": round(self.latency_p99_ms, 6),
            "mean_ms": round(self.latency_mean_ms, 6),
            "waste": round(self.waste_fraction, 6),
            "rho_eff": round(self.rho_eff, 6),
            "predicted_p99_ms": (round(self.predicted_p99_ms, 6)
                                 if self.predicted_p99_ms != float("inf")
                                 else "inf"),
            "fingerprint": self.fingerprint,
        }


@dataclass
class FrontdoorP99Result:
    """The full sweep plus the composed chaos run."""

    seed: int
    shape: str
    hosts: int
    replicas: int
    base_rho: float
    arrival_rps: float
    points: list[FrontdoorPoint] = field(default_factory=list)
    total_requests: int = 0
    composed: dict[str, Any] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)
    fingerprint: str = ""

    def point(self, d: int) -> FrontdoorPoint:
        """The data point for clone factor ``d``."""
        for point in self.points:
            if point.clone_factor == d:
                return point
        raise KeyError(d)

    def stable_points(self) -> list[FrontdoorPoint]:
        """Points measured clear of the capacity knee."""
        return [p for p in self.points if p.rho_eff < KNEE_RHO]

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation, the fingerprint payload."""
        return {
            "seed": self.seed,
            "shape": self.shape,
            "hosts": self.hosts,
            "replicas": self.replicas,
            "base_rho": round(self.base_rho, 6),
            "arrival_rps": round(self.arrival_rps, 6),
            "points": [p.to_dict() for p in self.points],
            "total_requests": self.total_requests,
            "composed": self.composed,
            "violations": list(self.violations),
            "fingerprint": self.fingerprint,
        }


def _measure(session: FleetSession, family: str, shape_name: str, *,
             requests: int, arrival_rps: float, clone_factor: int,
             replicas: int) -> tuple[DispatchResult, float]:
    """One dispatch run; returns (result, measured rho_eff)."""
    result = session.dispatch(
        family, shape_name, requests=requests, arrival_rps=arrival_rps,
        clone_factor=clone_factor, label=f"p99-d{clone_factor}")
    rho_eff = measured_rho_eff(result.work_served_ms, result.duration_ms,
                               replicas)
    return result, rho_eff


def run(seed: int = 0xC10E, *, shape: str = "faas",
        clone_factors: tuple[int, ...] = (1, 2, 3, 4, 6, 8),
        requests_per_factor: int = 175_000,
        hosts: int = 4, replicas: int = 12,
        utilization: float = 0.15,
        composed: bool = True,
        composed_requests: int | None = None) -> FrontdoorP99Result:
    """The P99-vs-*d* sweep (defaults: >= 1M requests total).

    Every clone factor runs on a *fresh* same-seed fleet, so the
    factors are independent and the whole sweep is reproducible
    byte-for-byte. ``utilization`` is the useful-work operating point;
    with the synchronized-service waste of exponential demand the
    capacity knee then lands inside the default factor range.
    """
    request_shape = as_shape(shape)
    arrival_rps = utilization * replicas * request_shape.capacity_rps
    result = FrontdoorP99Result(
        seed=seed, shape=request_shape.name, hosts=hosts,
        replicas=replicas, base_rho=utilization, arrival_rps=arrival_rps)

    for d in clone_factors:
        with FleetSession(hosts=hosts, seed=seed) as session:
            session.create_family("p99", ip="10.99.0.1")
            session.clone("p99", count=replicas - 1)
            dispatch, rho_eff = _measure(
                session, "p99", request_shape.name,
                requests=requests_per_factor, arrival_rps=arrival_rps,
                clone_factor=d, replicas=replicas)
            result.violations.extend(
                f"d={d}: {v}" for v in audit_fleet(session.fleet,
                                                   session.frontdoor))
            session.close(check=False)
        result.points.append(FrontdoorPoint(
            clone_factor=d, requests=dispatch.requests,
            completed=dispatch.completed, failed=dispatch.failed,
            timed_out=dispatch.timed_out,
            latency_p50_ms=dispatch.latency_p50_ms,
            latency_p99_ms=dispatch.latency_p99_ms,
            latency_mean_ms=dispatch.latency_mean_ms,
            waste_fraction=dispatch.waste_fraction,
            rho_eff=rho_eff,
            predicted_p99_ms=quantile_sojourn_ms(
                request_shape.mean_service_ms, rho_eff, d=d),
            fingerprint=dispatch.fingerprint))
        result.total_requests += dispatch.requests

    if composed:
        result.composed = _run_composed(
            seed, request_shape.name, hosts=hosts,
            requests=(composed_requests if composed_requests is not None
                      else max(10_000, requests_per_factor // 8)),
            arrival_rps=arrival_rps / 2.0)
        result.total_requests += result.composed["requests"]
        result.violations.extend(result.composed.pop("violations"))

    payload = result.to_dict()
    payload.pop("fingerprint")
    result.fingerprint = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()
    return result


def _run_composed(seed: int, shape_name: str, *, hosts: int,
                  requests: int, arrival_rps: float) -> dict[str, Any]:
    """Dispatch at d=2 while the autoscaler grows the family and a
    host-kill storm takes the origin host down mid-run."""
    plan = FaultPlan(specs=[
        FaultSpec(site="host.crash", match={"op": "heartbeat"},
                  after=4, count=1),
    ], name=f"frontdoor-composed-{seed:#x}")
    with FleetSession(hosts=hosts, seed=seed, plan=plan) as session:
        session.create_family("burst", ip="10.99.1.1")
        session.clone("burst", count=3)
        policy = AutoscalePolicy(
            threshold_rps=0.5 * as_shape(shape_name).capacity_rps,
            check_interval_ms=200.0, max_replicas=24, scale_step=2)
        dispatch = session.dispatch(
            "burst", shape_name, requests=requests,
            arrival_rps=arrival_rps, clone_factor=2,
            autoscale=policy, heartbeat_every_ms=50.0,
            label="composed")
        stats = dict(session.frontdoor.stats)
        fleet_stats = dict(session.fleet.stats)
        violations = audit_fleet(session.fleet, session.frontdoor)
        session.close(check=False)
    return {
        "requests": dispatch.requests,
        "completed": dispatch.completed,
        "failed": dispatch.failed,
        "timed_out": dispatch.timed_out,
        "copies_lost": dispatch.copies_lost,
        "p99_ms": round(dispatch.latency_p99_ms, 6),
        "hosts_killed": (fleet_stats["hosts_crashed"]
                         + fleet_stats["hosts_fenced"]),
        "children_replaced": fleet_stats["children_replaced"],
        "autoscale_events": stats["autoscale_events"],
        "servers_retired": stats["servers_retired"],
        "fingerprint": dispatch.fingerprint,
        "violations": violations,
    }


def run_quick(seed: int = 0xC10E) -> FrontdoorP99Result:
    """The CI-sized sweep: small fleet, 10k requests, d in {1, 2}."""
    return run(seed, clone_factors=(1, 2), requests_per_factor=5_000,
               hosts=2, replicas=6, composed=True,
               composed_requests=2_000)


def format_result(result: FrontdoorP99Result) -> str:
    """The P99-vs-d table with the analytic comparison."""
    rows = []
    for point in result.points:
        predicted = (f"{point.predicted_p99_ms:.2f}"
                     if point.predicted_p99_ms != float("inf") else "inf")
        knee = " <- knee" if point.rho_eff >= KNEE_RHO else ""
        rows.append([
            point.clone_factor,
            f"{point.rho_eff:.3f}{knee}",
            f"{point.waste_fraction:.3f}",
            f"{point.latency_p50_ms:.2f}",
            f"{point.latency_p99_ms:.2f}",
            predicted,
        ])
    table = format_table(
        f"Front door: P99 vs clone factor (shape={result.shape}, "
        f"rho={result.base_rho:.2f}, {result.replicas} replicas, "
        f"{result.total_requests} requests)",
        ["d", "rho_eff", "waste", "p50 ms", "p99 ms", "model p99 ms"],
        rows)
    lines = [table]
    if result.composed:
        composed = result.composed
        lines.append(
            f"\ncomposed (autoscale + host-kill): "
            f"{composed['completed']}/{composed['requests']} completed, "
            f"{composed['hosts_killed']} hosts killed, "
            f"{composed['children_replaced']} clones re-placed, "
            f"{composed['autoscale_events']} scale-ups, "
            f"p99 {composed['p99_ms']:.2f} ms")
    lines.append(
        "\nmodel: P99 improves monotonically with d until rho_eff "
        "approaches 1 (the capacity knee), then diverges")
    if result.violations:
        lines.append(f"\nVIOLATIONS ({len(result.violations)}):")
        lines.extend(f"  - {violation}" for violation in result.violations)
    return "".join(lines)
