"""Plain-text reporting helpers for the experiment runners."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(title: str, headers: Sequence[str],
                 rows: Iterable[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    materialized = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(cell.rjust(widths[i]) if i else cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.0f}"
        if value >= 1:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def series_summary(values: Sequence[float],
                   spike_threshold: float | None = None) -> dict:
    """First/last/mean/max summary, optionally excluding spikes."""
    if not values:
        return {"first": 0.0, "last": 0.0, "mean": 0.0, "max": 0.0, "n": 0}
    usable = ([v for v in values if v < spike_threshold]
              if spike_threshold is not None else list(values))
    if not usable:
        usable = list(values)
    return {
        "first": values[0],
        "last": usable[-1],
        "mean": sum(usable) / len(usable),
        "max": max(values),
        "n": len(values),
    }
