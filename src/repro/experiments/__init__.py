"""Experiment runners: one module per figure of the paper's evaluation.

Each module exposes a ``run_*`` function returning a structured result
plus a ``format_*`` helper that prints the same series the paper plots.
The benchmarks under ``benchmarks/`` and ``examples/reproduce_figures.py``
are thin wrappers over these.
"""

from repro.experiments import (  # noqa: F401
    fig4_instantiation,
    fig5_density,
    fig6_memory_cloning,
    fig7_nginx,
    fig8_redis,
    fig9_fuzzing,
    fig10_faas_memory,
    fig11_faas_reaction,
    frontdoor_p99,
    kvm_compare,
    motivation_idle_pool,
)
