"""Fig 10: OpenFaaS memory consumption, containers vs unikernels.

Both setups autoscale a hello-world Python function under load for
200 s; occupied memory is sampled each second and the dashed lines mark
when instances become ready.

Paper: first container ~90 MB then ~220 MB per instance; first
unikernel ~85 MB (64 MB VM + 21 MB Dom0 services) then ~35 MB per
clone; clones ready ~5 s sooner on average per scaling event (and tens
of seconds sooner in absolute cold-start terms).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.faas import (
    FaasBackendType,
    FaasConfig,
    FaasTimeline,
    OpenFaasGateway,
)
from repro.experiments.plot import line_chart
from repro.experiments.report import format_table
from repro.platform import Platform
from repro.sim.units import GIB


@dataclass
class Fig10Result:
    containers: FaasTimeline
    unikernels: FaasTimeline

    def per_instance_mb(self, timeline: FaasTimeline) -> float:
        """Average memory added per extra instance."""
        first = timeline.memory[1][1]
        last = timeline.memory[-1][1]
        instances = len(timeline.ready_times_s)
        return (last - first) / max(1, instances)


def _gateway(backend: FaasBackendType, max_replicas: int) -> OpenFaasGateway:
    platform = Platform.create(total_memory_bytes=32 * GIB,
                               dom0_memory_bytes=8 * GIB, cpus=10)
    return OpenFaasGateway(platform, backend,
                           config=FaasConfig(max_replicas=max_replicas))


def run(duration_s: float = 200.0, max_replicas: int = 6) -> Fig10Result:
    """Run the memory experiment for both backends."""
    containers = _gateway(FaasBackendType.CONTAINER, max_replicas) \
        .run(duration_s=duration_s)
    unikernels = _gateway(FaasBackendType.UNIKERNEL, max_replicas) \
        .run(duration_s=duration_s)
    return Fig10Result(containers=containers, unikernels=unikernels)


def format_result(result: Fig10Result) -> str:
    """The Fig 10 memory table + chart."""
    rows = []
    for timeline in (result.containers, result.unikernels):
        first_mb = timeline.memory[1][1]
        last_mb = timeline.memory[-1][1]
        rows.append([
            timeline.backend.value,
            first_mb,
            result.per_instance_mb(timeline),
            last_mb,
            ", ".join(f"{t:.0f}s" for t in timeline.ready_times_s),
        ])
    table = format_table(
        "Fig 10: OpenFaaS memory consumption (MB)",
        ["backend", "first instance", "per extra instance", "final",
         "instances ready at"], rows)
    footer = ("\npaper: containers 90 MB then ~220 MB/instance; unikernels "
              "85 MB then ~35 MB/instance, ready ~5 s sooner")
    chart = line_chart(
        {"containers": result.containers.memory,
         "unikernels": result.unikernels.memory},
        title="\noccupied memory (MB) vs time (s)", y_label="MB")
    return table + footer + "\n" + chart
