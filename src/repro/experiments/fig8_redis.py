"""Fig 8: Redis database saving times vs number of updated keys.

After an initial save (the slow first fork/clone), the database is
mass-inserted to each key count and saved again; the plot reports the
second fork/clone duration and the snapshot-save duration, for Redis in
an Alpine Linux VM (process fork) and Redis on Unikraft (VM clone), both
writing to a 9pfs share. The unikernel's constant I/O-cloning cost is
amortized as the database grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import NepheleSession
from repro.apps.redis import (
    RedisApp,
    RedisProcessBaseline,
    bgsave_unikernel,
    redis_unikernel_config,
)
from repro.experiments.report import format_table
from repro.platform import Platform
from repro.sim.units import GIB
from repro.toolstack.config import DomainConfig, P9Config

#: The paper's x axis.
DEFAULT_KEY_COUNTS = (0, 1, 10, 100, 1000, 10_000, 100_000, 1_000_000)


@dataclass
class Fig8Row:
    keys: int
    vm_fork_ms: float
    vm_save_ms: float
    clone_ms: float
    unikraft_save_ms: float
    userspace_ms: float


@dataclass
class Fig8Result:
    rows: list[Fig8Row] = field(default_factory=list)

    def row(self, keys: int) -> Fig8Row:
        """The measurements at one key count."""
        for row in self.rows:
            if row.keys == keys:
                return row
        raise KeyError(keys)


def run(key_counts=DEFAULT_KEY_COUNTS) -> Fig8Result:
    """Sweep the key counts on both Redis deployments.

    Runs through the :class:`NepheleSession` facade (untraced, so the
    platform and its figure series are identical to the old direct
    construction); the session exit replaces the manual
    ``check_invariants`` call.
    """
    result = Fig8Result()
    with NepheleSession(trace=False, total_memory_bytes=16 * GIB,
                        dom0_memory_bytes=4 * GIB) as session:
        platform = session.platform

        # Unikraft Redis (cloning). Memory sized for the largest keys.
        unikraft_config = redis_unikernel_config("redis-uk", memory_mb=256)
        unikraft = session.boot(unikraft_config, app=RedisApp())
        uk_app: RedisApp = unikraft.guest.app
        bgsave_unikernel(platform, unikraft)  # first (slow) save

        # Redis process in an Alpine VM (baseline).
        vm_config = DomainConfig(
            name="redis-vm", memory_mb=512, kernel="alpine-linux",
            p9fs=[P9Config(tag="data", export_root="/srv/redis-vm",
                           mount_point="/mnt")])
        vm = session.boot(vm_config)
        baseline = RedisProcessBaseline(platform, vm)
        baseline.bgsave()  # first (slow) fork

        for keys in key_counts:
            if keys > uk_app.keys:
                uk_app.mass_insert(unikraft.guest.api, keys - uk_app.keys)
            if keys > baseline.keys:
                baseline.mass_insert(keys - baseline.keys)
            uk = bgsave_unikernel(platform, unikraft)
            vm_timings = baseline.bgsave()
            userspace = _clone_userspace_ms(platform)
            result.rows.append(Fig8Row(
                keys=keys,
                vm_fork_ms=vm_timings.fork_ms,
                vm_save_ms=vm_timings.save_ms,
                clone_ms=uk.fork_ms,
                unikraft_save_ms=uk.save_ms,
                userspace_ms=userspace,
            ))
    return result


def _clone_userspace_ms(platform: Platform) -> float:
    """The constant Dom0-side cost of cloning the Redis I/O state:
    toolstack introduction plus 9pfs cloning (paper §7.1)."""
    costs = platform.costs
    per_request = (costs.xs_request_base
                   + costs.xs_request_per_node * platform.xenstore.node_count)
    # introduce + name + store entries + 9pfs front/back xs_clone + QMP.
    requests = 6
    return requests * per_request + 2 * costs.xs_clone_base \
        + costs.p9_qmp_clone_fixed


def format_result(result: Fig8Result) -> str:
    """The Fig 8 save-times table."""
    rows = [
        [f"{row.keys:,}", row.vm_fork_ms, row.vm_save_ms, row.clone_ms,
         row.unikraft_save_ms, row.userspace_ms]
        for row in result.rows
    ]
    table = format_table(
        "Fig 8: Redis save times vs updated keys (ms)",
        ["keys", "VM process fork", "VM process save", "Unikraft clone",
         "Unikraft save", "userspace ops"], rows)
    footer = ("\npaper: clone cost constant-ish and amortized by save time "
              "at large key counts; save times comparable for fork and clone")
    return table + footer
