"""Overload ablation: metastable collapse vs. protected shedding.

The robustness headline for the front door's resilience layer
(:mod:`repro.frontdoor.resilience`). Request cloning has a capacity
knee (:mod:`repro.experiments.frontdoor_p99`): past it, the cancelled
copies' wasted work saturates the fleet and the open-loop backlog
diverges. A naive client stack makes that failure *metastable* — every
timed-out request is retried at full clone factor, the retries add
load, more requests time out, and goodput collapses even though the
offered load never changed. Three arms, each a fresh same-seed
:class:`~repro.frontdoor.session.FleetSession` under identical offered
traffic:

- **baseline** — clone factor below the knee (d=2), no protection: the
  healthy operating point whose P99 anchors the protected arm's bound;
- **unprotected** — clone factor past the knee (d=8) with naive
  retries (unbounded budget, no admission control, no breakers): the
  retry storm. The per-segment completed series falls wave over wave
  while offered load stays flat — goodput collapse;
- **protected** — the same past-knee demand under the full resilience
  policy: admission control sheds deterministically before copies are
  placed, brownout degrades the clone factor toward 1, retries are
  budgeted at 10% of first tries, and circuit breakers eject sick
  replicas. Goodput holds and the P99 of *admitted* requests stays
  within 2x of the below-knee baseline.

A fourth unit runs the seeded overload storm
(:func:`repro.frontdoor.resilience.run_overload_storm`): randomized
``frontdoor.*`` faults (admission drops, replica stalls, breaker
flaps) with conservation audits between waves. Each traffic arm also
audits the fleet *between* its waves — retry budgets and breaker state
alive, work in flight across the audit — and the experiment requires
every audit clean. All four units run twice, serially and through a
process pool, and the two result sets must be byte-identical.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
from dataclasses import dataclass, field
from typing import Any

from repro.apps.traffic import as_shape
from repro.experiments.report import format_table
from repro.fleet.chaos import audit_fleet
from repro.frontdoor.resilience import ResiliencePolicy, run_overload_storm
from repro.frontdoor.session import FleetSession

#: Goodput segments reported per wave (offered load is flat across
#: them by construction, so the series *is* the goodput curve).
SEGMENTS_PER_WAVE = 10

#: The protected arm's P99 (admitted requests) must stay within this
#: factor of the below-knee baseline's P99.
P99_BOUND_FACTOR = 2.0


def _arm_policy(kind: str, params: dict[str, Any]
                ) -> ResiliencePolicy | None:
    """The resilience policy each arm dispatches under."""
    if kind == "baseline":
        return None
    if kind == "unprotected":
        # The naive client stack: every failure retried on an
        # effectively unbounded budget, no admission control, no
        # breakers — the configuration that makes overload metastable.
        return ResiliencePolicy(
            retry_budget_fraction=1.0, retry_burst=1e6,
            max_attempts=3, breaker_window=0)
    return ResiliencePolicy(
        sojourn_bound_ms=params["sojourn_bound_ms"],
        brownout_start=2.0, brownout_full=8.0,
        retry_budget_fraction=0.1, retry_burst=8.0, max_attempts=3,
        breaker_window=16, breaker_failure_threshold=0.7,
        breaker_min_samples=8, breaker_probe_quota=2,
        deadline_ms=params["deadline_ms"])


def _run_arm(task: tuple[str, int, dict[str, Any]]) -> dict[str, Any]:
    """One experiment unit, self-contained so a pool worker can run it."""
    kind, seed, params = task
    if kind == "storm":
        report = run_overload_storm(
            seed=seed, hosts=params["hosts"],
            replicas=params["replicas"],
            requests=params["storm_requests"],
            faults=params["storm_faults"])
        return {
            "arm": kind,
            "offered": report.stats.get("offered", 0),
            "shed": report.stats.get("shed", 0),
            "retries": report.stats.get("retries", 0),
            "breaker_trips": report.stats.get("breaker_trips", 0),
            "faults_fired": sum(sum(c.values())
                                for c in report.faults.values()),
            "violations": list(report.violations),
            "fingerprint": report.fingerprint,
        }

    d = params["baseline_d"] if kind == "baseline" else params["overload_d"]
    # The protected arm runs a hedged-attempt discipline: a short
    # per-attempt timeout (so a budgeted retry fits inside the
    # end-to-end deadline) instead of one deadline-sized attempt.
    timeout_ms = (params["attempt_timeout_ms"] if kind == "protected"
                  else params["timeout_ms"])
    policy = _arm_policy(kind, params)
    session = FleetSession(hosts=params["hosts"], seed=seed,
                           resilience=policy)
    session.create_family("load", ip="10.88.0.1")
    session.clone("load", count=params["replicas"] - 1)
    waves: list[dict[str, Any]] = []
    violations: list[str] = []
    per_wave = params["requests"] // params["waves"]
    for wave in range(params["waves"]):
        dispatch = session.dispatch(
            "load", params["shape"], requests=per_wave,
            arrival_rps=params["arrival_rps"], clone_factor=d,
            timeout_ms=timeout_ms,
            report_segments=SEGMENTS_PER_WAVE,
            label=f"{kind}-w{wave}")
        # Mid-run audit: breakers and the retry budget carry state
        # across waves, so this exercises the conservation laws with
        # the resilience ledgers live, not just at quiesce.
        violations.extend(
            f"{kind} wave {wave}: {v}"
            for v in audit_fleet(session.fleet, session.frontdoor))
        waves.append({
            "wave": wave,
            "offered": dispatch.offered,
            "completed": dispatch.completed,
            "timed_out": dispatch.timed_out,
            "failed": dispatch.failed,
            "shed": dispatch.shed,
            "retries": dispatch.retries,
            "p50_ms": round(dispatch.latency_p50_ms, 6),
            "p99_ms": round(dispatch.latency_p99_ms, 6),
            "waste": round(dispatch.waste_fraction, 6),
            "segment_completed": list(dispatch.segment_completed),
            "fingerprint": dispatch.fingerprint,
        })
    stats = dict(session.frontdoor.stats)
    resilience = session.frontdoor.resilience_report()
    session.close(check=False)
    offered = sum(w["offered"] for w in waves)
    completed = sum(w["completed"] for w in waves)
    return {
        "arm": kind,
        "clone_factor": d,
        "offered": offered,
        "completed": completed,
        "timed_out": sum(w["timed_out"] for w in waves),
        "failed": sum(w["failed"] for w in waves),
        "shed": sum(w["shed"] for w in waves),
        "retries": sum(w["retries"] for w in waves),
        "goodput": round(completed / offered, 6) if offered else 0.0,
        "p99_ms": round(max(w["p99_ms"] for w in waves), 6),
        "breaker_trips": stats["breaker_trips"],
        "brownout_admissions": (resilience["brownout_admissions"]
                                if resilience is not None else 0),
        "sheds_by_reason": (dict(resilience["sheds"])
                            if resilience is not None else {}),
        "waves": waves,
        "violations": violations,
    }


@dataclass
class FrontdoorOverloadResult:
    """The ablation table plus the storm unit and determinism check."""

    seed: int
    hosts: int
    replicas: int
    requests: int
    arrival_rps: float
    arms: dict[str, dict[str, Any]] = field(default_factory=dict)
    storm: dict[str, Any] = field(default_factory=dict)
    #: True when the pool-executed run matched the serial run exactly.
    parallel_identical: bool = True
    violations: list[str] = field(default_factory=list)
    fingerprint: str = ""

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation, the fingerprint payload."""
        return {
            "seed": self.seed,
            "hosts": self.hosts,
            "replicas": self.replicas,
            "requests": self.requests,
            "arrival_rps": round(self.arrival_rps, 6),
            "arms": {name: dict(arm)
                     for name, arm in sorted(self.arms.items())},
            "storm": dict(self.storm),
            "parallel_identical": self.parallel_identical,
            "violations": list(self.violations),
            "fingerprint": self.fingerprint,
        }


def run(seed: int = 0xC10E, *, shape: str = "faas", hosts: int = 4,
        replicas: int = 12, requests: int = 24_000, waves: int = 2,
        utilization: float = 0.3, baseline_d: int = 2,
        overload_d: int = 8, timeout_ms: float = 60.0,
        attempt_timeout_ms: float = 40.0,
        sojourn_bound_ms: float = 25.0, deadline_ms: float = 50.0,
        storm_requests: int = 3_000, storm_faults: int = 30,
        parallel: bool = True) -> FrontdoorOverloadResult:
    """The overload ablation at one operating point.

    ``utilization`` is chosen so the baseline clone factor sits clear
    of the capacity knee while ``overload_d`` lands far past it
    (rho_eff > 1): the unprotected arm must collapse and the protected
    arm must shed its way back to a bounded tail.
    """
    request_shape = as_shape(shape)
    arrival_rps = utilization * replicas * request_shape.capacity_rps
    params = {
        "shape": request_shape.name, "hosts": hosts,
        "replicas": replicas, "requests": requests, "waves": waves,
        "arrival_rps": arrival_rps, "baseline_d": baseline_d,
        "overload_d": overload_d, "timeout_ms": timeout_ms,
        "attempt_timeout_ms": attempt_timeout_ms,
        "sojourn_bound_ms": sojourn_bound_ms,
        "deadline_ms": deadline_ms,
        "storm_requests": storm_requests, "storm_faults": storm_faults,
    }
    tasks = [(kind, seed, params)
             for kind in ("baseline", "unprotected", "protected", "storm")]
    serial = [_run_arm(task) for task in tasks]
    result = FrontdoorOverloadResult(
        seed=seed, hosts=hosts, replicas=replicas, requests=requests,
        arrival_rps=arrival_rps)
    if parallel:
        with multiprocessing.get_context("fork").Pool(2) as pool:
            pooled = pool.map(_run_arm, tasks)
        result.parallel_identical = pooled == serial
        if not result.parallel_identical:
            result.violations.append(
                "parallel run diverged from serial run")

    for unit in serial:
        name = unit.pop("arm")
        if name == "storm":
            result.storm = unit
        else:
            result.arms[name] = unit
        result.violations.extend(unit["violations"])

    baseline = result.arms["baseline"]
    unprotected = result.arms["unprotected"]
    protected = result.arms["protected"]

    # (a) Metastable collapse: offered load flat, goodput fallen and
    # *held* down — every unprotected goodput segment sits below the
    # weakest baseline segment (the retry storm reaches a degraded
    # steady state, it does not recover), and the retry volume dwarfs
    # the protected arm's budgeted trickle.
    if unprotected["goodput"] >= 0.8 * baseline["goodput"]:
        result.violations.append(
            f"unprotected goodput {unprotected['goodput']} did not "
            f"collapse below baseline {baseline['goodput']}")
    base_floor = min(min(w["segment_completed"])
                     for w in baseline["waves"])
    bad_segments = [s for w in unprotected["waves"]
                    for s in w["segment_completed"] if s >= base_floor]
    if bad_segments:
        result.violations.append(
            f"unprotected goodput segments {bad_segments} reached the "
            f"baseline floor {base_floor} — no sustained collapse")
    if unprotected["retries"] < 5 * (protected["retries"] + 1):
        result.violations.append(
            f"no retry storm: unprotected retries "
            f"{unprotected['retries']} vs protected "
            f"{protected['retries']}")
    offered = {w["offered"] for w in unprotected["waves"]}
    if len(offered) != 1:
        result.violations.append(
            f"unprotected offered load was not flat across waves: "
            f"{sorted(offered)}")

    # (b) Protected: deterministic shedding, bounded admitted tail.
    if protected["shed"] < 1:
        result.violations.append("protected arm shed nothing")
    if protected["p99_ms"] > baseline["p99_ms"] * P99_BOUND_FACTOR:
        result.violations.append(
            f"protected P99 {protected['p99_ms']} ms exceeds "
            f"{P99_BOUND_FACTOR}x the below-knee baseline "
            f"{baseline['p99_ms']} ms")
    if protected["goodput"] <= unprotected["goodput"]:
        result.violations.append(
            f"protected goodput {protected['goodput']} did not beat "
            f"unprotected {unprotected['goodput']}")
    if protected["retries"] > 0.1 * protected["offered"] + 8:
        result.violations.append(
            f"protected retries {protected['retries']} exceed the 10% "
            f"budget of {protected['offered']} first tries")

    payload = result.to_dict()
    payload.pop("fingerprint")
    result.fingerprint = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()
    return result


def run_quick(seed: int = 0xC10E) -> FrontdoorOverloadResult:
    """The CI-sized run: small fleet, 6k requests across the arms."""
    return run(seed, hosts=2, replicas=6, requests=6_000, overload_d=6,
               storm_requests=1_500, storm_faults=20)


def format_result(result: FrontdoorOverloadResult) -> str:
    """The ablation table plus the storm and determinism lines."""
    rows = []
    for name in ("baseline", "unprotected", "protected"):
        arm = result.arms[name]
        rows.append([
            name,
            arm["clone_factor"],
            arm["offered"],
            f"{arm['goodput']:.3f}",
            arm["shed"],
            arm["retries"],
            arm["breaker_trips"],
            f"{arm['p99_ms']:.2f}",
        ])
    table = format_table(
        f"Front door overload: collapse vs protection "
        f"({result.hosts} hosts, {result.replicas} replicas, "
        f"{result.requests} requests/arm @ {result.arrival_rps:.0f} rps)",
        ["arm", "d", "offered", "goodput", "shed", "retries",
         "breaker trips", "p99 ms"],
        rows)
    unprotected = result.arms["unprotected"]
    segments = unprotected["waves"][0]["segment_completed"]
    storm = result.storm
    lines = [table]
    lines.append(
        "\ncollapse (unprotected, wave 0 goodput per segment): "
        + " ".join(str(s) for s in segments))
    lines.append(
        f"\nstorm ({storm.get('faults_fired', 0)} faults fired): "
        f"{storm.get('shed', 0)} shed, {storm.get('retries', 0)} "
        f"retries, {storm.get('breaker_trips', 0)} breaker trips, "
        f"audits clean: {not storm.get('violations')}")
    lines.append("\nserial == parallel: "
                 + ("yes" if result.parallel_identical else "NO"))
    if result.violations:
        lines.append(f"\nVIOLATIONS ({len(result.violations)}):")
        lines.extend(f"\n  - {violation}"
                     for violation in result.violations)
    return "".join(lines)
