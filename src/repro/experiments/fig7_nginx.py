"""Fig 7: NGINX HTTP request throughput, processes vs clones.

wrk keeps 400 open connections per worker for 5 s, repeated 30 times;
throughput grows linearly with workers 1..4, with Unikraft clones
slightly above (and less variable than) Linux processes.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.api import NepheleSession
from repro.apps.nginx import NginxCloneCluster, NginxProcessCluster
from repro.experiments.report import format_table
from repro.sim.units import GIB


@dataclass
class Fig7Point:
    workers: int
    mean_rps: float
    stdev_rps: float
    runs: list[float] = field(default_factory=list)


@dataclass
class Fig7Result:
    processes: list[Fig7Point] = field(default_factory=list)
    clones: list[Fig7Point] = field(default_factory=list)

    def point(self, series: str, workers: int) -> Fig7Point:
        """One (series, worker-count) data point."""
        for point in getattr(self, series):
            if point.workers == workers:
                return point
        raise KeyError((series, workers))


def _summarize(workers: int, runs: list[float]) -> Fig7Point:
    return Fig7Point(
        workers=workers,
        mean_rps=statistics.mean(runs),
        stdev_rps=statistics.stdev(runs) if len(runs) > 1 else 0.0,
        runs=runs,
    )


def run(worker_counts=(1, 2, 3, 4), repetitions: int = 30,
        duration_s: float = 5.0,
        connections_per_worker: int = 400) -> Fig7Result:
    """Run the wrk sweeps for both deployment styles.

    Drives the host through the :class:`NepheleSession` facade (the
    untraced session wraps the identical platform, so the figure series
    are unchanged); the context manager runs the end-of-run invariant
    checks the old direct-``Platform`` version called by hand.
    """
    result = Fig7Result()
    with NepheleSession(trace=False, total_memory_bytes=32 * GIB,
                        dom0_memory_bytes=4 * GIB) as session:
        rng = session.rng.fork("fig7")
        for workers in worker_counts:
            cluster = NginxCloneCluster(session.platform, workers,
                                        ip=f"10.0.2.{workers}")
            clone_runs = [
                cluster.run_wrk(rng, duration_s, connections_per_worker)
                .throughput_rps
                for _ in range(repetitions)
            ]
            cluster.destroy()
            result.clones.append(_summarize(workers, clone_runs))

            processes = NginxProcessCluster(session.clock, session.costs,
                                            workers)
            process_runs = [
                processes.run_wrk(rng, duration_s, connections_per_worker)
                .throughput_rps
                for _ in range(repetitions)
            ]
            result.processes.append(_summarize(workers, process_runs))
    return result


def format_result(result: Fig7Result) -> str:
    """The Fig 7 throughput table."""
    rows = []
    for proc, clone in zip(result.processes, result.clones):
        rows.append([
            proc.workers,
            f"{proc.mean_rps:.0f} +- {proc.stdev_rps:.0f}",
            f"{clone.mean_rps:.0f} +- {clone.stdev_rps:.0f}",
        ])
    table = format_table(
        "Fig 7: NGINX requests/sec (mean +- stdev over 30 wrk runs)",
        ["workers", "nginx processes", "nginx clones"], rows)
    footer = ("\npaper: linear growth to ~110-120k req/s at 4 workers; "
              "clones higher and less variable")
    return table + footer
