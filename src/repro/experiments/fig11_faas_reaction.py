"""Fig 11: containers vs unikernels reacting to rising function demand.

Apache Benchmark (8 workers, closed loop) drives the deployed function;
the served request rate is sampled each second for 150 s. The dashed
readiness lines in the paper sit at 33/42/56 s for containers and
3/14/25 s for unikernel clones; unikernels track the request load
closely despite the lower per-instance capacity of the lwip stack
(300 vs 600 req/s).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.apps.faas import (
    FaasBackendType,
    FaasConfig,
    FaasTimeline,
    OpenFaasGateway,
)
from repro.experiments.plot import line_chart
from repro.experiments.report import format_table
from repro.platform import Platform
from repro.sim.units import GIB


@dataclass
class Fig11Result:
    containers: FaasTimeline
    unikernels: FaasTimeline

    def throughput_at(self, timeline: FaasTimeline, t_s: float) -> float:
        """Served rps at the sample closest to ``t_s``."""
        best = min(timeline.throughput, key=lambda p: abs(p[0] - t_s))
        return best[1]

    def time_to_reach(self, timeline: FaasTimeline, rps: float) -> float:
        """First time the served rate reaches ``rps``."""
        for t, value in timeline.throughput:
            if value >= rps:
                return t
        return float("inf")


def _gateway(backend: FaasBackendType) -> OpenFaasGateway:
    platform = Platform.create(total_memory_bytes=32 * GIB,
                               dom0_memory_bytes=8 * GIB, cpus=10)
    return OpenFaasGateway(platform, backend, config=FaasConfig())


def run(duration_s: float = 150.0) -> Fig11Result:
    """Run the reaction experiment for both backends."""
    containers = _gateway(FaasBackendType.CONTAINER).run(duration_s=duration_s)
    unikernels = _gateway(FaasBackendType.UNIKERNEL).run(duration_s=duration_s)
    return Fig11Result(containers=containers, unikernels=unikernels)


def format_result(result: Fig11Result) -> str:
    """The Fig 11 reaction table + chart."""
    sample_points = (0, 10, 20, 30, 45, 60, 90, 120, 149)
    rows = []
    for t in sample_points:
        rows.append([
            f"{t}s",
            result.throughput_at(result.containers, t),
            result.throughput_at(result.unikernels, t),
        ])
    table = format_table(
        "Fig 11: served requests/sec under rising demand",
        ["time", "containers", "unikernels"], rows)
    ready_c = ", ".join(f"{t:.0f}s" for t in result.containers.ready_times_s)
    ready_u = ", ".join(f"{t:.0f}s" for t in result.unikernels.ready_times_s)
    footer = (f"\ninstances ready: containers [{ready_c}] "
              f"(paper: 33, 42, 56 s); unikernels [{ready_u}] "
              f"(paper: 3, 14, 25 s)")
    chart = line_chart(
        {"containers": result.containers.throughput,
         "unikernels": result.unikernels.throughput},
        title="\nserved requests/sec vs time (s)", y_label="rps")
    return table + footer + "\n" + chart
