"""Fig 4: instantiation times for the Mini-OS UDP server.

Four series over N instances (paper: N = 1000):

- **boot**: ``xl create`` per instance (LightVM methodology: measure
  until the UDP ready notification reaches the host).
- **restore**: per iteration, create + save + restore; the plotted
  value is the restore duration.
- **clone + XS deep copy**: the parent forks itself with xencloned in
  the pre-Nephele deep-copy mode.
- **clone**: same with the ``xs_clone`` request.

Paper results: boot 160->300 ms, restore 180->330 ms, deep copy
40->130 ms, clone 20->30 ms; cloning ~8x faster than booting; with
xs_clone only 2 Xenstore log-rotation spikes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import NepheleSession
from repro.apps.udp_server import UdpServerApp
from repro.experiments.plot import line_chart
from repro.experiments.report import format_table, series_summary
from repro.toolstack.config import DomainConfig, VifConfig

#: Values above this are log-rotation spikes (for summary statistics).
SPIKE_THRESHOLD_MS = 400.0


def _udp_config(name: str, ip: str, max_clones: int = 0) -> DomainConfig:
    return DomainConfig(name=name, memory_mb=4, kernel="minios-udp",
                        vifs=[VifConfig(ip=ip)], max_clones=max_clones)


def _guest_ip(i: int) -> str:
    return f"10.{1 + i // 62500}.{(i // 250) % 250}.{1 + i % 250}"


@dataclass
class Fig4Result:
    boot_ms: list[float] = field(default_factory=list)
    restore_ms: list[float] = field(default_factory=list)
    deep_copy_clone_ms: list[float] = field(default_factory=list)
    clone_ms: list[float] = field(default_factory=list)
    rotations: dict[str, int] = field(default_factory=dict)

    def summary(self) -> dict[str, dict]:
        """Per-series first/last/mean/max (spikes excluded from mean)."""
        return {
            name: series_summary(series, SPIKE_THRESHOLD_MS)
            for name, series in (
                ("boot", self.boot_ms),
                ("restore", self.restore_ms),
                ("clone + XS deep copy", self.deep_copy_clone_ms),
                ("clone", self.clone_ms),
            ) if series
        }

    @property
    def clone_speedup(self) -> float:
        """Mean boot time over mean clone time (the paper's 8x)."""
        boot = series_summary(self.boot_ms, SPIKE_THRESHOLD_MS)["mean"]
        clone = series_summary(self.clone_ms, SPIKE_THRESHOLD_MS)["mean"]
        return boot / clone if clone else float("inf")


def run_boot_series(instances: int) -> tuple[list[float], int]:
    """Boot ``instances`` fresh UDP servers; per-instance durations."""
    session = NepheleSession(trace=False)
    ready: list[object] = []
    session.dom0.listen(9999, lambda pkt: ready.append(pkt.payload))
    times: list[float] = []
    for i in range(instances):
        t0 = session.now
        session.boot(_udp_config(f"udp{i}", _guest_ip(i)),
                     app=UdpServerApp())
        times.append(session.now - t0)
    assert len(ready) == instances, "every guest must signal readiness"
    session.close(check=False)
    return times, session.xenstore.access_log.rotations


def run_restore_series(iterations: int) -> tuple[list[float], int]:
    """Create + save + restore per iteration; restore durations."""
    session = NepheleSession(trace=False)
    times: list[float] = []
    for i in range(iterations):
        domain = session.boot(_udp_config(f"udp{i}", _guest_ip(i)),
                              app=UdpServerApp())
        image = session.save(domain)
        t0 = session.now
        restored = session.restore(image)
        times.append(session.now - t0)
        # Leave the restored instance running, like the boot series.
        del restored
    session.close(check=False)
    return times, session.xenstore.access_log.rotations


def run_clone_series(clones: int, use_xs_clone: bool) -> tuple[list[float], int]:
    """One parent forks itself ``clones`` times; fork() durations."""
    with NepheleSession(trace=False, use_xs_clone=use_xs_clone) as session:
        parent = session.boot(
            _udp_config("udp0", "10.0.1.1", max_clones=clones + 1),
            app=UdpServerApp())
        times: list[float] = []
        for _ in range(clones):
            t0 = session.now
            session.clone(parent, from_guest=True)
            times.append(session.now - t0)
        rotations = session.xenstore.access_log.rotations
    # Leaving the session verified the frame-accounting invariants.
    return times, rotations


def run(instances: int = 1000, include_restore: bool = True) -> Fig4Result:
    """Run all four Fig 4 series."""
    result = Fig4Result()
    result.boot_ms, result.rotations["boot"] = run_boot_series(instances)
    if include_restore:
        result.restore_ms, result.rotations["restore"] = \
            run_restore_series(instances)
    result.deep_copy_clone_ms, result.rotations["deep_copy"] = \
        run_clone_series(instances, use_xs_clone=False)
    result.clone_ms, result.rotations["clone"] = \
        run_clone_series(instances, use_xs_clone=True)
    return result


def format_result(result: Fig4Result) -> str:
    """The paper's table + an ASCII rendition of the plot."""
    rows = []
    paper = {
        "boot": "160 -> 300",
        "restore": "180 -> 330",
        "clone + XS deep copy": "40 -> 130",
        "clone": "20 -> 30",
    }
    for name, stats in result.summary().items():
        rows.append([name, stats["first"], stats["last"], stats["mean"],
                     stats["max"], paper[name]])
    table = format_table(
        f"Fig 4: instantiation times, {len(result.boot_ms)} instances (ms)",
        ["series", "first", "last", "mean", "max(spikes)", "paper"],
        rows)
    footer = (f"\nclone speedup over boot: {result.clone_speedup:.1f}x "
              f"(paper: ~8x)\n"
              f"Xenstore log rotations: {result.rotations}")
    series = {
        name: [(float(i), v) for i, v in enumerate(values)
               if v < SPIKE_THRESHOLD_MS]
        for name, values in (
            ("boot", result.boot_ms),
            ("restore", result.restore_ms),
            ("deep copy", result.deep_copy_clone_ms),
            ("clone", result.clone_ms),
        ) if values
    }
    chart = line_chart(series, title="\ninstantiation time (ms) vs instance #"
                       " (spikes clipped)", y_label="ms")
    return table + footer + "\n" + chart
