"""The paper's motivating claim (§1), quantified.

"A top-three cloud provider ... keeps a fairly large idle pool of
running VMs for Function as a Service workloads to handle new requests,
simply because booting a new VM on demand would take too long. This
solution however wastes significant resources."

Three strategies for absorbing a burst of N new function requests:

- **idle pool**: N pre-booted warm VMs (zero start latency, full memory
  cost paid in advance);
- **boot on demand**: no pool (no standing cost, each request waits for
  a full boot);
- **clone on demand** (Nephele): one warm parent, each request waits
  for a fork() (small standing cost, small latency, small per-instance
  memory).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.udp_server import UdpServerApp
from repro.experiments.fig4_instantiation import _guest_ip, _udp_config
from repro.experiments.report import format_table
from repro.platform import Platform
from repro.sim.units import MIB


@dataclass
class StrategyResult:
    name: str
    standing_memory_bytes: int
    burst_memory_bytes: int
    mean_start_latency_ms: float
    worst_start_latency_ms: float


@dataclass
class IdlePoolResult:
    burst: int
    strategies: list[StrategyResult] = field(default_factory=list)

    def strategy(self, name: str) -> StrategyResult:
        """The result row for one strategy."""
        for entry in self.strategies:
            if entry.name == name:
                return entry
        raise KeyError(name)


def _pool_used(platform: Platform) -> int:
    return (platform.hypervisor.frames.total_frames * 4096
            - platform.free_hypervisor_bytes())


def run(burst: int = 64) -> IdlePoolResult:
    """Measure all three burst-absorption strategies."""
    result = IdlePoolResult(burst=burst)

    # --- idle pool: pre-boot `burst` warm VMs ---
    platform = Platform.create()
    for i in range(burst):
        platform.xl.create(_udp_config(f"warm{i}", _guest_ip(i)),
                           app=UdpServerApp())
    standing = _pool_used(platform)
    result.strategies.append(StrategyResult(
        name="idle pool",
        standing_memory_bytes=standing,
        burst_memory_bytes=standing,  # already paid
        mean_start_latency_ms=0.0,
        worst_start_latency_ms=0.0,
    ))

    # --- boot on demand ---
    platform = Platform.create()
    latencies = []
    for i in range(burst):
        t0 = platform.now
        platform.xl.create(_udp_config(f"cold{i}", _guest_ip(i)),
                           app=UdpServerApp())
        latencies.append(platform.now - t0)
    result.strategies.append(StrategyResult(
        name="boot on demand",
        standing_memory_bytes=0,
        burst_memory_bytes=_pool_used(platform),
        mean_start_latency_ms=sum(latencies) / len(latencies),
        worst_start_latency_ms=max(latencies),
    ))

    # --- clone on demand (Nephele) ---
    platform = Platform.create()
    parent = platform.xl.create(
        _udp_config("warm-parent", "10.0.1.1", max_clones=burst + 1),
        app=UdpServerApp())
    standing = _pool_used(platform)
    latencies = []
    for _ in range(burst):
        t0 = platform.now
        platform.cloneop.clone(parent.domid)
        latencies.append(platform.now - t0)
    result.strategies.append(StrategyResult(
        name="clone on demand",
        standing_memory_bytes=standing,
        burst_memory_bytes=_pool_used(platform),
        mean_start_latency_ms=sum(latencies) / len(latencies),
        worst_start_latency_ms=max(latencies),
    ))
    return result


def format_result(result: IdlePoolResult) -> str:
    """The strategy comparison table."""
    rows = [
        [s.name, s.standing_memory_bytes / MIB, s.burst_memory_bytes / MIB,
         s.mean_start_latency_ms, s.worst_start_latency_ms]
        for s in result.strategies
    ]
    table = format_table(
        f"Motivation (§1): absorbing a burst of {result.burst} instances",
        ["strategy", "standing MiB", "burst MiB", "mean start ms",
         "worst start ms"], rows)
    idle = result.strategy("idle pool")
    clone = result.strategy("clone on demand")
    footer = (f"\nclone-on-demand keeps {idle.standing_memory_bytes / max(1, clone.standing_memory_bytes):.0f}x "
              "less memory standing than the idle pool while starting "
              f"instances in ~{clone.mean_start_latency_ms:.0f} ms")
    return table + footer
