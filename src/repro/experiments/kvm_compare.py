"""Extension experiment (not a paper figure): Xen vs the KVM port.

The paper's future work is the KVM port (§9); this experiment checks
that the headline properties survive it: cloning beats booting by a
large factor on both platforms, clone cost scales with guest size the
same way, and the density advantage holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.udp_server import UdpServerApp
from repro.experiments.report import format_table
from repro.kvm.platform import KvmPlatform
from repro.platform import Platform
from repro.sim.units import GIB, MIB
from repro.toolstack.config import DomainConfig, VifConfig


@dataclass
class KvmCompareRow:
    memory_mb: int
    xen_boot_ms: float
    xen_clone_ms: float
    kvm_boot_ms: float
    kvm_clone_ms: float


@dataclass
class KvmCompareResult:
    rows: list[KvmCompareRow] = field(default_factory=list)
    xen_clone_bytes: float = 0.0
    kvm_clone_bytes: float = 0.0

    def speedup(self, platform: str, memory_mb: int) -> float:
        """boot/clone ratio for one platform at one guest size."""
        for row in self.rows:
            if row.memory_mb == memory_mb:
                if platform == "xen":
                    return row.xen_boot_ms / row.xen_clone_ms
                return row.kvm_boot_ms / row.kvm_clone_ms
        raise KeyError(memory_mb)


def _xen_times(platform: Platform, memory_mb: int,
               index: int) -> tuple[float, float]:
    config = DomainConfig(
        name=f"xc-{memory_mb}-{index}", memory_mb=memory_mb,
        kernel="minios-udp", vifs=[VifConfig(ip=f"10.0.8.{index + 1}")],
        max_clones=8)
    t0 = platform.now
    parent = platform.xl.create(config, app=UdpServerApp())
    boot_ms = platform.now - t0
    t0 = platform.now
    platform.cloneop.clone(parent.domid)
    clone_ms = platform.now - t0
    return boot_ms, clone_ms


def _kvm_times(kvm: KvmPlatform, memory_mb: int,
               index: int) -> tuple[float, float]:
    t0 = kvm.now
    parent = kvm.create_vm(f"kc-{memory_mb}-{index}", memory_mb * MIB,
                           ip=f"10.0.9.{index + 1}", max_clones=8)
    boot_ms = kvm.now - t0
    t0 = kvm.now
    kvm.clone(parent.pid)
    clone_ms = kvm.now - t0
    return boot_ms, clone_ms


def run(sizes_mb=(4, 64, 512)) -> KvmCompareResult:
    """Boot + clone the same guests on Xen and on the KVM port."""
    xen = Platform.create(total_memory_bytes=24 * GIB,
                          dom0_memory_bytes=4 * GIB)
    kvm = KvmPlatform(memory_bytes=20 * GIB)
    result = KvmCompareResult()
    for index, memory_mb in enumerate(sizes_mb):
        xen_boot, xen_clone = _xen_times(xen, memory_mb, index)
        kvm_boot, kvm_clone = _kvm_times(kvm, memory_mb, index)
        result.rows.append(KvmCompareRow(memory_mb, xen_boot, xen_clone,
                                         kvm_boot, kvm_clone))
    # Per-clone memory for a small guest on each platform.
    xen_free = xen.free_hypervisor_bytes()
    parent = xen.hypervisor.get_domain(1)
    xen.cloneop.clone(parent.domid, count=4)
    result.xen_clone_bytes = (xen_free - xen.free_hypervisor_bytes()) / 4

    kvm_free = kvm.free_bytes()
    first = min(kvm.host.vms)
    kvm.clone(first, count=4)
    result.kvm_clone_bytes = (kvm_free - kvm.free_bytes()) / 4
    return result


def format_result(result: KvmCompareResult) -> str:
    """The comparison table."""
    rows = [
        [f"{row.memory_mb} MB", row.xen_boot_ms, row.xen_clone_ms,
         row.kvm_boot_ms, row.kvm_clone_ms]
        for row in result.rows
    ]
    table = format_table(
        "Extension: Xen vs KVM port, boot and clone times (ms)",
        ["guest", "Xen boot", "Xen clone", "KVM boot", "KVM clone"], rows)
    footer = (f"\nper-clone private memory: Xen "
              f"{result.xen_clone_bytes / MIB:.2f} MiB, KVM "
              f"{result.kvm_clone_bytes / MIB:.2f} MiB")
    return table + footer
