"""Fig 9: fuzzing throughput (KFX + AFL) over a 300 s session.

Seven series, as plotted in the paper: Unikraft with and without
cloning (baseline getppid + actual syscall fuzzing), the native Linux
process under plain AFL (baseline + actual), and the Linux kernel
module baseline under KFX.

Paper plateaus: no-clone 2 exec/s, clone 470 exec/s, Linux process
590 exec/s (clone is 18.6% lower), kernel module 320 exec/s (31.9%
lower than Unikraft+cloning); memory reset 125 us / 3 dirty pages for
Unikraft vs 250 us / 8 pages for the Linux VM.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.fuzzing import FuzzMode, FuzzReport, FuzzSession
from repro.experiments.plot import line_chart
from repro.experiments.report import format_table
from repro.platform import Platform

#: The series of the paper's legend: (label, mode, baseline).
SERIES = (
    ("Unikraft baseline (KFX+AFL)", FuzzMode.UNIKRAFT_NOCLONE, True),
    ("Unikraft (KFX+AFL)", FuzzMode.UNIKRAFT_NOCLONE, False),
    ("Unikraft+cloning baseline (KFX+AFL)", FuzzMode.UNIKRAFT_CLONE, True),
    ("Unikraft+cloning (KFX+AFL)", FuzzMode.UNIKRAFT_CLONE, False),
    ("Linux process baseline (AFL)", FuzzMode.LINUX_PROCESS, True),
    ("Linux process (AFL)", FuzzMode.LINUX_PROCESS, False),
    ("Linux kernel module baseline (KFX+AFL)", FuzzMode.LINUX_MODULE, True),
)


@dataclass
class Fig9Result:
    reports: dict[str, FuzzReport] = field(default_factory=dict)

    def mean(self, label: str) -> float:
        """Mean throughput of one series."""
        return self.reports[label].mean_throughput

    @property
    def clone_vs_process_percent(self) -> float:
        """How much lower cloning-based fuzzing is than the native
        process (paper: 18.6%)."""
        clone = self.mean("Unikraft+cloning baseline (KFX+AFL)")
        process = self.mean("Linux process baseline (AFL)")
        return 100.0 * (process - clone) / process

    @property
    def module_vs_clone_percent(self) -> float:
        """How much lower the kernel module is than Unikraft+cloning
        (paper: 31.9%)."""
        clone = self.mean("Unikraft+cloning baseline (KFX+AFL)")
        module = self.mean("Linux kernel module baseline (KFX+AFL)")
        return 100.0 * (clone - module) / clone


def run(duration_s: float = 300.0) -> Fig9Result:
    """Run all seven fuzzing series."""
    result = Fig9Result()
    for label, mode, baseline in SERIES:
        platform = Platform.create()
        session = FuzzSession(platform, mode, baseline=baseline)
        result.reports[label] = session.run(duration_s=duration_s)
    return result


def format_result(result: Fig9Result) -> str:
    """The Fig 9 table, gaps and chart."""
    paper = {
        "Unikraft baseline (KFX+AFL)": "~2",
        "Unikraft (KFX+AFL)": "~2",
        "Unikraft+cloning baseline (KFX+AFL)": "~470",
        "Unikraft+cloning (KFX+AFL)": "~470 (noisy)",
        "Linux process baseline (AFL)": "~590",
        "Linux process (AFL)": "~590 (noisy)",
        "Linux kernel module baseline (KFX+AFL)": "~320",
    }
    rows = []
    for label, report in result.reports.items():
        extras = ""
        if report.avg_reset_us is not None:
            extras = (f"reset {report.avg_reset_us:.0f} us / "
                      f"{report.avg_dirty_pages:.1f} dirty pages")
        rows.append([label, report.mean_throughput, paper[label], extras])
    table = format_table(
        "Fig 9: fuzzing throughput (mean executions/sec)",
        ["series", "exec/s", "paper", "reset stats"], rows)
    footer = (f"\nclone vs process gap: "
              f"{result.clone_vs_process_percent:.1f}% (paper: 18.6%); "
              f"module vs clone gap: "
              f"{result.module_vs_clone_percent:.1f}% (paper: 31.9%)")
    series = {
        label.replace(" (KFX+AFL)", "").replace(" (AFL)", ""):
            [(s.t_s, s.execs_per_s) for s in report.samples]
        for label, report in result.reports.items()
    }
    chart = line_chart(series, title="\nexecutions/sec vs time (s)",
                       y_label="exec/s")
    return table + footer + "\n" + chart
