"""Fig 5: memory consumption, booting vs cloning.

Boot (or clone) 4 MiB UDP-server guests until the hypervisor's guest
pool is exhausted, sampling free memory in the hypervisor and in Dom0.
Paper (16 GB host split 4 GB Dom0 / 12 GB guests): 2800 booted
instances vs 8900 clones (~3x), each clone consuming ~1.6 MB (1 MB of
which is the RX ring), 21 GB of memory saved in total.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.udp_server import UdpServerApp
from repro.experiments.fig4_instantiation import _guest_ip, _udp_config
from repro.experiments.report import format_table
from repro.platform import Platform
from repro.sim.units import GIB, MIB
from repro.xen.errors import XenNoMemoryError


@dataclass
class DensityResult:
    mode: str
    instances: int
    #: (instance count, hypervisor free bytes, Dom0 free bytes) samples.
    samples: list[tuple[int, int, int]] = field(default_factory=list)
    per_instance_bytes: float = 0.0


@dataclass
class Fig5Result:
    boot: DensityResult
    clone: DensityResult

    @property
    def density_ratio(self) -> float:
        return self.clone.instances / self.boot.instances

    @property
    def memory_saved_bytes(self) -> float:
        """What the clones would have cost if booted, minus actual."""
        booted_equivalent = self.clone.instances * self.boot.per_instance_bytes
        actual = self.clone.instances * self.clone.per_instance_bytes
        return booted_equivalent - actual


def _run_to_exhaustion(platform: Platform, spawn, sample_every: int,
                       mode: str, limit: int) -> DensityResult:
    result = DensityResult(mode=mode, instances=0)
    pool = platform.free_hypervisor_bytes()
    while result.instances < limit:
        try:
            spawn(result.instances)
        except XenNoMemoryError:
            break
        result.instances += 1
        if result.instances % sample_every == 0 or result.instances == 1:
            result.samples.append((result.instances,
                                   platform.free_hypervisor_bytes(),
                                   platform.free_dom0_bytes()))
    used = pool - platform.free_hypervisor_bytes()
    if result.instances:
        result.per_instance_bytes = used / result.instances
    return result


def run_boot_density(sample_every: int = 100, limit: int = 1_000_000,
                     total_memory_bytes: int = 16 * GIB) -> DensityResult:
    """Boot fresh guests until the pool is exhausted."""
    platform = Platform.create(total_memory_bytes=total_memory_bytes)

    def spawn(i: int) -> None:
        platform.xl.create(_udp_config(f"u{i}", _guest_ip(i)),
                           app=UdpServerApp())

    return _run_to_exhaustion(platform, spawn, sample_every, "boot", limit)


def run_clone_density(sample_every: int = 100, limit: int = 1_000_000,
                      total_memory_bytes: int = 16 * GIB) -> DensityResult:
    """Clone one parent until the pool is exhausted."""
    platform = Platform.create(total_memory_bytes=total_memory_bytes)
    parent = platform.xl.create(
        _udp_config("u0", "10.0.1.1", max_clones=10_000_000),
        app=UdpServerApp())

    def spawn(i: int) -> None:
        platform.cloneop.clone(parent.domid)

    result = _run_to_exhaustion(platform, spawn, sample_every, "clone", limit)
    result.instances += 1  # the parent serves too
    return result


def run(sample_every: int = 100, limit: int = 1_000_000,
        total_memory_bytes: int = 16 * GIB) -> Fig5Result:
    """Run both Fig 5 density modes."""
    return Fig5Result(
        boot=run_boot_density(sample_every, limit, total_memory_bytes),
        clone=run_clone_density(sample_every, limit, total_memory_bytes))


def format_result(result: Fig5Result) -> str:
    """The paper's density summary."""
    rows = [
        ["booting", result.boot.instances,
         result.boot.per_instance_bytes / MIB, "2800 instances @ ~4.4 MB"],
        ["cloning", result.clone.instances,
         result.clone.per_instance_bytes / MIB, "8900 instances @ ~1.6 MB"],
    ]
    table = format_table(
        "Fig 5: memory density on a 16 GB host (12 GB guest pool)",
        ["mode", "instances", "MiB/instance", "paper"], rows)
    footer = (f"\ndensity ratio: {result.density_ratio:.1f}x (paper: ~3x)\n"
              f"memory saved vs booting the same fleet: "
              f"{result.memory_saved_bytes / GIB:.1f} GB (paper: 21 GB)")
    return table + footer
