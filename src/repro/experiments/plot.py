"""ASCII plotting for experiment series.

The paper's figures are line plots; these helpers render the same
series as terminal charts so `examples/reproduce_figures.py` output can
be eyeballed against the paper directly.
"""

from __future__ import annotations

from typing import Sequence

#: Eight vertical resolution levels per character cell.
_SPARK = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """One-line sparkline, resampled to ``width`` columns."""
    if not values:
        return ""
    resampled = _resample(list(values), width)
    low = min(resampled)
    high = max(resampled)
    span = high - low
    if span <= 0:
        return _SPARK[0] * len(resampled)
    chars = []
    for value in resampled:
        level = int((value - low) / span * (len(_SPARK) - 1))
        chars.append(_SPARK[level])
    return "".join(chars)


def _resample(values: list[float], width: int) -> list[float]:
    if len(values) <= width:
        return values
    bucket = len(values) / width
    out = []
    for i in range(width):
        start = int(i * bucket)
        end = max(start + 1, int((i + 1) * bucket))
        window = values[start:end]
        out.append(sum(window) / len(window))
    return out


def line_chart(series: dict[str, Sequence[tuple[float, float]]],
               width: int = 64, height: int = 12,
               title: str = "", y_label: str = "") -> str:
    """Multi-series ASCII line chart over (x, y) points.

    Each series gets a distinct marker; overlapping points show the
    later series' marker.
    """
    markers = "*o+x#@%&"
    points = {name: list(values) for name, values in series.items() if values}
    if not points:
        return title
    xs = [x for values in points.values() for x, _ in values]
    ys = [y for values in points.values() for _, y in values]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(0.0, min(ys)), max(ys)
    if x_hi <= x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(points.items()):
        marker = markers[index % len(markers)]
        for x, y in values:
            col = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_hi:,.0f} {y_label}".rstrip()
    lines.append(f"{top_label:>10} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    bottom_label = f"{y_lo:,.0f}"
    lines.append(f"{bottom_label:>10} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + " └" + "─" * width)
    lines.append(" " * 12 + f"{x_lo:,.0f}".ljust(width - 8)
                 + f"{x_hi:,.0f}".rjust(8))
    legend = "   ".join(f"{markers[i % len(markers)]} {name}"
                        for i, name in enumerate(points))
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
