"""Fleet migration headline: drain-evacuate vs. kill-reboot tails.

The operational question warm migration answers: when a host must go
away (maintenance, imbalance), is *draining* it — live pre-copy
migration of its clone families under traffic — actually better for
the request tail than the brutal alternative the fleet already
survived, killing the host and letting failover re-place the children
cold? Three arms, each a fresh same-seed
:class:`~repro.frontdoor.session.FleetSession` under identical
front-door traffic (heartbeats driven by the dispatch loop, so
migrations and failure detection advance *under load*):

- **baseline** — nobody touches the fleet;
- **drain** — the family's origin host is drained before the run;
  pre-copy rounds, cutover and the post-move pool refresh all happen
  mid-traffic;
- **kill** — the same host is crashed mid-run by a ``host.crash``
  fault; detection waits out the heartbeat timeout, the children are
  re-placed cold.

The fleet is sized so the family *spans* hosts (tight host pools make
the clone batches spill: seven instances on the origin, three on a
second host), which is what makes the comparison sharp. The kill arm
loses seven of ten servers for the whole detection window — the two
survivors' processor-sharing queues eat the full arrival rate, and the
backlog drains only after cold re-placement — while the drain arm
keeps serving on the DRAINING source until cutover, paying only the
in-flight copies retired at the stop-and-copy instant. Drain therefore
holds a P99 near the untouched baseline while the kill arm's tail
carries the overload window (the experiment asserts all three). A
fourth unit runs the 100-fault migration storm
(:func:`run_migration_chaos`) and requires a clean fleet-wide audit
with pages in flight.

Determinism: all four units run twice — serially and through a
process pool — and the experiment asserts the two result sets are
byte-identical before fingerprinting.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
from dataclasses import dataclass, field
from typing import Any

from repro.experiments.report import format_table
from repro.faults.plan import FaultPlan, FaultSpec
from repro.fleet.chaos import audit_fleet
from repro.fleet.migration import run_migration_chaos
from repro.frontdoor.session import FleetSession

MIB = 1024 * 1024

#: Per-host guest pool: 13.5 MiB (3456 frames). Sized so the origin
#: host fits the parent replica (~1132 frames) plus the first clone
#: batch (6 x ~354 frames) and nothing more — the second batch spills
#: to a fresh host, splitting the family 7/3 across hosts, and the
#: post-kill re-placement is forced onto the empty third host.
HOST_MEMORY_BYTES = 2 * MIB + 13 * MIB + 512 * 1024
HOST_DOM0_BYTES = 2 * MIB


def _run_arm(task: tuple[str, int, dict[str, Any]]) -> dict[str, Any]:
    """One experiment unit, self-contained so a pool worker can run it."""
    kind, seed, params = task
    if kind == "storm":
        report = run_migration_chaos(
            seed=seed, hosts=params["hosts"],
            faults=params["faults"], rounds=params["storm_rounds"])
        return {
            "arm": kind,
            "migrations_planned": report.migrations_planned,
            "migrations_done": report.migrations_done,
            "migrations_failed": report.migrations_failed,
            "pages_streamed": report.pages_streamed,
            "pages_aborted": report.pages_aborted,
            "faults_fired": report.faults_fired,
            "midstream_audits": report.midstream_audits,
            "violations": list(report.violations),
            "fingerprint": report.fingerprint,
        }

    plan = None
    if kind == "kill":
        # Fire on the origin host's heartbeat poll at the requested
        # tick: with all hosts up, host0 is polled at hits 1, 1+H,
        # 1+2H, ... so `after = H * (tick - 1)` lands the crash on
        # host0's poll of that tick. The family's origin is host0 by
        # construction (fresh fleet, first placement).
        after = params["hosts"] * (params["kill_tick"] - 1)
        plan = FaultPlan(specs=[
            FaultSpec(site="host.crash", match={"op": "heartbeat"},
                      after=after, count=1),
        ], name=f"migration-kill-{seed:#x}")
    session = FleetSession(hosts=params["hosts"], seed=seed,
                           policy="least-loaded",
                           host_memory_bytes=HOST_MEMORY_BYTES,
                           host_dom0_bytes=HOST_DOM0_BYTES,
                           plan=plan)
    placement = session.create_family("web", ip="10.77.0.1")
    # Two batches: the first fills the origin host, the second spills
    # (replica boot + clones) onto a second host. The family now spans
    # hosts, so a lost host leaves live-but-overloaded survivors.
    session.clone("web", count=params["clones_origin"])
    session.clone("web", count=params["clones_spill"])
    migrations: list[dict[str, Any]] = []
    if kind == "drain":
        drained = session.drain_host(placement.host)
        migrations = drained["migrations"]
    dispatch = session.dispatch(
        "web", "faas", requests=params["requests"],
        arrival_rps=params["arrival_rps"],
        heartbeat_every_ms=params["heartbeat_every_ms"],
        label=f"migration-{kind}")
    fleet_stats = dict(session.fleet.stats)
    family = session.handle("GET", "/families/web").body
    violations = audit_fleet(session.fleet, session.frontdoor)
    if kind == "drain":
        migrations = [record.to_dict()
                      for record in session.fleet.migrations]
    session.close(check=False)
    return {
        "arm": kind,
        "origin": placement.host,
        "requests": dispatch.requests,
        "completed": dispatch.completed,
        "failed": dispatch.failed,
        "timed_out": dispatch.timed_out,
        "copies_lost": dispatch.copies_lost,
        "p50_ms": round(dispatch.latency_p50_ms, 6),
        "p99_ms": round(dispatch.latency_p99_ms, 6),
        "hosts_killed": (fleet_stats["hosts_crashed"]
                         + fleet_stats["hosts_fenced"]),
        "children_replaced": fleet_stats["children_replaced"],
        "migrations_done": fleet_stats["migrations_done"],
        "migrations_failed": fleet_stats["migrations_failed"],
        "migration_rounds": fleet_stats["migration_rounds"],
        "pages_streamed": fleet_stats["migration_pages_streamed"],
        "instances_migrated": fleet_stats["instances_migrated"],
        "family_end_state": {
            "migrating": family["migrating"],
            "source_host": family["source_host"],
            "target_host": family["target_host"],
            "rounds_done": family["rounds_done"],
        },
        "migrations": migrations,
        "violations": violations,
        "fingerprint": dispatch.fingerprint,
    }


@dataclass
class FleetMigrationResult:
    """The ablation table plus the storm unit and determinism check."""

    seed: int
    hosts: int
    instances: int
    requests: int
    arrival_rps: float
    arms: dict[str, dict[str, Any]] = field(default_factory=dict)
    storm: dict[str, Any] = field(default_factory=dict)
    #: True when the pool-executed run matched the serial run exactly.
    parallel_identical: bool = True
    violations: list[str] = field(default_factory=list)
    fingerprint: str = ""

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation, the fingerprint payload."""
        return {
            "seed": self.seed,
            "hosts": self.hosts,
            "instances": self.instances,
            "requests": self.requests,
            "arrival_rps": round(self.arrival_rps, 6),
            "arms": {name: dict(arm)
                     for name, arm in sorted(self.arms.items())},
            "storm": dict(self.storm),
            "parallel_identical": self.parallel_identical,
            "violations": list(self.violations),
            "fingerprint": self.fingerprint,
        }


def run(seed: int = 0xC10E, *, hosts: int = 3, clones_origin: int = 6,
        clones_spill: int = 2, requests: int = 12_000,
        arrival_rps: float = 1500.0, heartbeat_every_ms: float = 50.0,
        kill_tick: int | None = None, storm_faults: int = 100,
        storm_rounds: int = 10,
        parallel: bool = True) -> FleetMigrationResult:
    """The drain-vs-kill ablation at one operating point.

    The arrival rate deliberately exceeds what the spill host's
    survivors can serve alone (the kill arm's overload window is the
    whole point); ``kill_tick`` defaults to a quarter of the run,
    mirroring where the drain arm's cutover lands, so both arms lose
    their host at a comparable point in the request stream.
    """
    if kill_tick is None:
        duration_ms = requests / arrival_rps * 1000.0
        kill_tick = max(2, int(duration_ms / heartbeat_every_ms / 4))
    params = {
        "hosts": hosts, "clones_origin": clones_origin,
        "clones_spill": clones_spill, "requests": requests,
        "arrival_rps": arrival_rps,
        "heartbeat_every_ms": heartbeat_every_ms,
        "kill_tick": kill_tick, "faults": storm_faults,
        "storm_rounds": storm_rounds,
    }
    tasks = [(kind, seed, params)
             for kind in ("baseline", "drain", "kill", "storm")]
    serial = [_run_arm(task) for task in tasks]
    result = FleetMigrationResult(
        seed=seed, hosts=hosts,
        instances=2 + clones_origin + clones_spill,
        requests=requests, arrival_rps=arrival_rps)
    if parallel:
        with multiprocessing.get_context("fork").Pool(2) as pool:
            pooled = pool.map(_run_arm, tasks)
        result.parallel_identical = pooled == serial
        if not result.parallel_identical:
            result.violations.append(
                "parallel run diverged from serial run")

    for unit in serial:
        name = unit.pop("arm")
        if name == "storm":
            result.storm = unit
        else:
            result.arms[name] = unit
        result.violations.extend(
            f"{name}: {violation}" for violation in unit["violations"])

    drain = result.arms["drain"]
    kill = result.arms["kill"]
    if drain["migrations_done"] < 1:
        result.violations.append("drain arm completed no migration")
    if not drain["family_end_state"]["target_host"]:
        result.violations.append("drain arm reports no target host")
    if kill["hosts_killed"] != 1:
        result.violations.append(
            f"kill arm killed {kill['hosts_killed']} hosts, wanted 1")
    baseline = result.arms["baseline"]
    if drain["p99_ms"] >= kill["p99_ms"]:
        result.violations.append(
            f"drain P99 {drain['p99_ms']} ms did not beat kill P99 "
            f"{kill['p99_ms']} ms")
    if kill["p99_ms"] <= baseline["p99_ms"]:
        result.violations.append(
            f"kill P99 {kill['p99_ms']} ms shows no tail damage over "
            f"baseline {baseline['p99_ms']} ms")
    if drain["p99_ms"] > baseline["p99_ms"] * 1.25:
        result.violations.append(
            f"drain P99 {drain['p99_ms']} ms is not a bounded blip over "
            f"baseline {baseline['p99_ms']} ms")

    payload = result.to_dict()
    payload.pop("fingerprint")
    result.fingerprint = hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode()).hexdigest()
    return result


def run_quick(seed: int = 0xC10E) -> FleetMigrationResult:
    """The CI-sized run: 3k requests per arm, small storm."""
    return run(seed, requests=3_000, storm_faults=30, storm_rounds=4)


def format_result(result: FleetMigrationResult) -> str:
    """The drain-vs-kill table plus the storm and determinism lines."""
    rows = []
    for name in ("baseline", "drain", "kill"):
        arm = result.arms[name]
        rows.append([
            name,
            f"{arm['completed']}/{arm['requests']}",
            arm["failed"],
            f"{arm['p50_ms']:.2f}",
            f"{arm['p99_ms']:.2f}",
            arm["migrations_done"],
            arm["children_replaced"],
        ])
    table = format_table(
        f"Fleet migration: drain-evacuate vs kill-reboot "
        f"({result.hosts} hosts, {result.instances} instances, "
        f"{result.requests} requests/arm @ {result.arrival_rps:.0f} rps)",
        ["arm", "completed", "failed", "p50 ms", "p99 ms",
         "migrations", "re-placed"],
        rows)
    storm = result.storm
    lines = [table, (
        f"\nstorm ({storm.get('faults_fired', 0)} faults fired): "
        f"{storm.get('migrations_done', 0)} migrations done, "
        f"{storm.get('migrations_failed', 0)} failed, "
        f"{storm.get('pages_streamed', 0)} pages streamed, "
        f"{storm.get('midstream_audits', 0)} mid-stream audits clean")]
    lines.append("\nserial == parallel: "
                 + ("yes" if result.parallel_identical else "NO"))
    if result.violations:
        lines.append(f"\nVIOLATIONS ({len(result.violations)}):")
        lines.extend(f"\n  - {violation}"
                     for violation in result.violations)
    return "".join(lines)
