"""Fig 6: fork and clone duration vs resident allocation size.

The memhog probe allocates a resident chunk (1 MB .. 4 GB), then forks
(Linux process baseline) or clones (Unikraft) twice; the first call is
slower because the whole address space is write-protected/shared.

Paper anchors: second fork of a small process 0.07 ms vs second clone
4.1 ms (a 5757% gap) narrowing to 65.2 ms vs 79.2 ms at 4 GiB (21%);
clone duration flat below Xen's 4 MB domain minimum; Dom0 userspace
operations 3 ms on the first clone, 1.9 ms afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api import NepheleSession
from repro.apps.memhog import MemhogApp
from repro.experiments.report import format_table
from repro.guest.linux import LinuxProcess
from repro.sim.units import GIB, KIB, MIB
from repro.toolstack.config import DomainConfig

#: The paper's x axis: 1 MB .. 4096 MB, powers of two.
DEFAULT_SIZES_MB = tuple(1 << i for i in range(13))  # 1 .. 4096


@dataclass
class Fig6Row:
    alloc_mb: int
    process_fork1_ms: float
    process_fork2_ms: float
    clone1_ms: float
    clone2_ms: float
    userspace1_ms: float
    userspace2_ms: float


@dataclass
class Fig6Result:
    rows: list[Fig6Row] = field(default_factory=list)
    repetitions: int = 1

    def row(self, alloc_mb: int) -> Fig6Row:
        """The measurements at one allocation size."""
        for row in self.rows:
            if row.alloc_mb == alloc_mb:
                return row
        raise KeyError(alloc_mb)

    def gap_percent(self, alloc_mb: int) -> float:
        """(clone2 - fork2) / fork2, the paper's 5757% -> 21% narrowing."""
        row = self.row(alloc_mb)
        return 100.0 * (row.clone2_ms - row.process_fork2_ms) \
            / row.process_fork2_ms


def _measure_process(session: NepheleSession, alloc_mb: int,
                     reps: int) -> tuple[float, float]:
    fork1 = fork2 = 0.0
    for _ in range(reps):
        process = LinuxProcess(session.clock, session.costs, "memhog",
                               resident_bytes=alloc_mb * MIB + 256 * KIB)
        _, d1 = process.fork()
        _, d2 = process.fork()
        fork1 += d1
        fork2 += d2
    return fork1 / reps, fork2 / reps


def _measure_clone(session: NepheleSession, alloc_mb: int, index: int,
                   reps: int) -> tuple[float, float, float, float]:
    clone1 = clone2 = user1 = user2 = 0.0
    for rep in range(reps):
        config = DomainConfig(
            name=f"memhog-{alloc_mb}-{index}-{rep}",
            memory_mb=max(4, alloc_mb + 8),
            kernel="unikraft-memhog", max_clones=4,
            clone_io_devices=False)
        domain = session.boot(config, app=MemhogApp(alloc_mb * MIB))
        app: MemhogApp = domain.guest.app
        handle = session.xencloned.handle

        r0 = handle.requests_issued
        t0 = session.now
        first_kids = app.trigger_clone(domain.guest.api)
        clone1 += session.now - t0
        user1 += _userspace_ms(session, handle.requests_issued - r0)

        r0 = handle.requests_issued
        t0 = session.now
        second_kids = app.trigger_clone(domain.guest.api)
        clone2 += session.now - t0
        user2 += _userspace_ms(session, handle.requests_issued - r0)

        for domid in first_kids + second_kids:
            session.destroy(domid)
        session.destroy(domain)
    return clone1 / reps, clone2 / reps, user1 / reps, user2 / reps


def _userspace_ms(session: NepheleSession, requests: int) -> float:
    """Approximate Dom0 userspace time of the last clone: its Xenstore
    requests at the current store size."""
    costs = session.costs
    per_request = (costs.xs_request_base
                   + costs.xs_request_per_node * session.xenstore.node_count)
    return requests * per_request


def run(sizes_mb=DEFAULT_SIZES_MB, repetitions: int = 3) -> Fig6Result:
    """The paper runs 10 repetitions per size; 3 keep runtimes short and
    the simulation is deterministic anyway."""
    result = Fig6Result(repetitions=repetitions)
    # Host must hold the largest guest (+ a clone's paging overhead).
    pool = max(24 * GIB, 3 * max(sizes_mb) * MIB)
    with NepheleSession(trace=False, total_memory_bytes=pool + 4 * GIB,
                        dom0_memory_bytes=4 * GIB) as session:
        for index, alloc_mb in enumerate(sizes_mb):
            fork1, fork2 = _measure_process(session, alloc_mb, repetitions)
            clone1, clone2, user1, user2 = _measure_clone(
                session, alloc_mb, index, repetitions)
            result.rows.append(Fig6Row(alloc_mb, fork1, fork2, clone1,
                                       clone2, user1, user2))
    # Leaving the session verified the frame-accounting invariants.
    return result


def format_result(result: Fig6Result) -> str:
    """The Fig 6 table plus the gap summary."""
    rows = [
        [f"{row.alloc_mb} MB", row.process_fork1_ms, row.process_fork2_ms,
         row.clone1_ms, row.clone2_ms, row.userspace2_ms]
        for row in result.rows
    ]
    table = format_table(
        "Fig 6: fork/clone duration vs allocation size (ms)",
        ["alloc", "1st fork", "2nd fork", "1st clone", "2nd clone",
         "userspace"], rows)
    smallest = result.rows[0].alloc_mb
    largest = result.rows[-1].alloc_mb
    footer = (
        f"\n2nd-fork vs 2nd-clone gap: {result.gap_percent(smallest):.0f}% at "
        f"{smallest} MB (paper: 5757%), {result.gap_percent(largest):.0f}% at "
        f"{largest} MB (paper: 21%)")
    return table + footer
