"""The common exception base for the whole library.

Every repro-raised exception derives from :class:`ReproError`, so
callers of the session API can catch one type instead of memorising
which layer throws what::

    try:
        with NepheleSession() as session:
            session.boot("web0")
            session.clone("web0", count=64)
    except ReproError as exc:
        ...

The per-layer classes (``ToolstackError``, ``CloneOpError``,
``XenError``, ``XenstoreError``, ...) keep their historical modules and
names; only their base changed.

This module deliberately imports nothing: it sits below every other
module in the dependency graph, so any layer can use it freely.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all exceptions raised by the repro library."""
