"""Run reports: the per-stage breakdown table and JSON trace export.

A *run report* is the machine-readable dump of one traced run - every
stored span, every counter/histogram, and the per-kind summary - shaped
for diffing: keys are sorted, floats are virtual-clock-derived (hence
deterministic for a fixed seed), and nothing in it depends on host
wall-clock. Benchmarks store a report per run and compare stage totals
across commits with :func:`diff_summaries`.
"""

from __future__ import annotations

import json
from typing import Any

_COLUMNS = ("count", "total_ms", "self_ms", "mean_ms", "max_ms")


def format_summary(summary: dict[str, dict[str, float]]) -> str:
    """Render a ``Tracer.summary()`` mapping as an aligned text table.

    Rows arrive sorted by total time (the summary dict preserves that
    order); the table is what ``repro trace`` and ``trace_report()``
    print.
    """
    if not summary:
        return "(no spans recorded)"
    width = max(len("stage"), *(len(kind) for kind in summary))
    header = (f"{'stage':<{width}}  {'count':>7}  {'total ms':>12}  "
              f"{'self ms':>12}  {'mean ms':>10}  {'max ms':>10}")
    lines = [header, "-" * len(header)]
    for kind, row in summary.items():
        lines.append(
            f"{kind:<{width}}  {row['count']:>7d}  {row['total_ms']:>12.4f}  "
            f"{row['self_ms']:>12.4f}  {row['mean_ms']:>10.4f}  "
            f"{row['max_ms']:>10.4f}")
    return "\n".join(lines)


def format_counters(counters: dict[str, int]) -> str:
    """Render registry counters as an aligned table.

    Datapath health shows up here: ``net.bridge.flooded`` over
    ``net.bridge.forwarded`` (the flood ratio) tells how much traffic
    missed the MAC table, and ``net.bridge.flood_filtered`` counts the
    deliveries the per-port pre-filters short-circuited.
    """
    if not counters:
        return "(no counters recorded)"
    rows: list[tuple[str, str]] = [
        (name, str(value)) for name, value in sorted(counters.items())]
    forwarded = counters.get("net.bridge.forwarded", 0)
    if forwarded:
        ratio = counters.get("net.bridge.flooded", 0) / forwarded
        rows.append(("net.bridge.flood_ratio", f"{ratio:.4f}"))
    width = max(len("counter"), *(len(name) for name, _ in rows))
    header = f"{'counter':<{width}}  {'value':>12}"
    lines = [header, "-" * len(header)]
    for name, value in rows:
        lines.append(f"{name:<{width}}  {value:>12}")
    return "\n".join(lines)


def run_report(tracer: Any, **meta: Any) -> dict[str, Any]:
    """Build the full JSON-serializable report for one tracer.

    ``meta`` entries (experiment name, instance count, seed, ...) are
    embedded under ``"meta"`` next to trace bookkeeping.
    """
    host = getattr(tracer, "host", "")
    return {
        "meta": {
            "virtual_now_ms": tracer.clock.now,
            "spans_recorded": len(tracer.ring),
            "spans_evicted": tracer.ring.evicted,
            **({"host": host} if host else {}),
            **meta,
        },
        "summary": tracer.summary(),
        "spans": [span.to_dict() for span in tracer.ring],
        **tracer.registry.to_dict(),
    }


def dump_report(tracer: Any, path: str, **meta: Any) -> dict[str, Any]:
    """Write :func:`run_report` to ``path`` as JSON; return the report."""
    report = run_report(tracer, **meta)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return report


def diff_summaries(old: dict[str, dict[str, float]],
                   new: dict[str, dict[str, float]],
                   ) -> dict[str, dict[str, float]]:
    """Per-stage deltas between two summaries (``new`` minus ``old``).

    Stages present in only one run appear with the other side treated
    as zero, so regressions from *new* stages are visible too.
    """
    diff: dict[str, dict[str, float]] = {}
    zero = {col: 0.0 for col in _COLUMNS}
    for kind in sorted(set(old) | set(new)):
        before = old.get(kind, zero)
        after = new.get(kind, zero)
        diff[kind] = {col: after[col] - before[col] for col in _COLUMNS}
    return diff
