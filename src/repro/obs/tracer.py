"""The tracer: nested spans + metrics over the virtual clock.

One :class:`Tracer` instance is shared by every layer of a platform
(hypervisor, xencloned, Xenstore, toolstack, device backends). Spans
nest through an explicit stack, so a second-stage span opened by
xencloned while the CLONEOP hypercall is in flight is recorded as a
child of the clone operation's span - the per-stage breakdowns of the
paper's Fig 6 fall directly out of this structure.

Tracing must cost (virtually) nothing when off: the module-level
:data:`NULL_TRACER` implements the same surface as no-op methods
returning a shared singleton span, so instrumented hot paths run a
single dynamic dispatch per probe and allocate nothing.
"""

from __future__ import annotations

from typing import Any

from repro.obs.registry import MetricsRegistry
from repro.obs.span import Span, SpanRing


class _NullSpan:
    """The shared do-nothing span handed out by :class:`NullTracer`."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        """Discard attributes (tracing is disabled)."""
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every probe is a no-op.

    Instrumentation sites call straight into these methods without
    checking a flag first; the cost of a disabled probe is one method
    call and zero allocations.
    """

    __slots__ = ()

    enabled = False

    def span(self, kind: str, **attrs: Any) -> _NullSpan:
        """Return the shared no-op span."""
        return _NULL_SPAN

    def count(self, name: str, n: int = 1) -> None:
        """Discard a counter increment."""

    def observe(self, name: str, value: float) -> None:
        """Discard a histogram observation."""

    def event(self, kind: str, **attrs: Any) -> None:
        """Discard an instantaneous event."""


#: The process-wide disabled tracer. Components default to this, so an
#: untraced platform never touches the clock or allocates span state.
NULL_TRACER = NullTracer()


class _OpenSpan:
    """Context manager for one in-flight span of a real tracer."""

    __slots__ = ("_tracer", "_kind", "_attrs", "_span")

    def __init__(self, tracer: "Tracer", kind: str,
                 attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self._kind = kind
        self._attrs = attrs
        self._span: Span | None = None

    def __enter__(self) -> Span:
        # The body of Tracer._open, inlined: spans bracket the hottest
        # simulated paths, so entering one must cost a fixed handful of
        # calls. ``clock._now`` is the VirtualClock backing field (the
        # tracer is documented as keyed to a VirtualClock), and the Span
        # is built by direct slot assignment to skip the dataclass
        # ``__init__``'s keyword plumbing.
        tracer = self._tracer
        stack = tracer._stack
        span = self._span = Span.__new__(Span)
        span.kind = self._kind
        span.start_ms = tracer.clock._now
        span.span_id = tracer._next_id
        span.parent_id = stack[-1].span_id if stack else None
        span.depth = len(stack)
        span.end_ms = None
        span.children_ms = 0.0
        span.attrs = self._attrs
        tracer._next_id += 1
        stack.append(span)
        return span

    def __exit__(self, *exc_info: object) -> bool:
        self._tracer._close(self._span)
        return False

    def set(self, **attrs: Any) -> "_OpenSpan":
        """Attach attributes before (or instead of) entering."""
        self._attrs.update(attrs)
        return self


class Tracer:
    """Span/counter/histogram recorder keyed to a virtual clock.

    All timestamps are read from the platform's
    :class:`~repro.sim.clock.VirtualClock`, so spans measure *simulated*
    cost, deterministically, independent of host wall-clock jitter -
    two runs with the same seed export byte-identical traces.
    """

    enabled = True

    def __init__(self, clock: Any, capacity: int = 16384,
                 host: str = "") -> None:
        self.clock = clock
        #: Host identity for fleet runs: stamped into exported reports
        #: and summaries so spans from different member hosts stay
        #: attributable after aggregation. Empty for standalone hosts.
        self.host = host
        self.ring = SpanRing(capacity)
        self.registry = MetricsRegistry()
        self._stack: list[Span] = []
        self._next_id = 1
        #: Per-kind running aggregates, immune to ring eviction:
        #: kind -> [count, total_ms, self_ms, max_ms, histogram].
        self._agg: dict[str, list] = {}
        #: Counter objects by name, so steady-state ``count()`` calls
        #: skip the registry lookup. Cleared together with the registry.
        self._counter_cache: dict[str, Any] = {}

    # ------------------------------------------------------------------
    # span lifecycle
    # ------------------------------------------------------------------
    def span(self, kind: str, **attrs: Any) -> _OpenSpan:
        """A context manager recording one nested span of kind ``kind``."""
        return _OpenSpan(self, kind, attrs)

    def _close(self, span: Span | None) -> None:
        if span is None:  # pragma: no cover - defensive
            return
        now = self.clock._now
        span.end_ms = now
        # Unwind to (and including) this span; tolerate callers that
        # closed out of order by closing the intermediates too.
        stack = self._stack
        while stack:
            top = stack.pop()
            end = top.end_ms
            if end is None:
                end = top.end_ms = now
            duration = end - top.start_ms
            if stack:
                stack[-1].children_ms += duration
            self._record(top, duration)
            if top is span:
                break

    def _record(self, span: Span, duration: float | None = None) -> None:
        if duration is None:
            end = span.end_ms
            duration = 0.0 if end is None else end - span.start_ms
        ring = self.ring
        ring._spans.append(span)
        ring.pushed += 1
        agg = self._agg.get(span.kind)
        if agg is None:
            # The per-kind histogram rides along in the aggregate slot
            # so steady-state recording skips the registry lookup (and
            # its name formatting) entirely.
            agg = self._agg[span.kind] = [
                0, 0.0, 0.0, 0.0,
                self.registry.histogram(f"span_ms.{span.kind}")]
        agg[0] += 1
        agg[1] += duration
        self_ms = duration - span.children_ms
        agg[2] += self_ms if self_ms > 0.0 else 0.0
        if duration > agg[3]:
            agg[3] = duration
        agg[4].observe(duration)

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        try:
            counter = self._counter_cache[name]
        except KeyError:
            counter = self._counter_cache[name] = self.registry.counter(name)
        counter.add(n)

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name``."""
        self.registry.histogram(name).observe(value)

    def event(self, kind: str, **attrs: Any) -> None:
        """Record an instantaneous (zero-duration) span."""
        now = self.clock._now
        stack = self._stack
        span = Span.__new__(Span)
        span.kind = kind
        span.start_ms = now
        span.span_id = self._next_id
        span.parent_id = stack[-1].span_id if stack else None
        span.depth = len(stack)
        span.end_ms = now
        span.children_ms = 0.0
        span.attrs = attrs
        self._next_id += 1
        self._record(span)

    # ------------------------------------------------------------------
    # introspection / export
    # ------------------------------------------------------------------
    def spans(self, kind: str | None = None) -> list[Span]:
        """Stored spans, optionally filtered by kind, oldest first."""
        if kind is None:
            return list(self.ring)
        return self.ring.by_kind(kind)

    def kinds(self) -> set[str]:
        """Every span kind seen so far (including evicted ones)."""
        return set(self._agg)

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-kind aggregate: count, total/self/mean/max virtual ms.

        Built from running aggregates, so it stays exact even after the
        span ring has started evicting old spans.
        """
        result: dict[str, dict[str, float]] = {}
        for kind in sorted(self._agg, key=lambda k: -self._agg[k][1]):
            count, total, self_total, max_ms = self._agg[kind][:4]
            result[kind] = {
                "count": int(count),
                "total_ms": total,
                "self_ms": self_total,
                "mean_ms": total / count if count else 0.0,
                "max_ms": max_ms,
            }
        return result

    def format_summary(self) -> str:
        """The per-stage breakdown table (see :mod:`repro.obs.report`)."""
        from repro.obs.report import format_summary

        return format_summary(self.summary())

    def export(self, **meta: Any) -> dict[str, Any]:
        """The full machine-readable run report (JSON-serializable)."""
        from repro.obs.report import run_report

        return run_report(self, **meta)

    def reset(self) -> None:
        """Drop all recorded spans and metrics (open spans survive)."""
        self.ring.clear()
        self.registry.clear()
        self._agg.clear()
        self._counter_cache.clear()
