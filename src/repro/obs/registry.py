"""Counter and histogram registries.

Counters are monotonically increasing event tallies (Xenstore requests,
pages COW-shared, vifs enslaved); histograms record distributions of
virtual-time durations or sizes with power-of-two buckets. Both are
name-keyed and created lazily on first touch, following the
standardized-instrumentation model of gem5's stats framework: the same
registry shape for every run, so reports diff cleanly.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Iterable


class Counter:
    """A monotonically increasing named tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def add(self, n: int = 1) -> None:
        """Increment by ``n`` (must be non-negative)."""
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease by {n}")
        self.value += n

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {"name": self.name, "value": self.value}


#: Upper bounds of the default histogram buckets (virtual ms); the last
#: bucket is open-ended. Powers of four cover 1 us .. ~70 s.
DEFAULT_BUCKET_BOUNDS = tuple(0.001 * (4 ** i) for i in range(13))

#: Fine-grained bounds for per-request latency distributions (the
#: front-door P99 curves): a 1.25x geometric ladder from 10 us to ~7 s.
#: The power-of-four default is fine for per-stage breakdowns but far
#: too coarse to resolve a tail quantile.
LATENCY_BUCKET_BOUNDS = tuple(0.01 * (1.25 ** i) for i in range(60))


class Histogram:
    """A fixed-bucket histogram of observed values (virtual ms).

    Tracks count / sum / min / max exactly and the distribution
    approximately (bucket counts), which is enough for the per-stage
    latency tables and for run-report diffing.
    """

    __slots__ = ("name", "bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str,
                 bounds: Iterable[float] = DEFAULT_BUCKET_BOUNDS) -> None:
        self.name = name
        self.bounds = tuple(bounds)
        if not self.bounds:
            raise ValueError(f"histogram {self.name!r} needs >= 1 bucket bound")
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        # First bound >= value, or len(bounds) for the open-ended last
        # bucket — which is exactly buckets[len(bounds)].
        self.buckets[bisect_left(self.bounds, value)] += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket counts.

        Returns the upper bound of the bucket containing the ``q``-th
        observation (the exact max for the open-ended last bucket).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for i, n in enumerate(self.buckets):
            seen += n
            if seen >= target:
                return self.bounds[i] if i < len(self.bounds) else self.max
        return self.max

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation."""
        return {
            "name": self.name,
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
        }


class MetricsRegistry:
    """Lazily-created, name-keyed counters and histograms."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def histogram(self, name: str,
                  bounds: Iterable[float] | None = None) -> Histogram:
        """The histogram called ``name`` (created on first use).

        ``bounds`` only applies on creation; an existing histogram
        keeps the buckets it was born with.
        """
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = (
                Histogram(name) if bounds is None
                else Histogram(name, bounds))
        return histogram

    def clear(self) -> None:
        """Drop all counters and histograms."""
        self.counters.clear()
        self.histograms.clear()

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation, sorted by name for stable diffs."""
        return {
            "counters": {name: c.value
                         for name, c in sorted(self.counters.items())},
            "histograms": {name: h.to_dict()
                           for name, h in sorted(self.histograms.items())},
        }
