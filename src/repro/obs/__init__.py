"""Observability for the Nephele simulation: spans, counters, histograms.

The clone path of the paper is a time claim - Fig 4's boot-vs-clone gap
and Fig 6's first-/second-stage split are both statements about where
virtual milliseconds go. This package records exactly that: a
:class:`~repro.obs.tracer.Tracer` produces nested spans keyed to the
virtual clock, name-keyed counters/histograms, and diffable JSON run
reports. When tracing is off, every probe routes to
:data:`~repro.obs.tracer.NULL_TRACER` and costs one no-op method call.

Span taxonomy (dotted, layer-first):

- ``sim.*`` - engine event dispatch
- ``clone.*`` - CLONEOP hypercall phases and the second stage
  (``clone.op``, ``clone.first_stage``, ``clone.second_stage.xenstore``, ...)
- ``boot.*`` - ``xl create`` phases (``boot.name_check``, ``boot.devices``, ...)
- ``xl.*`` - other toolstack verbs (destroy/save/restore)
- ``xenstore.*`` - daemon-side events (log rotation)
- ``vif.*`` / ``p9.*`` - device backend setup and clone shortcuts
"""

from repro.obs.registry import (
    Counter,
    DEFAULT_BUCKET_BOUNDS,
    Histogram,
    MetricsRegistry,
)
from repro.obs.report import (
    diff_summaries,
    dump_report,
    format_summary,
    run_report,
)
from repro.obs.span import Span, SpanRing
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKET_BOUNDS",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "SpanRing",
    "Tracer",
    "diff_summaries",
    "dump_report",
    "format_summary",
    "run_report",
]
