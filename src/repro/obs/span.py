"""Spans: timed regions of virtual time, stored in a ring buffer.

A :class:`Span` is one named, possibly-nested region of the virtual
clock's timeline (``clone.first_stage``, ``boot.name_check``, ...).
Finished spans land in a fixed-capacity :class:`SpanRing`; when the ring
is full the *oldest* spans are evicted (and counted), so a long run
keeps its most recent history without unbounded memory growth.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass(slots=True)
class Span:
    """One finished (or still-open) timed region of virtual time.

    Durations are in virtual milliseconds. ``children_ms`` accumulates
    the durations of directly nested spans, so ``self_ms`` is the time
    attributable to this span alone - the number the per-stage
    breakdown tables report.
    """

    kind: str
    start_ms: float
    span_id: int
    parent_id: int | None = None
    depth: int = 0
    end_ms: float | None = None
    children_ms: float = 0.0
    attrs: dict[str, Any] = field(default_factory=dict)

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to this span; returns ``self`` for chaining.

        The disabled-tracer span exposes the same method, so
        instrumentation sites can set attributes unconditionally.
        """
        self.attrs.update(attrs)
        return self

    @property
    def duration_ms(self) -> float:
        """Inclusive duration (0.0 while the span is still open)."""
        if self.end_ms is None:
            return 0.0
        return self.end_ms - self.start_ms

    @property
    def self_ms(self) -> float:
        """Exclusive duration: inclusive minus directly nested spans."""
        return max(0.0, self.duration_ms - self.children_ms)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready representation (used by trace export)."""
        return {
            "kind": self.kind,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "duration_ms": self.duration_ms,
            "self_ms": self.self_ms,
            "attrs": dict(self.attrs),
        }


class SpanRing:
    """Fixed-capacity FIFO store for finished spans.

    Mirrors the clone notification ring's shape, but with overwrite
    semantics: tracing must never stall the traced system, so a full
    ring silently evicts the oldest span and bumps ``evicted``.
    """

    def __init__(self, capacity: int = 16384) -> None:
        if capacity <= 0:
            raise ValueError(f"non-positive span ring capacity: {capacity}")
        self.capacity = capacity
        self._spans: deque[Span] = deque(maxlen=capacity)
        self.pushed = 0

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    @property
    def evicted(self) -> int:
        """How many spans were overwritten by newer ones."""
        return self.pushed - len(self._spans)

    def push(self, span: Span) -> None:
        """Record a finished span (evicting the oldest when full).

        ``Tracer._record`` inlines this body on its hot path; keep the
        two in sync.
        """
        self._spans.append(span)
        self.pushed += 1

    def clear(self) -> None:
        """Drop all stored spans (the eviction counter resets too)."""
        self._spans.clear()
        self.pushed = 0

    def by_kind(self, kind: str) -> list[Span]:
        """All stored spans of one kind, oldest first."""
        return [span for span in self._spans if span.kind == kind]

    def kinds(self) -> set[str]:
        """The distinct span kinds currently stored."""
        return {span.kind for span in self._spans}
