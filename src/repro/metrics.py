"""Platform introspection: one structured snapshot of host state.

Gathers what an operator would want from ``xl info`` + ``xenstore-ls``
+ ``free`` in one call: memory by category, sharing ratios, family
sizes, Xenstore and Dom0 state. Used by the CLI's ``stats`` command and
by tests that assert on global state.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.units import MIB, PAGE_SIZE
from repro.xen.domid import DOMID_COW, XEN_OWNER


@dataclass
class FamilyStats:
    root_domid: int
    root_name: str
    members: int
    shared_pages: int
    private_pages: int

    @property
    def sharing_ratio(self) -> float:
        total = self.shared_pages + self.private_pages
        return self.shared_pages / total if total else 0.0


@dataclass
class PlatformSnapshot:
    virtual_time_ms: float
    # --- memory (bytes) ---
    guest_pool_total: int
    guest_pool_free: int
    dom0_total: int
    dom0_free: int
    cow_shared_bytes: int
    xen_overhead_bytes: int
    # --- domains ---
    domains: int
    running: int
    paused: int
    clones: int
    families: list[FamilyStats] = field(default_factory=list)
    # --- registries ---
    xenstore_nodes: int = 0
    xenstore_requests: int = 0
    xenstore_rotations: int = 0
    clone_operations: int = 0

    def format(self) -> str:
        """Human-readable multi-line rendering."""
        lines = [
            f"virtual time      {self.virtual_time_ms:.1f} ms",
            f"guest pool        {self.guest_pool_free / MIB:.0f} / "
            f"{self.guest_pool_total / MIB:.0f} MiB free",
            f"dom0              {self.dom0_free / MIB:.0f} / "
            f"{self.dom0_total / MIB:.0f} MiB free",
            f"COW-shared        {self.cow_shared_bytes / MIB:.1f} MiB",
            f"xen overhead      {self.xen_overhead_bytes / MIB:.1f} MiB",
            f"domains           {self.domains} ({self.running} running, "
            f"{self.paused} paused, {self.clones} clones)",
            f"xenstore          {self.xenstore_nodes} nodes, "
            f"{self.xenstore_requests} requests, "
            f"{self.xenstore_rotations} log rotations",
            f"clone operations  {self.clone_operations}",
        ]
        for family in self.families:
            lines.append(
                f"family {family.root_name!r} (domid {family.root_domid}): "
                f"{family.members} members, "
                f"{100 * family.sharing_ratio:.0f}% of pages shared")
        return "\n".join(lines)


def snapshot(platform) -> PlatformSnapshot:
    """Collect a :class:`PlatformSnapshot` from a live platform."""
    hyp = platform.hypervisor
    frames = hyp.frames

    states = [d.state.value for d in hyp.domains.values()]
    clones = sum(1 for d in hyp.domains.values() if d.is_clone)

    families: list[FamilyStats] = []
    for domain in sorted(hyp.domains.values(), key=lambda d: d.domid):
        if domain.parent_id is not None or not domain.children:
            continue
        member_ids = {domain.domid} | hyp.descendants(domain.domid)
        shared = private = 0
        seen_extents: set[int] = set()
        for member_id in member_ids:
            member = hyp.domains[member_id]
            private += member.memory.private_pages()
            for seg in member.memory.segments:
                if seg.shared and seg.extent.extent_id not in seen_extents:
                    seen_extents.add(seg.extent.extent_id)
                    shared += seg.extent.live_pages
        families.append(FamilyStats(
            root_domid=domain.domid, root_name=domain.name,
            members=len(member_ids), shared_pages=shared,
            private_pages=private))

    return PlatformSnapshot(
        virtual_time_ms=platform.now,
        guest_pool_total=frames.total_frames * PAGE_SIZE,
        guest_pool_free=frames.free_frames * PAGE_SIZE,
        dom0_total=platform.dom0.memory_bytes,
        dom0_free=platform.dom0.free_bytes,
        cow_shared_bytes=frames.pages_owned(DOMID_COW) * PAGE_SIZE,
        xen_overhead_bytes=frames.pages_owned(XEN_OWNER) * PAGE_SIZE,
        domains=len(hyp.domains),
        running=states.count("running"),
        paused=states.count("paused"),
        clones=clones,
        families=families,
        xenstore_nodes=platform.xenstore.node_count,
        xenstore_requests=platform.xenstore.stats["requests"],
        xenstore_rotations=platform.xenstore.access_log.rotations,
        clone_operations=platform.cloneop.stats["clones"],
    )
