"""Units used across the simulation.

Time is expressed in milliseconds because that is the unit the paper's
figures use. Memory is expressed in bytes, with x86 4 KiB pages.
"""

# --- time (base unit: millisecond) ---
USEC: float = 1e-3
MSEC: float = 1.0
SEC: float = 1000.0

# --- memory ---
KIB: int = 1024
MIB: int = 1024 * KIB
GIB: int = 1024 * MIB

PAGE_SHIFT: int = 12
PAGE_SIZE: int = 1 << PAGE_SHIFT  # 4096


def pages_of(nbytes: int) -> int:
    """Number of 4 KiB pages needed to hold ``nbytes`` (rounded up)."""
    if nbytes < 0:
        raise ValueError(f"negative byte count: {nbytes}")
    return (nbytes + PAGE_SIZE - 1) >> PAGE_SHIFT
