"""Discrete-event engine.

A minimal event queue over :class:`~repro.sim.clock.VirtualClock`. Used by
the time-series experiments (FaaS autoscaling, fuzzing sessions) where
several actors interleave over simulated minutes. Most of the system
charges costs synchronously and does not need the queue.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.obs.tracer import NULL_TRACER
from repro.sim.clock import VirtualClock

EventCallback = Callable[[], None]

#: Queues smaller than this are never compacted: a handful of stale
#: entries is cheaper to pop past than to rebuild the heap for.
_COMPACT_MIN = 64


class ScheduledEvent:
    """Handle for a scheduled event; supports cancellation."""

    __slots__ = ("time", "callback", "cancelled", "_engine", "_enqueued")

    def __init__(self, time: float, callback: EventCallback) -> None:
        self.time = time
        self.callback = callback
        self.cancelled = False
        #: Owning engine, set on first push; lets ``cancel`` report the
        #: now-dead queue entry so the engine can compact lazily.
        self._engine: "Engine | None" = None
        self._enqueued = False

    def cancel(self) -> None:
        """Prevent this event (and, for periodic series, reoccurrence)."""
        if self.cancelled:
            return
        self.cancelled = True
        engine = self._engine
        if engine is not None and self._enqueued:
            engine._note_cancelled()


class Engine:
    """Event queue bound to a virtual clock."""

    def __init__(self, clock: VirtualClock | None = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self._queue: list[tuple[float, int, ScheduledEvent]] = []
        self._seq = itertools.count()
        #: Cancelled events still sitting in the heap. When they come to
        #: outnumber the live ones the queue is rebuilt without them, so
        #: cancel-heavy workloads (periodic timers torn down en masse)
        #: stay O(live events) instead of growing the heap forever.
        self._cancelled = 0
        #: How many lazy compactions have run (regression-test hook).
        self.compactions = 0
        #: Set by the platform when tracing is on; each dispatched event
        #: then records a ``sim.event`` span.
        self.tracer = NULL_TRACER

    def schedule_at(self, t_ms: float, callback: EventCallback) -> ScheduledEvent:
        """Schedule ``callback`` at absolute virtual time ``t_ms``."""
        if t_ms < self.clock.now:
            raise ValueError(f"cannot schedule in the past: {t_ms} < {self.clock.now}")
        event = ScheduledEvent(t_ms, callback)
        event._engine = self
        event._enqueued = True
        heapq.heappush(self._queue, (t_ms, next(self._seq), event))
        return event

    def schedule_after(self, delay_ms: float, callback: EventCallback) -> ScheduledEvent:
        """Schedule ``callback`` after ``delay_ms`` from now."""
        if delay_ms < 0:
            raise ValueError(f"negative delay: {delay_ms}")
        return self.schedule_at(self.clock.now + delay_ms, callback)

    def every(self, interval_ms: float, callback: EventCallback,
              first_at: float | None = None) -> ScheduledEvent:
        """Schedule ``callback`` periodically every ``interval_ms``.

        Returns the handle of the *first* occurrence; cancelling it stops
        the whole series.
        """
        if interval_ms <= 0:
            raise ValueError(f"non-positive interval: {interval_ms}")
        start = self.clock.now + interval_ms if first_at is None else first_at
        series = ScheduledEvent(start, callback)
        series._engine = self

        def tick() -> None:
            if series.cancelled:
                return
            callback()
            if not series.cancelled:
                series.time = self.clock.now + interval_ms
                series._enqueued = True
                heapq.heappush(self._queue, (series.time, next(self._seq), series))

        series.callback = tick
        series._enqueued = True
        heapq.heappush(self._queue, (start, next(self._seq), series))
        return series

    @property
    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._queue)

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying heap slots."""
        return self._cancelled

    def _note_cancelled(self) -> None:
        """One enqueued event just turned dead; compact if they dominate.

        Rebuilding costs O(queue), but only runs once the queue is more
        than half garbage, so the amortized cost per cancel is O(1) and
        the heap never holds more than ``2 * live + 1`` entries (above
        ``_COMPACT_MIN``).
        """
        self._cancelled += 1
        queue = self._queue
        if len(queue) >= _COMPACT_MIN and self._cancelled * 2 > len(queue):
            live = []
            for entry in queue:
                event = entry[2]
                if event.cancelled:
                    event._enqueued = False
                else:
                    live.append(entry)
            queue[:] = live
            heapq.heapify(queue)
            self._cancelled = 0
            self.compactions += 1

    def next_time(self) -> float | None:
        """Time of the next live event, or None when the queue is empty.

        Cancelled heads are popped on the way (the same lazy-deletion
        discipline :meth:`step` applies), so a subsequent :meth:`step`
        dispatches exactly the event this peeked at. Lets an external
        driver (the front door's dispatch fast path) merge its own
        pre-generated arrival stream with the engine queue without
        scheduling one event per arrival.
        """
        queue = self._queue
        pop = heapq.heappop
        while queue:
            head = queue[0]
            if not head[2].cancelled:
                return head[0]
            pop(queue)
            head[2]._enqueued = False
            self._cancelled -= 1
        return None

    def step(self) -> bool:
        """Run the next event. Returns False when the queue is empty."""
        queue = self._queue
        pop = heapq.heappop
        while queue:
            t_ms, _, event = pop(queue)
            event._enqueued = False
            if event.cancelled:
                self._cancelled -= 1
                continue
            clock = self.clock
            if t_ms > clock._now:
                clock._now = t_ms
            tracer = self.tracer
            if tracer.enabled:
                with tracer.span("sim.event"):
                    event.callback()
            else:
                event.callback()
            return True
        return False

    def run_until(self, t_ms: float) -> None:
        """Run all events scheduled strictly before ``t_ms``, then advance.

        The dispatch loop is flattened (no per-event :meth:`step` call):
        the heap, clock and tracer are bound to locals and every ready
        event — including batches sharing one timestamp — is popped and
        dispatched in a single tight loop.
        """
        queue = self._queue
        pop = heapq.heappop
        clock = self.clock
        while queue and queue[0][0] < t_ms:
            head, _, event = pop(queue)
            event._enqueued = False
            if event.cancelled:
                self._cancelled -= 1
                continue
            if head > clock._now:
                clock._now = head
            tracer = self.tracer
            if tracer.enabled:
                with tracer.span("sim.event"):
                    event.callback()
            else:
                event.callback()
        if t_ms > clock._now:
            clock._now = t_ms

    def run(self, max_events: int = 1_000_000) -> int:
        """Drain the queue; returns how many events ran."""
        ran = 0
        queue = self._queue
        pop = heapq.heappop
        clock = self.clock
        while ran < max_events and queue:
            t_ms, _, event = pop(queue)
            event._enqueued = False
            if event.cancelled:
                self._cancelled -= 1
                continue
            if t_ms > clock._now:
                clock._now = t_ms
            tracer = self.tracer
            if tracer.enabled:
                with tracer.span("sim.event"):
                    event.callback()
            else:
                event.callback()
            ran += 1
        return ran
