"""Simulation kernel: virtual time, event queue, RNG and cost model.

All time in the reproduction is *virtual*. The base unit is the
millisecond, matching the units the paper reports. Components never
consult the wall clock; they charge calibrated costs (see
:mod:`repro.sim.costs`) to a shared :class:`~repro.sim.clock.VirtualClock`.
"""

from repro.sim.clock import VirtualClock
from repro.sim.costs import CostModel
from repro.sim.engine import Engine
from repro.sim.rng import DeterministicRNG
from repro.sim.units import (
    GIB,
    KIB,
    MIB,
    MSEC,
    PAGE_SHIFT,
    PAGE_SIZE,
    SEC,
    USEC,
    pages_of,
)

__all__ = [
    "VirtualClock",
    "CostModel",
    "Engine",
    "DeterministicRNG",
    "USEC",
    "MSEC",
    "SEC",
    "KIB",
    "MIB",
    "GIB",
    "PAGE_SIZE",
    "PAGE_SHIFT",
    "pages_of",
]
