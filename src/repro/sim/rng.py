"""Deterministic randomness.

Every stochastic element of the simulation (load-generator jitter,
throughput variance, fuzzing input generation) draws from a seeded
:class:`DeterministicRNG` so experiments replay identically.
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence, TypeVar

T = TypeVar("T")


class DeterministicRNG:
    """Seeded RNG facade around :class:`random.Random`."""

    def __init__(self, seed: int = 0xC10E) -> None:
        self.seed = seed
        self._random = random.Random(seed)

    def fork(self, label: str) -> "DeterministicRNG":
        """Derive an independent child stream named by ``label``.

        Child streams decorrelate subsystems: drawing more samples in one
        component does not shift another component's sequence. The child
        seed comes from a *stable* hash — builtin ``hash`` of a string is
        randomized per process, which would make every forked stream (and
        so every figure series) unreproducible across runs.
        """
        digest = hashlib.sha256(f"{self.seed}:{label}".encode()).digest()
        child_seed = int.from_bytes(digest[:4], "big") & 0x7FFFFFFF
        return DeterministicRNG(child_seed)

    def uniform(self, lo: float, hi: float) -> float:
        """Uniform sample in [lo, hi]."""
        return self._random.uniform(lo, hi)

    def gauss(self, mu: float, sigma: float) -> float:
        """Gaussian sample."""
        return self._random.gauss(mu, sigma)

    def gauss_pos(self, mu: float, sigma: float) -> float:
        """Gaussian sample truncated below at 0."""
        return max(0.0, self._random.gauss(mu, sigma))

    def randint(self, lo: int, hi: int) -> int:
        """Integer sample in [lo, hi] (inclusive)."""
        return self._random.randint(lo, hi)

    def randbytes(self, n: int) -> bytes:
        """``n`` random bytes."""
        return self._random.randbytes(n)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniformly chosen element of ``seq``."""
        return self._random.choice(seq)

    def random(self) -> float:
        """Uniform sample in [0, 1)."""
        return self._random.random()

    def expovariate(self, rate: float) -> float:
        """Exponential sample with the given rate."""
        return self._random.expovariate(rate)
