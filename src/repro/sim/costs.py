"""Calibrated cost model.

Every virtual-time charge in the simulation names a constant defined
here. The constants are calibrated so the *shapes* of the paper's
figures emerge from the actual operation counts performed by the
simulated platform (number of Xenstore requests issued, number of pages
shared, number of page-table entries cloned, ...), not from hard-coded
curves. Each constant's derivation from a number reported in the paper
is stated next to it.

The paper's testbed for the microbenchmarks is an Intel Xeon E5-1620 v2
at 3.7 GHz, 4 cores, 16 GB DDR3, Dom0 on a ramdisk (paper §6).
All times are in milliseconds (see :mod:`repro.sim.units`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

from repro.sim.units import MSEC, USEC

#: Intra-datacenter round-trip time anchor for the fleet control plane
#: (virtual ms). Published figure: ~0.5 ms for a round trip within the
#: same datacenter (Dean & Barroso, "The Tail at Scale", CACM 2013;
#: identical in the canonical "latency numbers" tables). Every
#: ``fleet_*`` time constant below is a small multiple of this anchor —
#: see docs/CALIBRATION.md for the derivations.
FLEET_LAN_RTT: float = 0.5 * MSEC

#: Time to put one 4 KiB page on a 10 GbE migration stream (virtual
#: ms). Published figure: 10 Gbps line rate moves 4096 B in
#: 4096 * 8 / 10e9 s ≈ 3.277 us — the NIC generation of the
#: memory-streaming literature ("Virtual Memory Streaming Technique
#: for VMs for Rapid Scaling...", arXiv 1406.5760, evaluates exactly
#: this pre-copy/streaming tradeoff). Every ``migration_*`` per-page
#: time constant below derives from this anchor; see
#: docs/MIGRATION.md and docs/CALIBRATION.md.
MIGRATION_WIRE_PAGE: float = 3.2768e-3 * MSEC


@dataclass(slots=True)
class CostModel:
    """Tunable cost table. ``CostModel()`` is the paper calibration.

    Slotted: every charge site in the simulation reads these constants
    on its hot path, so attribute resolution must not go through a
    per-instance ``__dict__``. Free-form per-experiment values belong in
    ``extras``, which stays a plain dict.
    """

    # ------------------------------------------------------------------
    # Hypervisor: domain lifecycle
    # ------------------------------------------------------------------
    #: Fixed cost of the domain-create hypercall path (struct domain,
    #: domid allocation, scheduler registration). Part of the ~160 ms
    #: boot floor of Fig 4.
    hyp_domain_create: float = 2.0 * MSEC
    #: Tearing down a domain and returning its frames.
    hyp_domain_destroy: float = 1.5 * MSEC
    #: Per-vCPU init (registers, timers).
    hyp_vcpu_init: float = 0.1 * MSEC
    #: Pause/unpause a domain.
    hyp_domain_pause: float = 0.05 * MSEC
    #: Generic hypercall entry/exit overhead.
    hypercall_base: float = 2.0 * USEC

    # ------------------------------------------------------------------
    # Hypervisor: memory
    # ------------------------------------------------------------------
    #: Allocating one machine frame (populate_physmap, batched).
    page_alloc: float = 2.0 * USEC
    #: Freeing one machine frame.
    page_free: float = 1.0 * USEC
    #: memcpy of one 4 KiB page (~4 GB/s on the testbed's DDR3).
    page_copy: float = 1.0 * USEC
    #: Writing one page-table entry while building a fresh page table.
    pt_entry_build: float = 0.02 * USEC
    #: Extra cost of cloning one page-table entry for a child over a
    #: plain build (walk parent PT, validate, rewrite mfn). Calibrated
    #: with p2m_entry_clone and pt_entry_build from Fig 6: the second
    #: clone of a 4 GiB guest (1 M pages) takes 79.2 ms of which ~75 ms
    #: is per-page => ~72 ns per page total (build + PT-clone extra +
    #: p2m-clone extra).
    pt_entry_clone: float = 0.026 * USEC
    #: Extra cost of cloning one p2m entry (rebuild with new mfns).
    p2m_entry_clone: float = 0.026 * USEC
    #: Copying one PTE on process fork (Linux baseline). Fig 6: the second
    #: fork of a 4 GiB process takes 65.2 ms => 62 ns/page.
    fork_pte_copy: float = 0.0622 * USEC
    #: Marking one parent page read-only/COW on *first* fork.
    fork_cow_mark: float = 0.09 * USEC
    #: Fixed cost of fork() (syscall, task struct). Fig 6: second fork of
    #: a small process is 0.07 ms (fixed cost + a few hundred PTEs).
    fork_base: float = 0.055 * MSEC
    #: Transferring ownership of one page to dom_cow and marking it
    #: read-only during first-stage cloning (only pages not yet shared).
    share_page: float = 0.06 * USEC
    #: Handling one COW write fault: allocate + copy + remap.
    cow_fault: float = 3.0 * USEC
    #: COW "unshare to sole owner" fast path (refcount dropped to 1).
    cow_adopt: float = 1.0 * USEC

    # ------------------------------------------------------------------
    # Hypervisor: grants, events, cloning plumbing
    # ------------------------------------------------------------------
    #: Copying one grant-table entry to a child.
    grant_entry_clone: float = 0.05 * USEC
    #: Granting / mapping / ending access to one page.
    grant_op: float = 0.8 * USEC
    #: Creating or binding one event channel.
    evtchn_op: float = 0.6 * USEC
    #: Sending an event notification (hypercall + vIRQ injection).
    evtchn_send: float = 1.2 * USEC
    #: Hypervisor-side fixed cost of CLONEOP clone (arg checks, struct
    #: domain copy). Together with the per-page terms this keeps the
    #: first stage at ~1 ms for a 4 MiB guest (paper §6.1: "the first
    #: stage ... takes only 1 ms").
    clone_first_stage_fixed: float = 0.8 * MSEC
    #: Per-child coordination overhead around the two stages:
    #: notification push + VIRQ_CLONED wakeup + completion hypercall +
    #: parent/child pause/unpause. Calibrated so the small-guest second
    #: clone of Fig 6 lands at ~4.1 ms (1.9 ms of which is userspace).
    clone_coordination: float = 1.0 * MSEC
    #: Restoring one dirty page during CLONEOP clone_reset (fuzzing).
    #: Paper §7.2: resetting Unikraft (avg 3 dirty pages) takes ~125 us
    #: and Linux (avg 8 dirty pages) ~250 us => ~30 us/page + fixed.
    clone_reset_per_page: float = 30.0 * USEC
    #: Fixed cost of a clone_reset call.
    clone_reset_fixed: float = 35.0 * USEC
    #: clone_cow explicit COW trigger, per page (fuzzer breakpoints).
    clone_cow_per_page: float = 4.0 * USEC
    #: Fixed rollback cost of unwinding one failed clone child (scrub +
    #: CLONE_FAILED hypercall handling). Failure paths only: never
    #: charged when no fault fires.
    clone_abort_fixed: float = 0.5 * MSEC
    #: Base backoff before re-raising a lost VIRQ_CLONED wake-up
    #: (doubles per retry). Failure paths only.
    clone_virq_retry_backoff: float = 0.1 * MSEC

    # ------------------------------------------------------------------
    # Xenstore
    # ------------------------------------------------------------------
    #: Fixed cost of one Xenstore request (socket roundtrip to
    #: oxenstored, parsing, reply). Calibrated from Fig 6's "userspace
    #: operations": the mandatory second stage issues ~4 requests and
    #: costs 1.9 ms once the parent info is cached.
    xs_request_base: float = 0.45 * MSEC
    #: Store-size-dependent component of a request: oxenstored working
    #: set grows with the number of nodes. Calibrated from Fig 4's boot
    #: growth: +140 ms over 1000 instances with ~44 requests/boot and
    #: ~45 nodes/instance => 7e-5 ms per node per request.
    xs_request_per_node: float = 7.5e-5 * MSEC
    #: Server-side per-node copy cost inside one xs_clone request (much
    #: cheaper than one request per node, which is the whole point of
    #: xs_clone, Fig 4 series "clone + XS deep copy" vs "clone").
    xs_clone_per_node: float = 0.008 * MSEC
    #: Extra fixed cost of an xs_clone request over a plain request.
    xs_clone_base: float = 0.25 * MSEC
    #: Firing one watch callback.
    xs_watch_fire: float = 0.05 * MSEC
    #: Client-side base backoff before retrying a conflicted (EAGAIN)
    #: transaction commit (doubles per attempt). Failure paths only.
    xs_txn_retry_backoff: float = 0.2 * MSEC
    #: Bytes appended to the Xenstore access log per request.
    xs_log_bytes_per_request: int = 120
    #: Access-log rotation threshold. Calibrated so cloning 1000 guests
    #: with xs_clone rotates twice (paper §6.1: "the number of spikes
    #: drops to only 2") while booting 1000 guests rotates ~20 times.
    xs_log_rotate_bytes: int = 448 * 1024
    #: Cost of one access-log rotation: the Fig 4 spikes.
    xs_log_rotate_cost: float = 500.0 * MSEC
    #: Approximate resident bytes oxenstored spends per store node
    #: (paper §6.2: oxenstored needed up to 350 MB for ~8900 guests with
    #: ~45 nodes each => ~900 B/node).
    xs_node_resident_bytes: int = 900

    # ------------------------------------------------------------------
    # Toolstack (xl / libxl / xencloned)
    # ------------------------------------------------------------------
    #: Scanning one existing domain name during xl's uniqueness check
    #: (the superlinear LightVM effect; disabled for Fig 4's baseline).
    xl_name_check_per_domain: float = 0.3 * MSEC
    #: Fixed xl create overhead (config parse, libxl init).
    xl_create_fixed: float = 4.0 * MSEC
    #: Loading one page of the kernel image from the Dom0 ramdisk.
    image_load_per_page: float = 5.0 * USEC
    #: xl save: writing one page to the image.
    save_per_page: float = 10.0 * USEC
    #: xl restore: fixed overhead (image open, header parse).
    restore_fixed: float = 20.0 * MSEC
    #: xl restore: kernel/device resume work after memory population.
    restore_resume_fixed: float = 60.0 * MSEC
    #: xl restore: reading + populating one page from the image ("the
    #: entire allocated VM memory is copied back from the image into the
    #: machine memory", Fig 4: restore sits 20-30 ms above boot).
    restore_per_page: float = 40.0 * USEC
    #: Handling one udev event in xencloned.
    udev_dispatch: float = 0.3 * MSEC
    #: Per-node CPU work of the pre-Nephele deep copy in xencloned
    #: (read parent entry, rewrite domid references, format the write).
    #: Calibrated so a deep-copy clone starts at ~40 ms in Fig 4.
    xencloned_deep_copy_per_node: float = 0.35 * MSEC

    # ------------------------------------------------------------------
    # Devices / Dom0 backends
    # ------------------------------------------------------------------
    #: One frontend/backend negotiation state transition (Xenstore write
    #: + watch wakeup + driver work). Regular init walks ~7 states on
    #: each end; cloning skips this entirely (paper §5.2.1).
    xenbus_negotiation_step: float = 1.0 * MSEC
    #: Creating the netback device state for a new vif.
    vif_backend_create: float = 6.0 * MSEC
    #: The 14-LoC cloning shortcut in netback: create state + mark
    #: connected, no negotiation.
    vif_backend_clone: float = 3.0 * MSEC
    #: Attaching a vif to a bridge / enslaving to a bond or OVS group
    #: (the hotplug script path; LightVM found it expensive).
    switch_attach: float = 8.0 * MSEC
    #: Console backend (qemu) state creation.
    console_backend_create: float = 1.5 * MSEC
    #: 9pfs backend: QMP clone request handling, plus per-fid below.
    p9_qmp_clone_fixed: float = 1.2 * MSEC
    #: Duplicating one fid during 9pfs clone.
    p9_clone_per_fid: float = 15.0 * USEC
    #: Launching a new 9pfs backend process (per-clone-process policy).
    p9_process_launch: float = 45.0 * MSEC
    #: 9pfs write throughput, per byte (ramdisk-backed, ~200 MB/s
    #: including protocol overhead) -> 5 ns/B.
    p9_write_per_byte: float = 5.0e-6 * MSEC
    #: 9pfs per-request protocol overhead.
    p9_request_base: float = 30.0 * USEC

    # ------------------------------------------------------------------
    # Guests
    # ------------------------------------------------------------------
    #: Mini-OS/Unikraft kernel boot after the toolstack hands over
    #: (early init, memory init, lwip up). Part of the Fig 4 boot floor.
    guest_boot_fixed: float = 108.0 * MSEC
    #: Linux VM (Alpine) boot, for the Redis baseline setup.
    linux_vm_boot: float = 4000.0 * MSEC
    #: Guest application touching a fresh page (allocator + zeroing).
    guest_touch_page: float = 0.4 * USEC
    #: Sending one packet through the PV network path (grant + evtchn +
    #: backend switch).
    net_tx_packet: float = 12.0 * USEC

    # ------------------------------------------------------------------
    # Fleet control plane (repro.fleet; the paper is single-host, so
    # these anchor to published LAN numbers instead: every constant is
    # a small multiple of FLEET_LAN_RTT (the ~0.5 ms intra-datacenter
    # round trip of Dean & Barroso, "The Tail at Scale", CACM 2013 —
    # the same figure as the canonical latency tables), with the
    # failure-detection shape following SWIM (Das et al., DSN 2002):
    # liveness probing is cheap one-way traffic, declaring death costs
    # a confirmation round. docs/CALIBRATION.md derives each one;
    # tests/test_calibration_docs.py pins the derivations.
    # ------------------------------------------------------------------
    #: One heartbeat probe of one host: a UDP liveness datagram on the
    #: rack-local path, ~RTT/10 (intra-rack one-way ≈ 25-50 us).
    fleet_heartbeat_poll: float = FLEET_LAN_RTT / 10
    #: Forwarding one clone request to a non-source host: request +
    #: response plus the target's domain-image metadata lookup — four
    #: round trips, squarely at published intra-DC RPC medians (~2 ms).
    fleet_forward_rpc: float = 4 * FLEET_LAN_RTT
    #: Base backoff before re-placing a clone request after a host
    #: failure (doubles per retry; failure paths only): ten round
    #: trips, long enough to outlast transient congestion.
    fleet_replace_backoff: float = 10 * FLEET_LAN_RTT
    #: Fixed cost of declaring a host dead once its heartbeat timeout
    #: expires: one SWIM-style confirmation probe round plus the state
    #: fan-out write — two round trips.
    fleet_detect_fixed: float = 2 * FLEET_LAN_RTT
    #: Fencing one guest domain on an unreachable (partitioned) host —
    #: one STONITH control message per guest, ~4 heartbeat probes.
    fleet_fence_per_domain: float = 4 * (FLEET_LAN_RTT / 10)
    #: Latency penalty per operation routed to a degraded (grey) host:
    #: the two extra round trips of retrying through its backlog.
    fleet_degraded_penalty: float = 2 * FLEET_LAN_RTT

    # ------------------------------------------------------------------
    # Live warm migration (repro.fleet.migration). Anchored to
    # MIGRATION_WIRE_PAGE (10 GbE line rate, ~3.28 us per 4 KiB page)
    # and FLEET_LAN_RTT; the dirty-rate anchor reuses the paper's §7.2
    # per-request dirty-page counts. docs/MIGRATION.md derives the
    # cost model; docs/CALIBRATION.md pins the derivations via
    # tests/test_calibration_docs.py (same contract as fleet_*).
    # ------------------------------------------------------------------
    #: Streaming one page of guest memory source -> target during a
    #: pre-copy round or the post-copy background stream: the wire
    #: anchor itself (copies overlap the wire at line rate).
    migration_page_stream: float = MIGRATION_WIRE_PAGE
    #: Per-round fixed cost: dirty-bitmap scan handshake plus stream
    #: framing — two round trips on the fleet network.
    migration_round_fixed: float = 2 * FLEET_LAN_RTT
    #: The stop-and-copy cutover window floor: pause, ship the final
    #: dirty set (charged per page on top), resume on the target and
    #: switch the family's routing — four round trips, the same budget
    #: as one forwarded clone RPC.
    migration_cutover_fixed: float = 4 * FLEET_LAN_RTT
    #: Serving one post-copy demand fault: a synchronous page request
    #: blocking the guest for a full round trip plus the page's wire
    #: time (vs. ~3.3 us when the page arrived ahead of the fault —
    #: the post-copy tax docs/MIGRATION.md quantifies).
    migration_postcopy_fault: float = FLEET_LAN_RTT + MIGRATION_WIRE_PAGE
    #: Re-binding one COW-shared page of a migrated clone against the
    #: replica already resident on the target (the ship-delta path):
    #: a grant-style remap, no page body on the wire — 1/16 of the
    #: wire cost, i.e. a ~16-byte descriptor instead of 4 KiB.
    migration_remap_shared_page: float = MIGRATION_WIRE_PAGE / 16
    #: Guest dirty rate while a migration round streams, in pages per
    #: virtual ms. Anchor: paper §7.2 measures ~3 dirty pages per
    #: serviced request for Unikraft guests; at the front door's
    #: ~1 request/ms per-replica service rate that is ~3 pages/ms.
    migration_dirty_rate_pages_per_ms: float = 3.0

    # ------------------------------------------------------------------
    # Front-door overload resilience (repro.frontdoor.resilience).
    # Anchored to FLEET_LAN_RTT like the rest of the fleet control
    # plane; docs/RESILIENCE.md derives the policy defaults and
    # docs/CALIBRATION.md pins the derivations via
    # tests/test_calibration_docs.py (same contract as fleet_*).
    # ------------------------------------------------------------------
    #: Base delay before the first client-side retry of a failed or
    #: timed-out request (doubled per attempt, jittered). Four round
    #: trips — the same budget as one forwarded clone RPC, so a retry
    #: is never cheaper than the forwarding it replaces.
    frontdoor_retry_backoff_base: float = 4 * FLEET_LAN_RTT
    #: How long an open circuit breaker keeps a replica out of the
    #: routing set before probing it half-open: 20 round trips, i.e.
    #: two replace-backoff windows — long enough for a draining or
    #: degraded replica to shed its backlog, short enough to readmit
    #: within one heartbeat interval.
    frontdoor_breaker_cooldown: float = 20 * FLEET_LAN_RTT

    # ------------------------------------------------------------------
    # Memory sizes (bytes) used by the platform model
    # ------------------------------------------------------------------
    #: Xen's minimum domain memory (paper §6.2: "the mandatory limit of
    #: minimum 4 MB of memory that Xen imposes on any domain").
    xen_min_domain_bytes: int = 4 * 1024 * 1024
    #: Hypervisor bookkeeping per booted domain (struct domain, shadow,
    #: frame-table slack). Fig 5: 12 GiB hosts 2800 booted 4 MiB guests
    #: => ~0.38 MiB/guest of overhead.
    hyp_per_domain_overhead_pages: int = 96
    #: Extra hypervisor bookkeeping for a clone is smaller: most of the
    #: struct-domain-adjacent allocations are shared or small. Fig 5:
    #: 12 GiB hosts ~8900 clones at ~1.4 MiB of private memory each.
    hyp_per_clone_overhead_pages: int = 24
    #: Dom0 resident bytes per guest for backend state (netback, qemu
    #: console, udev, OpenFaaS-side bookkeeping excluded). Fig 5: Dom0's
    #: 4 GiB declines at the same rate for boot and clone and approaches
    #: exhaustion around 9000 instances => ~0.45 MB/instance including
    #: oxenstored growth.
    dom0_backend_bytes_per_guest: int = 330 * 1024

    # Free-form per-experiment overrides live with the experiment code,
    # not here; everything above is shared platform calibration.
    extras: dict = field(default_factory=dict)

    def scaled(self, factor: float) -> "CostModel":
        """Return a copy with all *time* costs scaled by ``factor``.

        Useful for sensitivity/ablation runs ("what if the testbed were
        2x slower"). Sizes and byte counts are left untouched.
        """
        clone = CostModel(**{f.name: getattr(self, f.name)
                             for f in fields(self) if f.name != "extras"})
        for f in fields(clone):
            name = f.name
            if name == "extras" or name.endswith("_bytes") or name.endswith("_pages"):
                continue
            if name.endswith("_bytes_per_request") or name.endswith("_per_guest"):
                continue
            # Rates are not durations: a 2x-slower testbed does not
            # dirty pages 2x faster.
            if name.endswith("_pages_per_ms"):
                continue
            value = getattr(clone, name)
            if isinstance(value, float):
                setattr(clone, name, value * factor)
        clone.extras = dict(self.extras)
        return clone
