"""Virtual clock.

The clock only moves forward. Components call :meth:`VirtualClock.charge`
to account for the cost of an operation, or :meth:`VirtualClock.advance_to`
when an event engine jumps to the next scheduled event.
"""

from __future__ import annotations

from repro.errors import ReproError


class ClockError(ReproError):
    """Raised on attempts to move the clock backwards."""


class VirtualClock:
    """Monotonic virtual clock, in milliseconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    def charge(self, cost_ms: float) -> float:
        """Advance the clock by ``cost_ms`` and return the new time.

        Negative costs are rejected: virtual time is monotonic.
        """
        if cost_ms < 0:
            raise ClockError(f"negative cost: {cost_ms}")
        self._now += cost_ms
        return self._now

    def advance_to(self, t_ms: float) -> float:
        """Jump the clock forward to absolute time ``t_ms``."""
        if t_ms < self._now:
            raise ClockError(f"cannot rewind clock from {self._now} to {t_ms}")
        self._now = t_ms
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.3f}ms)"
