"""Sorted, coalescing integer interval set.

Used for dirty-page tracking: guests may touch millions of pages, so
per-page sets are too heavy; runs of pages coalesce into intervals.
"""

from __future__ import annotations

import bisect
from typing import Iterator


class IntervalSet:
    """Set of non-overlapping half-open integer intervals ``[start, end)``."""

    def __init__(self) -> None:
        self._starts: list[int] = []
        self._ends: list[int] = []
        self._count = 0

    @property
    def count(self) -> int:
        """Total number of integers covered."""
        return self._count

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def add(self, start: int, length: int = 1) -> int:
        """Add ``[start, start+length)``; returns how many were newly added."""
        if length <= 0:
            return 0
        end = start + length
        # Find all intervals overlapping or adjacent to [start, end).
        lo = bisect.bisect_left(self._ends, start)
        # Fast path: the range sits entirely inside one existing
        # interval — the steady state for repeated writes to the same
        # buffer (IDC areas, clone COW touches). No list surgery.
        if (lo < len(self._starts) and self._starts[lo] <= start
                and end <= self._ends[lo]):
            return 0
        hi = bisect.bisect_right(self._starts, end)
        new_start, new_end = start, end
        removed = 0
        for i in range(lo, hi):
            new_start = min(new_start, self._starts[i])
            new_end = max(new_end, self._ends[i])
            removed += self._ends[i] - self._starts[i]
        del self._starts[lo:hi]
        del self._ends[lo:hi]
        self._starts.insert(lo, new_start)
        self._ends.insert(lo, new_end)
        added = (new_end - new_start) - removed
        self._count += added
        return added

    def contains(self, value: int) -> bool:
        """Is ``value`` covered by any interval?"""
        i = bisect.bisect_right(self._starts, value) - 1
        return i >= 0 and value < self._ends[i]

    def overlap(self, start: int, length: int) -> int:
        """How many integers of ``[start, start+length)`` are covered."""
        if length <= 0:
            return 0
        end = start + length
        total = 0
        i = bisect.bisect_right(self._starts, start) - 1
        if i < 0:
            i = 0
        while i < len(self._starts) and self._starts[i] < end:
            lo = max(self._starts[i], start)
            hi = min(self._ends[i], end)
            if hi > lo:
                total += hi - lo
            i += 1
        return total

    def clear(self) -> None:
        """Drop every interval."""
        self._starts.clear()
        self._ends.clear()
        self._count = 0

    def __iter__(self) -> Iterator[tuple[int, int]]:
        """Yield ``(start, end)`` pairs in ascending order."""
        return iter(zip(self._starts, self._ends))
