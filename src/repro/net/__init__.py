"""Layer-2/3 network substrate in Dom0.

Hardware NICs are multiplexed for guests by software switches in Dom0
(paper §3). For clones — which keep the parent's MAC and IP — Nephele
aggregates the family's vifs behind either a Linux bond in balance-xor
mode with the layer3+4 transmit hash policy, or an Open vSwitch select
group (paper §5.2.1).
"""

from repro.net.bond import BondInterface
from repro.net.bridge import Bridge
from repro.net.ovs import OvsGroup
from repro.net.packets import Flow, Packet

__all__ = ["Packet", "Flow", "Bridge", "BondInterface", "OvsGroup"]
