"""Packets and flows."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class Flow:
    """The 5-tuple-ish key used by layer3+4 hashing."""

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    proto: str = "udp"


@dataclass
class Packet:
    src_mac: str
    dst_mac: str
    flow: Flow
    payload: Any = None
    size: int = 64

    @property
    def src_ip(self) -> str:
        return self.flow.src_ip

    @property
    def dst_ip(self) -> str:
        return self.flow.dst_ip


class Port:
    """A switch port: anything with a ``deliver(packet)`` method and a MAC.

    ``accepts`` is an optional cheap pre-filter: switches flooding a
    packet may skip ``deliver`` entirely when ``accepts(packet)`` is
    false, so endpoints never build RX state for traffic they would
    drop anyway. ``None`` means "deliver everything" (the default).

    Contract: ``accepts`` must be a pure function of the packet's flow
    *destination* (``dst_ip``, ``dst_port``, ``proto``) and of endpoint
    state whose changes are signalled through :meth:`touch`. Switches
    rely on this to cache flood-acceptance decisions per destination.
    """

    def __init__(self, name: str, mac: str, deliver, accepts=None) -> None:
        self.name = name
        self.mac = mac
        self.deliver = deliver
        self.accepts = accepts
        #: Switches this port is attached to that cache acceptance
        #: decisions (maintained by their attach/detach).
        self.switches: list = []

    def touch(self) -> None:
        """Signal that this port's ``accepts`` inputs changed (a socket
        was bound/unbound, a listener added, ...): attached switches
        drop their cached flood-acceptance decisions."""
        for switch in self.switches:
            switch.filters_changed(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Port({self.name} mac={self.mac})"
