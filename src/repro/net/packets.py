"""Packets and flows."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True)
class Flow:
    """The 5-tuple-ish key used by layer3+4 hashing."""

    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int
    proto: str = "udp"


@dataclass
class Packet:
    src_mac: str
    dst_mac: str
    flow: Flow
    payload: Any = None
    size: int = 64

    @property
    def src_ip(self) -> str:
        return self.flow.src_ip

    @property
    def dst_ip(self) -> str:
        return self.flow.dst_ip


class Port:
    """A switch port: anything with a ``deliver(packet)`` method and a MAC."""

    def __init__(self, name: str, mac: str, deliver) -> None:
        self.name = name
        self.mac = mac
        self.deliver = deliver

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Port({self.name} mac={self.mac})"
