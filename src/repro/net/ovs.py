"""Open vSwitch select groups.

The paper's second clone-switching option (§5.2.1): vanilla OVS selects
group buckets by hashing, but the selection logic can be extended with
stateful criteria. ``OvsGroup`` takes an optional selector callback for
exactly that.
"""

from __future__ import annotations

from typing import Callable

from repro.net.bond import layer34_hash
from repro.net.packets import Flow, Packet, Port

Selector = Callable[[Flow, list[Port]], Port]


class OvsGroup:
    """A select-type OVS group over clone vifs."""

    def __init__(self, group_id: int = 1,
                 selector: Selector | None = None) -> None:
        self.group_id = group_id
        #: Insertion-ordered membership (see BondInterface): O(1)
        #: add/remove, lazily rebuilt snapshot for hash selection.
        self._buckets: dict[Port, None] = {}
        self._selection: tuple[Port, ...] | None = None
        self.selector = selector
        self.tx_per_bucket: dict[str, int] = {}
        #: Stateful flow table: flows pinned to a bucket (used by custom
        #: selectors wanting stickiness).
        self.flow_table: dict[Flow, Port] = {}

    @property
    def buckets(self) -> list[Port]:
        """The select-group buckets, in add order."""
        return list(self._buckets)

    def add_bucket(self, port: Port) -> None:
        """Add a select-group bucket."""
        self._buckets[port] = None
        self._selection = None
        self.tx_per_bucket.setdefault(port.name, 0)

    def remove_bucket(self, port: Port) -> None:
        """Remove a bucket and unpin its flows."""
        if port in self._buckets:
            del self._buckets[port]
            self._selection = None
        if self.flow_table:
            self.flow_table = {
                flow: bucket for flow, bucket in self.flow_table.items()
                if bucket is not port
            }

    def select_bucket(self, flow: Flow) -> Port:
        """Pick the bucket: custom selector, else the layer3+4 hash."""
        selection = self._selection
        if selection is None:
            selection = self._selection = tuple(self._buckets)
        if not selection:
            raise RuntimeError(f"OVS group {self.group_id} has no buckets")
        if self.selector is not None:
            return self.selector(flow, list(selection))
        return selection[layer34_hash(flow) % len(selection)]

    def forward(self, packet: Packet, ingress: Port | None = None) -> int:
        """Deliver towards the guests through the selected bucket."""
        bucket = self.select_bucket(packet.flow)
        self.tx_per_bucket[bucket.name] = self.tx_per_bucket.get(bucket.name, 0) + 1
        accepts = bucket.accepts
        if accepts is not None and not accepts(packet):
            return 0
        bucket.deliver(packet)
        return 1

    def pin_flow(self, flow: Flow, port: Port) -> None:
        """Stateful extension point: pin a flow to a bucket."""
        self.flow_table[flow] = port


def sticky_selector(group: "OvsGroup") -> Selector:
    """A stateful selector: first packet of a flow hashes, later packets
    stick to the same bucket even as buckets are added."""

    def select(flow: Flow, buckets: list[Port]) -> Port:
        pinned = group.flow_table.get(flow)
        if pinned is not None and pinned in buckets:
            return pinned
        choice = buckets[layer34_hash(flow) % len(buckets)]
        group.flow_table[flow] = choice
        return choice

    return select
