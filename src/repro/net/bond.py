"""Linux bonding driver, balance-xor mode with layer3+4 hashing.

This is the stateless switching solution the paper uses for clone vifs:
all slaves carry identical MAC and IP addresses and the bond picks the
slave by hashing IP addresses and port values (paper §6.1). The hash
below mirrors the kernel's layer3+4 ``bond_xmit_hash``: XOR of the IP
words and the port pair, modulo the slave count.
"""

from __future__ import annotations

from repro.net.packets import Flow, Packet, Port


def _ip_word(ip: str) -> int:
    total = 0
    for part in ip.split("."):
        total = (total << 8) | (int(part) & 0xFF)
    return total


def layer34_hash(flow: Flow) -> int:
    """The bonding driver's layer3+4 transmit hash."""
    ports = (flow.src_port ^ flow.dst_port) & 0xFFFF
    ips = _ip_word(flow.src_ip) ^ _ip_word(flow.dst_ip)
    value = ports ^ ips ^ (ips >> 16)
    value ^= value >> 8
    return value


class BondInterface:
    """A bond master aggregating clone vifs (identical MAC/IP slaves)."""

    def __init__(self, name: str = "bond0") -> None:
        self.name = name
        #: Insertion-ordered membership (dict keyed by the Port object):
        #: O(1) enslave/release, stable hash order for selection.
        self._slaves: dict[Port, None] = {}
        #: Indexable snapshot for hash selection, rebuilt lazily after
        #: membership changes (so a teardown of N slaves is O(N), not
        #: O(N^2) of repeated ``list.remove``).
        self._selection: tuple[Port, ...] | None = None
        self.tx_per_slave: dict[str, int] = {}

    @property
    def slaves(self) -> list[Port]:
        """The enslaved ports, in enslave order."""
        return list(self._slaves)

    def enslave(self, port: Port) -> None:
        """Add a slave interface (identical MAC/IP to its siblings)."""
        self._slaves[port] = None
        self._selection = None
        self.tx_per_slave.setdefault(port.name, 0)

    def release(self, port: Port) -> None:
        """Remove a slave."""
        if port in self._slaves:
            del self._slaves[port]
            self._selection = None

    def select_slave(self, flow: Flow) -> Port:
        """balance-xor: pick the slave by the layer3+4 hash."""
        selection = self._selection
        if selection is None:
            selection = self._selection = tuple(self._slaves)
        if not selection:
            raise RuntimeError(f"bond {self.name} has no slaves")
        return selection[layer34_hash(flow) % len(selection)]

    def forward(self, packet: Packet, ingress: Port | None = None) -> int:
        """Deliver towards the guests: pick a slave by flow hash."""
        slave = self.select_slave(packet.flow)
        self.tx_per_slave[slave.name] = self.tx_per_slave.get(slave.name, 0) + 1
        accepts = slave.accepts
        if accepts is not None and not accepts(packet):
            return 0
        slave.deliver(packet)
        return 1

    def distribution(self) -> dict[str, int]:
        """Packets sent per slave - used to study load-balance skew."""
        return dict(self.tx_per_slave)
