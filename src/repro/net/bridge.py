"""Learning bridge (Dom0's default vif multiplexer)."""

from __future__ import annotations

from repro.net.packets import Packet, Port


class Bridge:
    """MAC-learning software bridge."""

    def __init__(self, name: str = "xenbr0") -> None:
        self.name = name
        self.ports: list[Port] = []
        self._mac_table: dict[str, Port] = {}
        self.forwarded = 0
        self.flooded = 0

    def attach(self, port: Port) -> None:
        """Plug a port in and learn its MAC."""
        self.ports.append(port)
        self._mac_table[port.mac] = port

    def detach(self, port: Port) -> None:
        """Unplug a port and forget its MAC."""
        if port in self.ports:
            self.ports.remove(port)
        if self._mac_table.get(port.mac) is port:
            del self._mac_table[port.mac]

    def forward(self, packet: Packet, ingress: Port | None = None) -> int:
        """Forward a packet; returns the number of ports it reached."""
        target = self._mac_table.get(packet.dst_mac)
        if target is not None and target is not ingress:
            self.forwarded += 1
            target.deliver(packet)
            return 1
        # Unknown destination: flood.
        reached = 0
        for port in self.ports:
            if port is not ingress:
                port.deliver(packet)
                reached += 1
        self.flooded += 1
        return reached
