"""Learning bridge (Dom0's default vif multiplexer)."""

from __future__ import annotations

from repro.net.packets import Packet, Port
from repro.obs.tracer import NULL_TRACER


class Bridge:
    """MAC-learning software bridge.

    Host-side cost is O(1) per packet in the steady state: source MACs
    are learned from forwarded traffic (not just at :meth:`attach`),
    ports live in an insertion-ordered dict so :meth:`detach` is O(1),
    and flood delivery consults a per-destination acceptance cache (fed
    by each port's cheap ``accepts`` pre-filter) instead of evaluating
    every port for every packet. Cache entries are maintained
    incrementally on attach/detach and dropped when an endpoint signals
    a filter change through :meth:`Port.touch`.
    """

    def __init__(self, name: str = "xenbr0", tracer=None) -> None:
        self.name = name
        #: Insertion-ordered port set (dict keyed by the Port object
        #: itself): O(1) attach/detach, stable flood order.
        self.ports: dict[Port, None] = {}
        self._mac_table: dict[str, Port] = {}
        #: (dst_ip, dst_port, proto) -> (probe packet, accepting ports
        #: in attach order). The probe re-evaluates newly attached ports.
        self._flood_cache: dict[tuple, tuple[Packet, list[Port]]] = {}
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.forwarded = 0
        self.flooded = 0
        #: Flood deliveries suppressed by port pre-filters.
        self.flood_filtered = 0

    def attach(self, port: Port) -> None:
        """Plug a port in and learn its MAC."""
        self.ports[port] = None
        self._mac_table[port.mac] = port
        if self not in port.switches:
            port.switches.append(self)
        for probe, accepting in self._flood_cache.values():
            accepts = port.accepts
            if accepts is None or accepts(probe):
                accepting.append(port)

    def detach(self, port: Port) -> None:
        """Unplug a port and forget its MAC."""
        if port in self.ports:
            del self.ports[port]
        if self._mac_table.get(port.mac) is port:
            del self._mac_table[port.mac]
        if self in port.switches:
            port.switches.remove(self)
        for _probe, accepting in self._flood_cache.values():
            if port in accepting:
                accepting.remove(port)

    def filters_changed(self, port: Port | None = None) -> None:
        """A port's ``accepts`` inputs changed: fix up cached decisions.

        With a specific port the cached entries are repaired in place
        (each probe packet is re-evaluated against just that port), so a
        guest binding a socket costs O(cached destinations), not an
        O(ports) rebuild on the next flood.
        """
        if port is None:
            self._flood_cache.clear()
            return
        attached = port in self.ports
        for probe, accepting in self._flood_cache.values():
            accepts = port.accepts
            wants = attached and (accepts is None or accepts(probe))
            present = port in accepting
            if wants and not present:
                accepting.append(port)
            elif present and not wants:
                accepting.remove(port)

    def _learn(self, packet: Packet, ingress: Port | None) -> None:
        # Learn the source MAC from forwarded traffic, like a real
        # bridge: a re-attached port regains its table entry on its
        # first transmission, not only at attach time.
        if ingress is not None and self._mac_table.get(packet.src_mac) is not ingress:
            self._mac_table[packet.src_mac] = ingress

    def forward(self, packet: Packet, ingress: Port | None = None) -> int:
        """Forward a packet; returns the number of ports it reached."""
        self._learn(packet, ingress)
        target = self._mac_table.get(packet.dst_mac)
        if target is not None and target is not ingress:
            if target in self.ports:
                self.forwarded += 1
                self.tracer.count("net.bridge.forwarded")
                target.deliver(packet)
                return 1
            # Stale entry (port detached without transmitting since):
            # drop it and fall through to the flood path.
            del self._mac_table[packet.dst_mac]
        # Unknown/broadcast destination: flood through the acceptance
        # cache. Deliveries can re-plumb the bridge (a packet triggering
        # a clone detaches the parent's port into the family
        # aggregation), so iterate a snapshot and skip ports detached
        # mid-flood.
        flow = packet.flow
        key = (flow.dst_ip, flow.dst_port, flow.proto)
        cached = self._flood_cache.get(key)
        if cached is None:
            accepting = []
            for port in self.ports:
                accepts = port.accepts
                if accepts is None or accepts(packet):
                    accepting.append(port)
            self._flood_cache[key] = (packet, accepting)
        else:
            accepting = cached[1]
        ports = self.ports
        reached = 0
        for port in list(accepting):
            if port is ingress or port not in ports:
                continue
            port.deliver(packet)
            reached += 1
        self.flooded += 1
        self.forwarded += 1
        filtered = len(ports) - reached - (1 if ingress in ports else 0)
        if filtered > 0:
            self.flood_filtered += filtered
        tracer = self.tracer
        if tracer.enabled:
            tracer.count("net.bridge.forwarded")
            tracer.count("net.bridge.flooded")
            if reached:
                tracer.count("net.bridge.flood_deliveries", reached)
            if filtered > 0:
                tracer.count("net.bridge.flood_filtered", filtered)
        return reached

    @property
    def flood_ratio(self) -> float:
        """Fraction of forwarded packets that had to be flooded."""
        return self.flooded / self.forwarded if self.forwarded else 0.0
