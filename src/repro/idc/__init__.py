"""Inter-domain communication (IDC).

Nephele's replacement for IPC between related processes (paper §4.3):
shared memory granted with the ``DOMID_CHILD`` wildcard plus event
channels for notifications, composed into anonymous pipes and socket
pairs — the two mechanisms the paper's target applications use.
"""

from repro.idc.channel import IdcChannel
from repro.idc.mqueue import MessageQueue, MqueueError
from repro.idc.pipe import Pipe, PipeClosedError, PipeEnd
from repro.idc.shm import IdcSharedArea
from repro.idc.socketpair import SocketPair
from repro.idc.sync import IdcBarrier, IdcSemaphore

__all__ = [
    "IdcSharedArea",
    "IdcChannel",
    "Pipe",
    "PipeEnd",
    "PipeClosedError",
    "SocketPair",
    "MessageQueue",
    "MqueueError",
    "IdcSemaphore",
    "IdcBarrier",
]
