"""IDC notification channels.

An event channel bound to ``DOMID_CHILD``: clones are implicitly
connected at creation (paper §5.2.2). Notifications fan out to every
peer except the sender.
"""

from __future__ import annotations

from typing import Callable

from repro.xen.domid import DOMID_CHILD
from repro.xen.domain import Domain
from repro.xen.hypervisor import Hypervisor

Notification = Callable[[int], None]


class IdcChannel:
    """One IDC notification channel of a family."""

    def __init__(self, hypervisor: Hypervisor, owner: Domain) -> None:
        self.hypervisor = hypervisor
        self.owner = owner
        self.channel = owner.events.alloc_unbound(DOMID_CHILD)
        hypervisor.clock.charge(hypervisor.costs.evtchn_op)

    @property
    def port(self) -> int:
        return self.channel.port

    def set_handler(self, domain: Domain, handler: Notification) -> None:
        """Install the wakeup handler on ``domain``'s endpoint."""
        domain.events.set_handler(self.port, handler)

    def notify(self, sender: Domain) -> int:
        """Send from ``sender``'s endpoint; returns peers notified."""
        return self.hypervisor.send_event(sender.domid, self.port)
