"""IDC message queue (a POSIX mq_* analogue for clone families).

One of the paper's extension scenarios (§5.3): new IDC mechanisms
compose the same two primitives as pipes — a shared-memory area granted
with DOMID_CHILD and an event-channel notification — so a message queue
follows the pipe implementation closely, adding message boundaries and
priorities.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.errors import ReproError
from repro.idc.channel import IdcChannel
from repro.idc.shm import IdcSharedArea
from repro.sim.units import PAGE_SIZE
from repro.xen.domain import Domain
from repro.xen.hypervisor import Hypervisor

#: Default queue: 16 pages of shared buffer.
MQ_PAGES = 16

MessageHandler = Callable[[bytes, int], None]  # (payload, priority)


class MqueueError(ReproError):
    """Queue misuse: full, oversized message, or empty receive."""


#: Heap entries are plain tuples ``(-priority, seq, payload, priority)``:
#: the unique ``seq`` breaks priority ties before the payload is ever
#: compared, and tuple ordering stays entirely in C.


class MessageQueue:
    """Bounded priority message queue shared across a clone family."""

    def __init__(self, hypervisor: Hypervisor, owner: Domain,
                 npages: int = MQ_PAGES, max_messages: int = 64) -> None:
        self.hypervisor = hypervisor
        self.area = IdcSharedArea(hypervisor, owner, npages, label="mqueue")
        self.channel = IdcChannel(hypervisor, owner)
        self.capacity_bytes = npages * PAGE_SIZE
        self.max_messages = max_messages
        self._heap: list[tuple[int, int, bytes, int]] = []
        self._seq = itertools.count()
        self.buffered_bytes = 0
        self._receivers: dict[int, MessageHandler] = {}

    def __len__(self) -> int:
        return len(self._heap)

    # ------------------------------------------------------------------
    def send(self, sender: Domain, payload: bytes, priority: int = 0) -> None:
        """mq_send: enqueue and notify the family (higher priority first)."""
        if len(self._heap) >= self.max_messages:
            raise MqueueError(f"queue full ({self.max_messages} messages)")
        if self.buffered_bytes + len(payload) > self.capacity_bytes:
            raise MqueueError(
                f"message of {len(payload)} B exceeds remaining buffer "
                f"({self.capacity_bytes - self.buffered_bytes} B)")
        self.area.write(sender, len(payload))
        heapq.heappush(self._heap,
                       (-priority, next(self._seq), payload, priority))
        self.buffered_bytes += len(payload)
        self.channel.notify(sender)
        if self._receivers:
            self._wake(exclude=sender.domid)

    def receive(self, receiver: Domain) -> tuple[bytes, int]:
        """mq_receive: dequeue the highest-priority message."""
        if not self._heap:
            raise MqueueError("queue empty")
        entry = heapq.heappop(self._heap)
        payload = entry[2]
        self.buffered_bytes -= len(payload)
        return payload, entry[3]

    def try_receive(self, receiver: Domain) -> tuple[bytes, int] | None:
        """Non-blocking receive: None when the queue is empty."""
        if not self._heap:
            return None
        return self.receive(receiver)

    def on_message(self, domain: Domain, handler: MessageHandler) -> None:
        """Asynchronous delivery for ``domain`` (event-channel wakeups)."""
        self._receivers[domain.domid] = handler

    def _wake(self, exclude: int) -> None:
        for domid, handler in list(self._receivers.items()):
            if domid == exclude:
                continue
            message = self.try_receive(self.hypervisor.get_domain(domid))
            if message is None:
                return
            handler(*message)
