"""IDC shared memory areas.

A parent allocates pages, grants them to ``DOMID_CHILD`` and shares
them with the family; at the hypervisor level ownership moves to
dom_cow but the pages remain writable by every family member (paper
§5.2.2).
"""

from __future__ import annotations

from repro.sim.units import pages_of
from repro.xen.domid import DOMID_CHILD
from repro.xen.domain import Domain
from repro.xen.frames import PageType
from repro.xen.hypervisor import Hypervisor


class IdcSharedArea:
    """Family-shared writable memory region."""

    def __init__(self, hypervisor: Hypervisor, owner: Domain,
                 npages: int, label: str = "idc") -> None:
        self.hypervisor = hypervisor
        self.owner = owner
        self.npages = npages
        if owner.guest is not None and owner.guest.heap_npages:
            # Carve the area out of the guest heap (tinyalloc chunk,
            # retyped so the clone engine treats it as IDC memory).
            # Touching first matters when the owner is itself a clone
            # parent: the write COWs the pages back to private before
            # they are re-shared family-writable.
            from repro.sim.units import PAGE_SIZE

            region = owner.guest.api.alloc(npages * PAGE_SIZE, touch=True)
            self.segment = owner.memory.retype_range(
                region.pfn_start, npages, PageType.IDC_SHM, label=label)
        else:
            self.segment = owner.populate_ram(npages, PageType.IDC_SHM,
                                              label=label)
            hypervisor.clock.charge(hypervisor.costs.page_alloc * npages)
        #: One grant per page, to DOMID_CHILD.
        self.grefs = [
            owner.grants.grant_access(DOMID_CHILD, self.segment.pfn_start + i)
            for i in range(npages)
        ]
        hypervisor.clock.charge(hypervisor.costs.grant_op * npages)
        # Share immediately: ownership -> dom_cow, writable by the family.
        hypervisor.frames.share_to_cow(self.segment.extent)
        hypervisor.clock.charge(hypervisor.costs.share_page * npages)

    @property
    def pfn_start(self) -> int:
        return self.segment.pfn_start

    def map_into(self, domain: Domain) -> None:
        """A family member maps the area (validates the grants)."""
        for gref in self.grefs:
            self.hypervisor.map_grant(self.owner.domid, gref, domain.domid)

    def write(self, writer: Domain, nbytes: int) -> None:
        """Account a write by a family member; shared-writable, no COW."""
        pages = min(self.npages, max(1, pages_of(nbytes)))
        stats = writer.memory.write_range(self.segment.pfn_start, pages) \
            if writer is self.owner else None
        # Non-owner writers touch via their grant mapping; either way the
        # write must not COW.
        if stats is not None and stats.copied:
            raise AssertionError("IDC area was COWed on write")
        self.hypervisor.clock.charge(
            self.hypervisor.costs.guest_touch_page * pages)
