"""Anonymous pipes over IDC.

A pipe is a byte ring in an IDC shared area plus an IDC notification
channel. Like POSIX pipes, it is created before forking; after the
clone both family members hold both ends and close the one they do not
use. Unlike Kylinx — where IPC is initialized asynchronously after
fork() returns — the pipe is usable the instant the clone completes
(paper §8, comparison with Kylinx).
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.errors import ReproError
from repro.idc.channel import IdcChannel
from repro.idc.shm import IdcSharedArea
from repro.sim.units import PAGE_SIZE
from repro.xen.domain import Domain
from repro.xen.hypervisor import Hypervisor

#: Default pipe buffer: 16 pages, like Linux.
PIPE_PAGES = 16

DataHandler = Callable[[bytes], None]


class PipeClosedError(ReproError):
    """Operation on a closed or wrong-direction pipe end."""


class Pipe:
    """The shared pipe object (physically: shared pages + channel)."""

    def __init__(self, hypervisor: Hypervisor, owner: Domain,
                 npages: int = PIPE_PAGES) -> None:
        self.hypervisor = hypervisor
        self.area = IdcSharedArea(hypervisor, owner, npages, label="pipe")
        self.channel = IdcChannel(hypervisor, owner)
        self.capacity = npages * PAGE_SIZE
        self.buffer: deque[bytes] = deque()
        self.buffered_bytes = 0
        self.write_closed: set[int] = set()
        self.read_closed: set[int] = set()
        #: Registered data callbacks per domid (reader wakeups).
        self._readers: dict[int, DataHandler] = {}

    def read_end(self, domain: Domain) -> "PipeEnd":
        """``domain``'s read end of the pipe."""
        return PipeEnd(self, domain, readable=True, writable=False)

    def write_end(self, domain: Domain) -> "PipeEnd":
        """``domain``'s write end of the pipe."""
        return PipeEnd(self, domain, readable=False, writable=True)

    # ------------------------------------------------------------------
    def _write(self, writer: Domain, data: bytes) -> int:
        if writer.domid in self.write_closed:
            raise PipeClosedError(f"write end closed in domain {writer.domid}")
        accepted = min(len(data), self.capacity - self.buffered_bytes)
        if accepted <= 0:
            return 0
        chunk = data[:accepted]
        self.area.write(writer, accepted)
        self.buffer.append(chunk)
        self.buffered_bytes += accepted
        self.channel.notify(writer)
        self._wake_readers(exclude=writer.domid)
        return accepted

    def _read(self, reader: Domain, max_bytes: int | None = None) -> bytes:
        if reader.domid in self.read_closed:
            raise PipeClosedError(f"read end closed in domain {reader.domid}")
        out = bytearray()
        budget = self.buffered_bytes if max_bytes is None else max_bytes
        while self.buffer and budget > 0:
            chunk = self.buffer[0]
            if len(chunk) <= budget:
                out.extend(chunk)
                budget -= len(chunk)
                self.buffer.popleft()
            else:
                out.extend(chunk[:budget])
                self.buffer[0] = chunk[budget:]
                budget = 0
        self.buffered_bytes -= len(out)
        return bytes(out)

    def _wake_readers(self, exclude: int) -> None:
        for domid, handler in list(self._readers.items()):
            if domid == exclude or domid in self.read_closed:
                continue
            data = self._read(self.hypervisor.get_domain(domid))
            if data:
                handler(data)

    def on_data(self, domain: Domain, handler: DataHandler) -> None:
        """Register an asynchronous reader callback for ``domain``."""
        self._readers[domain.domid] = handler


class PipeEnd:
    """One direction of a pipe, held by one domain."""

    def __init__(self, pipe: Pipe, domain: Domain, readable: bool,
                 writable: bool) -> None:
        self.pipe = pipe
        self.domain = domain
        self.readable = readable
        self.writable = writable
        self.closed = False

    def write(self, data: bytes) -> int:
        """Write; returns bytes accepted (bounded by pipe capacity)."""
        if self.closed or not self.writable:
            raise PipeClosedError("not a writable open end")
        return self.pipe._write(self.domain, data)

    def read(self, max_bytes: int | None = None) -> bytes:
        """Read up to ``max_bytes`` (everything buffered by default)."""
        if self.closed or not self.readable:
            raise PipeClosedError("not a readable open end")
        return self.pipe._read(self.domain, max_bytes)

    def close(self) -> None:
        """Close this end for its holder."""
        self.closed = True
        if self.writable:
            self.pipe.write_closed.add(self.domain.domid)
        if self.readable:
            self.pipe.read_closed.add(self.domain.domid)
            self.pipe._readers.pop(self.domain.domid, None)
