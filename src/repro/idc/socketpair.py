"""Socket pairs over IDC: two pipes, one per direction."""

from __future__ import annotations

from repro.idc.pipe import Pipe, PipeEnd
from repro.xen.domain import Domain
from repro.xen.hypervisor import Hypervisor


class SocketEnd:
    """One endpoint of a socket pair (bidirectional)."""

    def __init__(self, rx: PipeEnd, tx: PipeEnd) -> None:
        self._rx = rx
        self._tx = tx

    def send(self, data: bytes) -> int:
        """Send towards the peer; returns bytes accepted."""
        return self._tx.write(data)

    def recv(self, max_bytes: int | None = None) -> bytes:
        """Receive buffered bytes from the peer."""
        return self._rx.read(max_bytes)

    def on_data(self, handler) -> None:
        """Register an asynchronous receive callback."""
        self._rx.pipe.on_data(self._rx.domain, handler)

    def close(self) -> None:
        """Close both directions of this endpoint."""
        self._rx.close()
        self._tx.close()


class SocketPair:
    """An AF_UNIX-style socket pair usable across a clone family.

    Created before forking; ``end_for(domain, role)`` hands each family
    member its endpoint after the clone.
    """

    def __init__(self, hypervisor: Hypervisor, owner: Domain) -> None:
        self.hypervisor = hypervisor
        self.owner = owner
        self._a_to_b = Pipe(hypervisor, owner)
        self._b_to_a = Pipe(hypervisor, owner)

    def end_a(self, domain: Domain) -> SocketEnd:
        """Endpoint A, held by ``domain``."""
        return SocketEnd(rx=self._b_to_a.read_end(domain),
                         tx=self._a_to_b.write_end(domain))

    def end_b(self, domain: Domain) -> SocketEnd:
        """Endpoint B, held by ``domain``."""
        return SocketEnd(rx=self._a_to_b.read_end(domain),
                         tx=self._b_to_a.write_end(domain))
