"""IDC synchronization: semaphore and barrier for clone families.

Further §5.3-style mechanisms over shared memory + event channels. The
counter lives in a one-page IDC shared area; waiters park on the
family event channel and are woken in FIFO order.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.idc.channel import IdcChannel
from repro.idc.shm import IdcSharedArea
from repro.xen.domain import Domain
from repro.xen.hypervisor import Hypervisor

Continuation = Callable[[], None]


class IdcSemaphore:
    """Counting semaphore shared across a clone family.

    The simulation has no blocking threads, so ``wait`` takes a
    continuation invoked when the semaphore is acquired (immediately if
    the count allows, or when a ``post`` releases it).
    """

    def __init__(self, hypervisor: Hypervisor, owner: Domain,
                 initial: int = 1) -> None:
        if initial < 0:
            raise ValueError(f"negative initial count: {initial}")
        self.hypervisor = hypervisor
        self.area = IdcSharedArea(hypervisor, owner, 1, label="semaphore")
        self.channel = IdcChannel(hypervisor, owner)
        self.count = initial
        self._waiters: deque[tuple[int, Continuation]] = deque()

    def wait(self, domain: Domain, continuation: Continuation) -> bool:
        """P(): returns True if acquired immediately."""
        if self.count > 0:
            self.count -= 1
            self.area.write(domain, 8)
            continuation()
            return True
        self._waiters.append((domain.domid, continuation))
        return False

    def post(self, domain: Domain) -> None:
        """V(): wake the oldest waiter, if any."""
        self.area.write(domain, 8)
        if self._waiters:
            _, continuation = self._waiters.popleft()
            self.channel.notify(domain)
            continuation()
        else:
            self.count += 1

    @property
    def waiters(self) -> int:
        return len(self._waiters)


class IdcBarrier:
    """A single-use barrier: releases everyone once ``parties`` arrive."""

    def __init__(self, hypervisor: Hypervisor, owner: Domain,
                 parties: int) -> None:
        if parties < 1:
            raise ValueError(f"barrier needs at least one party: {parties}")
        self.hypervisor = hypervisor
        self.area = IdcSharedArea(hypervisor, owner, 1, label="barrier")
        self.channel = IdcChannel(hypervisor, owner)
        self.parties = parties
        self.arrived = 0
        self.released = False
        self._continuations: list[Continuation] = []

    def arrive(self, domain: Domain,
               continuation: Continuation | None = None) -> bool:
        """Arrive at the barrier; returns True once it releases."""
        if self.released:
            raise RuntimeError("barrier already released (single-use)")
        self.arrived += 1
        self.area.write(domain, 8)
        if continuation is not None:
            self._continuations.append(continuation)
        if self.arrived >= self.parties:
            self.released = True
            self.channel.notify(domain)
            for waiting in self._continuations:
                waiting()
            self._continuations.clear()
            return True
        return False
