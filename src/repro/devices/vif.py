"""Paravirtualized network device (netfront / netback).

Clone policy (paper §4.2): both rings are *copied* — TX entries are
tied to pending requests that must be serviced in both parent and
child, and RX entries are preallocated by the guest and may contain
allocator metadata (as in Unikraft's netfront). The preallocated RX
buffers are the dominant private memory of a clone: "1 MB is used for
the RX network ring alone" (paper §6.2).

The netback cloning shortcut corresponds to the 14 lines the paper adds
to the Linux netback driver: create the device state and mark it
connected, skipping negotiation.
"""

from __future__ import annotations

from typing import Callable

from repro.devices.rings import SharedRing
from repro.devices.udev import UdevBus, UdevEvent
from repro.devices.xenbus import XenbusState, negotiate
from repro.net.packets import Packet, Port
from repro.obs.tracer import NULL_TRACER
from repro.sim import CostModel, VirtualClock
from repro.xen.domain import Domain
from repro.xen.frames import PageType
from repro.xenstore.client import XsHandle

#: Preallocated guest RX buffers: 256 pages = 1 MiB (paper §6.2).
RX_BUFFER_PAGES = 256
#: TX buffer pool.
TX_BUFFER_PAGES = 32
#: One page per ring.
RING_PAGES = 1

PacketHandler = Callable[[Packet], None]


def vif_frontend_path(domid: int, index: int) -> str:
    """Xenstore directory of a guest's vif frontend."""
    return f"/local/domain/{domid}/device/vif/{index}"


def vif_backend_path(domid: int, index: int) -> str:
    """Xenstore directory of a guest's vif backend."""
    return f"/local/domain/0/backend/vif/{domid}/{index}"


class NetFrontend:
    """Guest-side network device."""

    device_class = "vif"

    def __init__(self, domain: Domain, index: int, mac: str, ip: str) -> None:
        self.domain = domain
        self.index = index
        self.mac = mac
        self.ip = ip
        self.tx_ring = SharedRing(domain, RING_PAGES, f"vif{index}-tx")
        self.rx_ring = SharedRing(domain, RING_PAGES, f"vif{index}-rx")
        self.rx_buffers = domain.populate_ram(
            RX_BUFFER_PAGES, PageType.RX_BUFFER, label=f"vif{index}-rxbuf")
        self.tx_buffers = domain.populate_ram(
            TX_BUFFER_PAGES, PageType.IO_RING, label=f"vif{index}-txbuf")
        self.rx_handler: PacketHandler | None = None
        #: Optional cheap RX-interest predicate installed by the guest
        #: kernel; switches flooding a packet consult it (through the
        #: backend port's ``accepts``) before delivering, so no RX-ring
        #: state is built for packets the guest would drop anyway.
        self.rx_filter: Callable[[Packet], bool] | None = None
        self.backend: "NetBackend | None" = None
        self.tx_count = 0
        self.rx_count = 0
        domain.frontends.setdefault("vif", []).append(self)

    @property
    def private_pages(self) -> int:
        """Pages that must be copied for a clone of this device."""
        return (self.tx_ring.npages + self.rx_ring.npages
                + self.rx_buffers.npages + self.tx_buffers.npages)

    def transmit(self, packet: Packet) -> None:
        """Guest TX: ring -> netback -> switch."""
        if self.backend is None or not self.backend.connected:
            raise RuntimeError(
                f"vif{self.domain.domid}.{self.index} transmit before connect")
        self.tx_ring.push(packet)
        self.tx_count += 1
        self.backend.from_guest(self.tx_ring.pop())

    def receive(self, packet: Packet) -> None:
        """Backend RX delivery into the guest.

        With a handler attached and no preallocated entries in flight,
        the packet is handed over directly - the ring round-trip is
        elided (same FIFO semantics, no per-packet deque churn).
        """
        self.rx_count += 1
        handler = self.rx_handler
        if handler is None:
            self.rx_ring.push(packet)
            return
        if self.rx_ring.entries:
            self.rx_ring.push(packet)
            handler(self.rx_ring.pop())
        else:
            handler(packet)

    def clone_for(self, child: Domain) -> "NetFrontend":
        """Child-side device state: rings and buffers copied (paper §4.2)."""
        clone = NetFrontend.__new__(NetFrontend)
        clone.domain = child
        clone.index = self.index
        clone.mac = self.mac  # identical MAC and IP (paper §5.2.1)
        clone.ip = self.ip
        clone.tx_ring = self.tx_ring.clone_for(child, copy_contents=True)
        clone.rx_ring = self.rx_ring.clone_for(child, copy_contents=True)
        clone.rx_buffers = child.populate_ram(
            self.rx_buffers.npages, PageType.RX_BUFFER,
            label=f"vif{self.index}-rxbuf")
        clone.tx_buffers = child.populate_ram(
            self.tx_buffers.npages, PageType.IO_RING,
            label=f"vif{self.index}-txbuf")
        clone.rx_handler = None
        clone.rx_filter = None
        clone.backend = None
        clone.tx_count = 0
        clone.rx_count = 0
        child.frontends.setdefault("vif", []).append(clone)
        return clone


class NetBackend:
    """Dom0-side vif state (netback)."""

    def __init__(self, domid: int, index: int, mac: str, ip: str) -> None:
        self.domid = domid
        self.index = index
        self.mac = mac
        self.ip = ip
        self.name = f"vif{domid}.{index}"
        self.connected = False
        self.frontend: NetFrontend | None = None
        #: The switch (bridge/bond/OVS) this vif hangs off, set by the
        #: hotplug/udev stage; must expose ``forward(packet, ingress)``.
        self.switch = None
        self.port = Port(self.name, mac, self._to_guest,
                         accepts=self._accepts)

    def attach_switch(self, switch) -> None:
        """Set the Dom0 switch used for outbound traffic."""
        self.switch = switch

    def from_guest(self, packet: Packet) -> None:
        """Forward a guest TX packet into the Dom0 fabric."""
        if self.switch is None:
            raise RuntimeError(f"{self.name} has no switch attached")
        self.switch.forward(packet, ingress=self.port)

    def _to_guest(self, packet: Packet) -> None:
        if self.frontend is not None:
            self.frontend.receive(packet)

    def _accepts(self, packet: Packet) -> bool:
        """Flood pre-filter: would delivering this packet have any
        effect? False exactly when :meth:`_to_guest` would build RX
        state only for the guest to drop the packet."""
        frontend = self.frontend
        if frontend is None:
            return False
        rx_filter = frontend.rx_filter
        return rx_filter is None or rx_filter(packet)


class NetBackendDriver:
    """The netback driver: watches the backend vif directory.

    Booting devices negotiate; cloned devices (whose entries appear
    already CONNECTED, written by xs_clone) take the shortcut path.
    """

    def __init__(self, handle: XsHandle, clock: VirtualClock, costs: CostModel,
                 udev: UdevBus,
                 domain_resolver: Callable[[int], Domain],
                 tracer=None) -> None:
        self.handle = handle
        self.clock = clock
        self.costs = costs
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.udev = udev
        self.resolver = domain_resolver
        self.backends: dict[tuple[int, int], NetBackend] = {}
        handle.watch("/local/domain/0/backend/vif", "netback", self._on_watch)

    def _on_watch(self, path: str, token: str) -> None:
        parts = path.split("/")
        # /local/domain/0/backend/vif/<domid>[/<index>[/...]]
        if len(parts) < 7:
            return
        try:
            domid = int(parts[6])
        except ValueError:
            return
        if len(parts) >= 8:
            try:
                indices = [int(parts[7])]
            except ValueError:
                return
        else:
            # Fired on the domain directory itself (xs_clone writes the
            # whole subtree in one request): scan its device indices.
            try:
                indices = [int(i) for i in
                           self.handle.daemon.directory(path)]
            except Exception:
                return
        for index in indices:
            self._try_device(domid, index)

    def _try_device(self, domid: int, index: int) -> None:
        key = (domid, index)
        if key in self.backends:
            return
        base = vif_backend_path(domid, index)
        daemon = self.handle.daemon
        if not daemon.exists(f"{base}/state"):
            return  # entries still being written
        state = XenbusState(int(daemon.read_node(f"{base}/state")))
        mac = daemon.read_node(f"{base}/mac")
        ip = daemon.read_node(f"{base}/ip")
        backend = NetBackend(domid, index, mac, ip)
        self.backends[key] = backend
        if state is XenbusState.CONNECTED:
            self._clone_shortcut(backend)
        else:
            self._boot_connect(backend)

    def _boot_connect(self, backend: NetBackend) -> None:
        with self.tracer.span("vif.boot_connect", vif=backend.name):
            self.clock.charge(self.costs.vif_backend_create)
            negotiate(self.handle, self.clock, self.costs,
                      vif_frontend_path(backend.domid, backend.index),
                      vif_backend_path(backend.domid, backend.index))
            self._finish_connect(backend, cloned=False)

    def _clone_shortcut(self, backend: NetBackend) -> None:
        """The 14-LoC Nephele path: connect without negotiation."""
        with self.tracer.span("vif.clone_shortcut", vif=backend.name):
            self.clock.charge(self.costs.vif_backend_clone)
            self._finish_connect(backend, cloned=True)

    def _finish_connect(self, backend: NetBackend, cloned: bool) -> None:
        self.tracer.count("vif.cloned" if cloned else "vif.booted")
        backend.connected = True
        domain = self.resolver(backend.domid)
        for frontend in domain.frontends.get("vif", []):
            if frontend.index == backend.index:
                frontend.backend = backend
                backend.frontend = frontend
                # The port's acceptance just changed (no frontend ->
                # guest filter): drop any cached switch decisions.
                backend.port.touch()
                break
        self.udev.emit(UdevEvent(
            action="add", subsystem="net", name=backend.name,
            properties={"domid": backend.domid, "index": backend.index,
                        "cloned": cloned},
        ))

    def remove(self, domid: int) -> None:
        """Tear down a (destroyed) guest's vifs, emitting udev removes.

        The remove event carries the vif's IP and port so listeners
        managing aggregation switches (clone-family bonds / OVS groups)
        can release the slave — ports of dead guests must not stay in
        the selection set.
        """
        for key in [k for k in self.backends if k[0] == domid]:
            backend = self.backends.pop(key)
            if backend.switch is not None and hasattr(backend.switch, "detach"):
                backend.switch.detach(backend.port)
            self.udev.emit(UdevEvent(
                action="remove", subsystem="net", name=backend.name,
                properties={"domid": domid, "index": backend.index,
                            "ip": backend.ip, "port": backend.port},
            ))


def write_vif_entries(handle: XsHandle, domid: int, index: int, mac: str,
                      ip: str, state: XenbusState,
                      bridge: str = "xenbr0") -> None:
    """Write the frontend and backend vif entries (state node last, so the
    netback watch sees a complete directory)."""
    front = vif_frontend_path(domid, index)
    back = vif_backend_path(domid, index)
    handle.write(f"{front}/backend", back)
    handle.write(f"{front}/backend-id", "0")
    handle.write(f"{front}/mac", mac)
    handle.write(f"{front}/state", str(int(state)))
    handle.write(f"{back}/frontend", front)
    handle.write(f"{back}/frontend-id", str(domid))
    handle.write(f"{back}/mac", mac)
    handle.write(f"{back}/ip", ip)
    handle.write(f"{back}/bridge", bridge)
    handle.write(f"{back}/online", "1")
    handle.write(f"{back}/state", str(int(state)))
