"""Shared rings between frontend and backend drivers.

Rings are guest pages granted to the backend. On cloning, Nephele
decides per device type whether a clone's ring is copied from the
parent (network: contents are tied to in-flight guest state) or created
fresh (console: duplicating the parent's output would hinder debugging)
— paper §4.2.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.xen.domain import Domain
from repro.xen.frames import PageType


class SharedRing:
    """One shared ring: guest pages plus in-flight entries."""

    def __init__(self, domain: Domain, npages: int, label: str,
                 page_type: PageType = PageType.IO_RING) -> None:
        self.domain = domain
        self.npages = npages
        self.label = label
        self.page_type = page_type
        self.extent = domain.populate_ram(npages, page_type, label=label)
        self.entries: deque[Any] = deque()

    def push(self, entry: Any) -> None:
        """Producer side: enqueue an entry."""
        self.entries.append(entry)

    def pop(self) -> Any:
        """Consumer side: dequeue the oldest entry."""
        return self.entries.popleft()

    def __len__(self) -> int:
        return len(self.entries)

    def clone_for(self, child: Domain, copy_contents: bool) -> "SharedRing":
        """Create the clone's ring.

        ``copy_contents=True`` replicates in-flight entries (network
        rings); ``False`` yields an empty ring (console).
        """
        ring = SharedRing(child, self.npages, self.label, self.page_type)
        if copy_contents:
            ring.entries = deque(self.entries)
        return ring
