"""9pfs filesystem device.

The 9pfs backend runs as a qemu process in Dom0 and keeps a table of
fids (file IDs) for all open files, analogous to a process's descriptor
table (paper §5.2.1). For cloning, Nephele extends the QEMU Machine
Protocol (QMP) so xencloned can ask a backend to clone a parent's fid
table. Two policies exist; the paper adopts the shared process:

- ``SHARED_PROCESS``: the parent's backend process serves all clones
  (adopted: launching one process per clone "stresses the limits of the
  host system when reaching a high density of clones").
- ``PROCESS_PER_CLONE``: a fresh backend process per clone, with the
  fid table propagated (kept as an ablation).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass

from repro.errors import ReproError
from repro.devices.hostfs import HostFS
from repro.devices.xenbus import negotiate
from repro.obs.tracer import NULL_TRACER
from repro.sim import CostModel, VirtualClock
from repro.xen.domain import Domain
from repro.xenstore.client import XsHandle


class P9BackendPolicy(enum.Enum):
    """How 9pfs backends serve clones (paper §5.2.1)."""

    SHARED_PROCESS = "shared-process"
    PROCESS_PER_CLONE = "process-per-clone"


class P9Error(ReproError):
    """9p protocol error (bad fid, unattached guest, ENOENT)."""


def p9_frontend_path(domid: int, index: int = 0) -> str:
    """Xenstore directory of a guest's 9pfs frontend."""
    return f"/local/domain/{domid}/device/9pfs/{index}"


def p9_backend_path(domid: int, index: int = 0) -> str:
    """Xenstore directory of a guest's 9pfs backend."""
    return f"/local/domain/0/backend/9pfs/{domid}/{index}"


@dataclass
class Fid:
    fid: int
    path: str
    mode: str = "rw"
    offset: int = 0


class P9BackendProcess:
    """One qemu 9pfs backend process in Dom0."""

    #: Resident memory of an idle backend process.
    BASE_RESIDENT_BYTES = 6 * 1024 * 1024
    PER_FID_BYTES = 512

    _pids = itertools.count(1000)

    def __init__(self, export_root: str, hostfs: HostFS, clock: VirtualClock,
                 costs: CostModel) -> None:
        self.pid = next(P9BackendProcess._pids)
        self.export_root = export_root
        self.hostfs = hostfs
        self.clock = clock
        self.costs = costs
        #: fid tables per served guest: domid -> {fid -> Fid}.
        self.fids: dict[int, dict[int, Fid]] = {}
        self._next_fid: dict[int, itertools.count] = {}
        self.requests_served = 0

    # ------------------------------------------------------------------
    # 9p protocol (abridged: attach / open / read / write / clunk)
    # ------------------------------------------------------------------
    def attach(self, domid: int) -> None:
        """T_ATTACH: start serving a guest (fresh fid table)."""
        self.fids.setdefault(domid, {})
        self._next_fid.setdefault(domid, itertools.count(1))

    def detach(self, domid: int) -> None:
        """Stop serving a guest; drop its fids."""
        self.fids.pop(domid, None)
        self._next_fid.pop(domid, None)

    def serves(self, domid: int) -> bool:
        """Is ``domid`` attached to this process?"""
        return domid in self.fids

    def _charge(self, nbytes: int = 0) -> None:
        self.requests_served += 1
        self.clock.charge(self.costs.p9_request_base
                          + self.costs.p9_write_per_byte * nbytes)

    def _table(self, domid: int) -> dict[int, Fid]:
        table = self.fids.get(domid)
        if table is None:
            raise P9Error(f"domain {domid} not attached to backend {self.pid}")
        return table

    def open(self, domid: int, path: str, mode: str = "rw",
             create: bool = False) -> int:
        """T_WALK + T_OPEN: returns a fresh fid."""
        self._charge()
        table = self._table(domid)
        full = f"{self.export_root}{path}"
        if not self.hostfs.exists(full):
            if not create:
                raise P9Error(f"ENOENT: {path}")
            self.hostfs.create(full)
        fid = next(self._next_fid[domid])
        table[fid] = Fid(fid=fid, path=full, mode=mode)
        return fid

    def write(self, domid: int, fid: int, nbytes: int) -> int:
        """T_WRITE at the fid's offset; returns the new file size."""
        self._charge(nbytes)
        entry = self._table(domid).get(fid)
        if entry is None:
            raise P9Error(f"bad fid {fid} for domain {domid}")
        if "w" not in entry.mode:
            raise P9Error(f"fid {fid} not open for writing")
        entry.offset += nbytes
        return self.hostfs.write(entry.path, nbytes)

    def read(self, domid: int, fid: int, nbytes: int) -> int:
        """T_READ; returns bytes actually read (EOF-clamped)."""
        self._charge(nbytes)
        entry = self._table(domid).get(fid)
        if entry is None:
            raise P9Error(f"bad fid {fid} for domain {domid}")
        size = self.hostfs.size(entry.path)
        available = max(0, size - entry.offset)
        got = min(nbytes, available)
        entry.offset += got
        return got

    def clunk(self, domid: int, fid: int) -> None:
        """T_CLUNK: close a fid."""
        self._charge()
        self._table(domid).pop(fid, None)

    def open_fids(self, domid: int) -> int:
        """Open fid count for one guest."""
        return len(self.fids.get(domid, {}))

    # ------------------------------------------------------------------
    # QMP extension: cloning
    # ------------------------------------------------------------------
    def qmp_clone(self, parent_domid: int, child_domid: int) -> int:
        """Clone the parent's fid table for the child (same process).

        Returns the number of fids duplicated.
        """
        parent_table = self._table(parent_domid)
        self.attach(child_domid)
        child_table = self.fids[child_domid]
        for fid, entry in parent_table.items():
            child_table[fid] = Fid(fid=entry.fid, path=entry.path,
                                   mode=entry.mode, offset=entry.offset)
        if parent_table:
            top = max(parent_table)
            self._next_fid[child_domid] = itertools.count(top + 1)
        self.clock.charge(self.costs.p9_qmp_clone_fixed
                          + self.costs.p9_clone_per_fid * len(parent_table))
        return len(parent_table)

    def resident_bytes(self) -> int:
        """Dom0 resident memory of this backend process."""
        open_fids = sum(len(t) for t in self.fids.values())
        return self.BASE_RESIDENT_BYTES + self.PER_FID_BYTES * open_fids


class P9Frontend:
    """Guest-side 9pfs mount."""

    device_class = "9pfs"

    def __init__(self, domain: Domain, tag: str, mount_point: str,
                 index: int = 0) -> None:
        self.domain = domain
        self.tag = tag
        self.mount_point = mount_point
        self.index = index
        self.backend_process: P9BackendProcess | None = None
        domain.frontends.setdefault("9pfs", []).append(self)

    def _process(self) -> P9BackendProcess:
        if self.backend_process is None:
            raise P9Error(
                f"9pfs {self.tag} of domain {self.domain.domid} not connected")
        return self.backend_process

    def open(self, path: str, mode: str = "rw", create: bool = False) -> int:
        """Open a file on the share; returns a fid."""
        return self._process().open(self.domain.domid, path, mode, create)

    def write(self, fid: int, nbytes: int) -> int:
        """Write through the mount."""
        return self._process().write(self.domain.domid, fid, nbytes)

    def read(self, fid: int, nbytes: int) -> int:
        """Read through the mount."""
        return self._process().read(self.domain.domid, fid, nbytes)

    def close(self, fid: int) -> None:
        """Close a fid."""
        self._process().clunk(self.domain.domid, fid)

    def clone_for(self, child: Domain) -> "P9Frontend":
        """Child-side mount; the backend process is reattached by the
        9pfs service during second-stage cloning."""
        clone = P9Frontend(child, self.tag, self.mount_point, self.index)
        return clone


class P9Service:
    """Toolstack-side management of 9pfs backends."""

    def __init__(self, handle: XsHandle, clock: VirtualClock, costs: CostModel,
                 hostfs: HostFS,
                 policy: P9BackendPolicy = P9BackendPolicy.SHARED_PROCESS,
                 tracer=None) -> None:
        self.handle = handle
        self.clock = clock
        self.costs = costs
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.hostfs = hostfs
        self.policy = policy
        #: domid -> backend process serving it.
        self.processes: dict[int, P9BackendProcess] = {}

    def process_for(self, domid: int) -> P9BackendProcess:
        """The backend process serving ``domid``."""
        process = self.processes.get(domid)
        if process is None:
            raise P9Error(f"no 9pfs backend serves domain {domid}")
        return process

    def boot_setup(self, domain: Domain, tag: str, export_root: str,
                   mount_point: str) -> P9Frontend:
        """Regular instantiation: xl launches a backend process for the
        guest and the device negotiates (paper §4: "on booting, xl
        launches the 9pfs filesystem backend as a process for each new
        guest")."""
        with self.tracer.span("p9.boot_setup", domid=domain.domid, tag=tag):
            self.clock.charge(self.costs.p9_process_launch)
            if not self.hostfs.is_dir(export_root):
                self.hostfs.mkdir(export_root)
            process = P9BackendProcess(export_root, self.hostfs, self.clock,
                                       self.costs)
            process.attach(domain.domid)
            self.processes[domain.domid] = process
            frontend = P9Frontend(domain, tag, mount_point)
            frontend.backend_process = process
            front = p9_frontend_path(domain.domid)
            back = p9_backend_path(domain.domid)
            self.handle.write(f"{front}/tag", tag)
            self.handle.write(f"{front}/backend", back)
            self.handle.write(f"{back}/frontend", front)
            self.handle.write(f"{back}/path", export_root)
            self.handle.write(f"{back}/security_model", "none")
            negotiate(self.handle, self.clock, self.costs, front, back)
            return frontend

    def clone(self, parent_domid: int, child_domid: int) -> int:
        """Second-stage 9pfs cloning via the QMP extension. Returns the
        number of fids cloned."""
        with self.tracer.span("p9.qmp_clone", parent=parent_domid,
                              child=child_domid) as span:
            parent_process = self.process_for(parent_domid)
            if self.policy is P9BackendPolicy.SHARED_PROCESS:
                cloned = parent_process.qmp_clone(parent_domid, child_domid)
                self.processes[child_domid] = parent_process
            else:
                self.clock.charge(self.costs.p9_process_launch)
                process = P9BackendProcess(parent_process.export_root,
                                           self.hostfs, self.clock, self.costs)
                process.attach(child_domid)
                # Propagate the parent's fid table into the new process.
                parent_table = parent_process.fids.get(parent_domid, {})
                for fid, entry in parent_table.items():
                    process.fids[child_domid][fid] = Fid(
                        fid=entry.fid, path=entry.path, mode=entry.mode,
                        offset=entry.offset)
                self.clock.charge(
                    self.costs.p9_qmp_clone_fixed
                    + self.costs.p9_clone_per_fid * len(parent_table))
                self.processes[child_domid] = process
                cloned = len(parent_table)
            span.set(fids=cloned)
        return cloned

    def connect_clone_frontend(self, child: Domain) -> None:
        """Point the child's 9pfs frontends at their backend process."""
        for frontend in child.frontends.get("9pfs", []):
            frontend.backend_process = self.processes.get(child.domid)

    def remove(self, domid: int) -> None:
        """Detach a (destroyed) guest from its backend."""
        process = self.processes.pop(domid, None)
        if process is not None:
            process.detach(domid)

    def dom0_resident_bytes(self) -> int:
        """Total Dom0 memory of all distinct backend processes."""
        unique = {id(p): p for p in self.processes.values()}
        return sum(p.resident_bytes() for p in unique.values())
