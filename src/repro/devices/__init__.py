"""Paravirtualized split drivers.

Xen's split-device model (paper §3): each device is a frontend in the
guest and a backend in Dom0, discovering each other through Xenstore
and exchanging data over shared rings. Nephele teaches each supported
backend (console, vif, 9pfs) to clone its per-guest state, skipping the
frontend/backend negotiation entirely (paper §5.2.1).
"""

from repro.devices.console import ConsoleBackendDaemon, ConsoleFrontend
from repro.devices.p9 import P9BackendPolicy, P9BackendProcess, P9Frontend, P9Service
from repro.devices.rings import SharedRing
from repro.devices.udev import UdevBus, UdevEvent
from repro.devices.vif import NetBackend, NetBackendDriver, NetFrontend
from repro.devices.xenbus import XenbusState

__all__ = [
    "XenbusState",
    "SharedRing",
    "ConsoleFrontend",
    "ConsoleBackendDaemon",
    "NetFrontend",
    "NetBackend",
    "NetBackendDriver",
    "P9Frontend",
    "P9BackendProcess",
    "P9BackendPolicy",
    "P9Service",
    "UdevBus",
    "UdevEvent",
]
