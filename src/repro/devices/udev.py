"""udev event bus.

When the netback driver creates a virtual interface, the kernel emits a
udev event; Nephele's xencloned subscribes and finishes the userspace
part of device setup (paper §4, step 2.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass(frozen=True)
class UdevEvent:
    action: str            # "add" / "remove"
    subsystem: str         # "net", ...
    name: str              # device name, e.g. "vif7.0"
    properties: dict = field(default_factory=dict)


UdevHandler = Callable[[UdevEvent], None]


class UdevBus:
    """Dom0 udev: synchronous dispatch to subscribed daemons."""

    def __init__(self) -> None:
        self._handlers: list[UdevHandler] = []
        self.events_emitted = 0

    def subscribe(self, handler: UdevHandler) -> None:
        """Register a daemon for all future events."""
        self._handlers.append(handler)

    def emit(self, event: UdevEvent) -> int:
        """Deliver an event to every subscriber; returns the count."""
        self.events_emitted += 1
        for handler in list(self._handlers):
            handler(event)
        return len(self._handlers)
