"""Dom0 host filesystem (ramdisk-backed, as in the paper's testbed).

Backs the 9pfs shares. Only structure and sizes are modelled; contents
live with the applications.
"""

from __future__ import annotations

from repro.errors import ReproError

import posixpath


class HostFSError(ReproError):
    """Filesystem operation failure (missing path, bad arguments)."""


class HostFS:
    """In-memory filesystem: path -> size in bytes."""

    def __init__(self) -> None:
        self._files: dict[str, int] = {}
        self._dirs: set[str] = {"/"}

    def mkdir(self, path: str) -> None:
        """Create a directory (parent must exist)."""
        path = posixpath.normpath(path)
        parent = posixpath.dirname(path)
        if parent not in self._dirs:
            raise HostFSError(f"parent directory missing: {parent}")
        self._dirs.add(path)

    def exists(self, path: str) -> bool:
        """Does a file or directory exist at ``path``?"""
        path = posixpath.normpath(path)
        return path in self._files or path in self._dirs

    def is_dir(self, path: str) -> bool:
        """Is ``path`` a directory?"""
        return posixpath.normpath(path) in self._dirs

    def create(self, path: str) -> None:
        """Create an empty file (parent directory must exist)."""
        path = posixpath.normpath(path)
        parent = posixpath.dirname(path)
        if parent not in self._dirs:
            raise HostFSError(f"parent directory missing: {parent}")
        self._files.setdefault(path, 0)

    def write(self, path: str, nbytes: int, append: bool = True) -> int:
        """Write ``nbytes``; returns the new file size."""
        path = posixpath.normpath(path)
        if path not in self._files:
            self.create(path)
        if nbytes < 0:
            raise HostFSError(f"negative write size: {nbytes}")
        self._files[path] = self._files[path] + nbytes if append else nbytes
        return self._files[path]

    def size(self, path: str) -> int:
        """File size in bytes."""
        path = posixpath.normpath(path)
        if path not in self._files:
            raise HostFSError(f"no such file: {path}")
        return self._files[path]

    def unlink(self, path: str) -> None:
        """Delete a file."""
        path = posixpath.normpath(path)
        if path not in self._files:
            raise HostFSError(f"no such file: {path}")
        del self._files[path]

    def listdir(self, path: str) -> list[str]:
        """Sorted entries directly under a directory."""
        path = posixpath.normpath(path)
        if path not in self._dirs:
            raise HostFSError(f"no such directory: {path}")
        prefix = path.rstrip("/") + "/"
        names = set()
        for candidate in list(self._files) + list(self._dirs):
            if candidate != path and candidate.startswith(prefix):
                rest = candidate[len(prefix):]
                names.add(rest.split("/", 1)[0])
        return sorted(names)

    @property
    def total_bytes(self) -> int:
        return sum(self._files.values())
