"""Console device.

The console ring is deliberately *not* copied on clone: "duplicating
the parent console output for the child would hinder debugging"
(paper §4.2). Cloning a console only creates the child's Xenstore
entries; the qemu daemon that manages console backends picks them up
from its watch without code changes (paper §5.2.1).
"""

from __future__ import annotations

from repro.sim import CostModel, VirtualClock
from repro.xen.domain import Domain
from repro.xenstore.client import XsHandle


def console_frontend_path(domid: int) -> str:
    """Xenstore directory of a guest's console frontend."""
    return f"/local/domain/{domid}/console"


def console_backend_path(domid: int) -> str:
    """Xenstore directory of a guest's console backend."""
    return f"/local/domain/0/backend/console/{domid}/0"


class ConsoleFrontend:
    """Guest side: writes lines into the console ring."""

    device_class = "console"

    def __init__(self, domain: Domain) -> None:
        self.domain = domain
        # The ring lives in the domain's dedicated console page
        # (allocated with the domain's special pages).
        self.output: list[str] = []
        #: Backend sink draining the ring (xenconsoled-style logging).
        self.sink = None
        domain.frontends.setdefault("console", []).append(self)

    def write_line(self, line: str) -> None:
        """Guest prints a line: ring + xenconsoled sink."""
        self.output.append(line)
        if self.sink is not None:
            self.sink(self.domain.domid, line)

    def clone_for(self, child: Domain) -> "ConsoleFrontend":
        """Fresh, empty console for the clone: the ring is not copied."""
        return ConsoleFrontend(child)


class ConsoleBackendDaemon:
    """The qemu/xenconsoled process managing console backends in Dom0.

    Drains each guest's console ring into a per-guest log file on the
    Dom0 ramdisk ("critical for logging and debugging", paper §5.2.1).
    """

    LOG_DIR = "/var/log/xen/console"

    def __init__(self, handle: XsHandle, clock: VirtualClock,
                 costs: CostModel, hostfs=None,
                 domain_resolver=None) -> None:
        self.handle = handle
        self.clock = clock
        self.costs = costs
        self.hostfs = hostfs
        self.resolver = domain_resolver
        #: domids with live console backend state.
        self.backends: set[int] = set()
        if hostfs is not None:
            for part in ("/var", "/var/log", "/var/log/xen", self.LOG_DIR):
                if not hostfs.is_dir(part):
                    hostfs.mkdir(part)
        handle.watch("/local/domain/0/backend/console", "console-backend",
                     self._on_watch)

    def log_path(self, domid: int) -> str:
        """Dom0 path of a guest's console log."""
        return f"{self.LOG_DIR}/guest-{domid}.log"

    def _on_watch(self, path: str, token: str) -> None:
        parts = path.split("/")
        # /local/domain/0/backend/console/<domid>/...
        if len(parts) < 7:
            return
        try:
            domid = int(parts[6])
        except ValueError:
            return
        if domid in self.backends:
            return
        self.backends.add(domid)
        self.clock.charge(self.costs.console_backend_create)
        self._attach_sink(domid)

    def _attach_sink(self, domid: int) -> None:
        if self.hostfs is None or self.resolver is None:
            return
        try:
            domain = self.resolver(domid)
        except Exception:
            return
        self.hostfs.create(self.log_path(domid))
        for console in domain.frontends.get("console", []):
            console.sink = self._drain

    def _drain(self, domid: int, line: str) -> None:
        if self.hostfs is not None:
            self.hostfs.write(self.log_path(domid), len(line) + 1)

    def remove(self, domid: int) -> None:
        """Drop a guest's console state and log."""
        self.backends.discard(domid)
        if self.hostfs is not None and \
                self.hostfs.exists(self.log_path(domid)):
            self.hostfs.unlink(self.log_path(domid))


def write_console_entries(handle: XsHandle, domid: int) -> None:
    """Boot path: the console entries xl writes for a new guest."""
    front = console_frontend_path(domid)
    back = console_backend_path(domid)
    handle.write(f"{front}/ring-ref", f"{domid * 100 + 1}")
    handle.write(f"{front}/port", "2")
    handle.write(f"{front}/backend", back)
    handle.write(f"{front}/type", "xenconsoled")
    handle.write(f"{back}/frontend", front)
    handle.write(f"{back}/frontend-id", str(domid))
    handle.write(f"{back}/online", "1")
    handle.write(f"{back}/state", "4")
