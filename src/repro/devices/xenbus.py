"""XenBus connection states and the negotiation protocol.

On regular instantiation a device connects by walking the XenBus state
machine on both ends, each transition being a Xenstore write plus a
watch wakeup. On cloning the negotiation is skipped and both ends are
created connected (paper §5.2.1: "On cloning, the negotiation is
skipped and the two ends are created connected from the start").
"""

from __future__ import annotations

import enum

from repro.sim import CostModel, VirtualClock
from repro.xenstore.client import XsHandle


class XenbusState(enum.IntEnum):
    """The XenBus connection states."""

    UNKNOWN = 0
    INITIALISING = 1
    INIT_WAIT = 2
    INITIALISED = 3
    CONNECTED = 4
    CLOSING = 5
    CLOSED = 6


#: The transitions each end walks during a successful negotiation.
FRONTEND_SEQUENCE = (
    XenbusState.INITIALISING,
    XenbusState.INITIALISED,
    XenbusState.CONNECTED,
)
BACKEND_SEQUENCE = (
    XenbusState.INITIALISING,
    XenbusState.INIT_WAIT,
    XenbusState.CONNECTED,
)


def negotiate(handle: XsHandle, clock: VirtualClock, costs: CostModel,
              frontend_path: str, backend_path: str) -> None:
    """Run the two-sided negotiation for a booting device.

    Interleaves the frontend and backend sequences; every transition is
    a Xenstore state write plus driver work.
    """
    steps = max(len(FRONTEND_SEQUENCE), len(BACKEND_SEQUENCE))
    for i in range(steps):
        if i < len(BACKEND_SEQUENCE):
            handle.write(f"{backend_path}/state", str(int(BACKEND_SEQUENCE[i])))
            clock.charge(costs.xenbus_negotiation_step)
        if i < len(FRONTEND_SEQUENCE):
            handle.write(f"{frontend_path}/state", str(int(FRONTEND_SEQUENCE[i])))
            clock.charge(costs.xenbus_negotiation_step)


def shortcut_connect(handle: XsHandle, frontend_path: str,
                     backend_path: str) -> None:
    """Mark both ends connected without negotiating (clone path).

    The state nodes were already cloned as CONNECTED by xs_clone; this
    only asserts the invariant, issuing no extra requests.
    """
    front = handle.daemon.read_node(f"{frontend_path}/state")
    back = handle.daemon.read_node(f"{backend_path}/state")
    expected = str(int(XenbusState.CONNECTED))
    if front != expected or back != expected:
        raise AssertionError(
            f"clone shortcut on non-connected device: front={front} back={back}"
        )
